//! The typed request/response surface for ranking.
//!
//! Historically the service grew five overlapping entry points
//! (`rank`, `rank_utterance`, `rank_with_tags`,
//! `rank_with_tags_profiled`, `rank_resilient`), each a different
//! slice of (utterance-or-tags) × (slots) × (profile) × (resilience).
//! [`RankRequest`] collapses that grid into one value the canonical
//! [`crate::service::SaccsService::rank_request`] consumes, which is
//! also the unit the `saccs-serve` front end queues, sheds, and
//! micro-batches. The legacy entry points survive as thin deprecated
//! wrappers.

use crate::dialog::Slots;
use crate::error::SaccsError;
use crate::profile::UserProfile;
use crate::resilient::Degradation;
use crate::service::SaccsConfig;
use saccs_text::SubjectiveTag;
use std::time::Duration;

/// What the caller gives Algorithm 1 to work from: a raw utterance
/// (tags are extracted by the neural pipeline) or pre-extracted tags
/// (the extraction stage is skipped entirely — no extractor required,
/// no extract breaker touched).
#[derive(Debug, Clone, PartialEq)]
pub enum RankInput {
    /// A free-text utterance; subjective tags come from the extractor.
    Utterance(String),
    /// Pre-extracted subjective tags; the extract stage is skipped.
    Tags(Vec<SubjectiveTag>),
}

/// One ranking request: the input, the objective slot values for the
/// search API, and the optional per-request knobs.
#[derive(Debug, Clone)]
pub struct RankRequest {
    pub input: RankInput,
    /// Objective slots forwarded verbatim to the search API.
    pub slots: Slots,
    /// Personalization: reweight probe scores by this user's tag
    /// history, blended with the given boost factor.
    pub profile: Option<(UserProfile, f32)>,
    /// Per-request override of the service-level [`SaccsConfig`]
    /// (`top_k`, aggregation, padding). `None` uses the service's.
    pub config: Option<SaccsConfig>,
    /// Caller-assigned trace id for request-scoped tracing. `None` lets
    /// the serving layer derive one deterministically from the request
    /// content ([`trace_key`](Self::trace_key)) — never from wallclock.
    pub trace_id: Option<u64>,
}

impl RankRequest {
    /// A request carrying a free-text utterance.
    pub fn utterance(text: impl Into<String>) -> Self {
        RankRequest {
            input: RankInput::Utterance(text.into()),
            slots: Slots::default(),
            profile: None,
            config: None,
            trace_id: None,
        }
    }

    /// A request carrying pre-extracted subjective tags.
    pub fn tags(tags: Vec<SubjectiveTag>) -> Self {
        RankRequest {
            input: RankInput::Tags(tags),
            slots: Slots::default(),
            profile: None,
            config: None,
            trace_id: None,
        }
    }

    /// Attach objective slots for the search API.
    pub fn with_slots(mut self, slots: Slots) -> Self {
        self.slots = slots;
        self
    }

    /// Attach a user profile and its boost factor.
    pub fn with_profile(mut self, profile: UserProfile, boost: f32) -> Self {
        self.profile = Some((profile, boost));
        self
    }

    /// Override the service-level config for this request only.
    pub fn with_config(mut self, config: SaccsConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Assign an explicit trace id (tests and benches use the request
    /// index so flight-recorder reports are byte-deterministic).
    pub fn with_trace_id(mut self, id: u64) -> Self {
        self.trace_id = Some(id);
        self
    }

    /// Deterministic trace id for this request: the assigned
    /// [`trace_id`](Self::trace_id) if any, otherwise an FNV-1a hash of
    /// the input content and slots. Identical requests get identical
    /// ids; wallclock is never involved.
    pub fn trace_key(&self) -> u64 {
        if let Some(id) = self.trace_id {
            return id;
        }
        let mut h = 0u64;
        match &self.input {
            RankInput::Utterance(text) => {
                h = saccs_obs::trace::hash_bytes(h, b"u:");
                h = saccs_obs::trace::hash_bytes(h, text.as_bytes());
            }
            RankInput::Tags(tags) => {
                h = saccs_obs::trace::hash_bytes(h, b"t:");
                for tag in tags {
                    h = saccs_obs::trace::hash_bytes(h, tag.opinion.as_bytes());
                    h = saccs_obs::trace::hash_bytes(h, b"/");
                    h = saccs_obs::trace::hash_bytes(h, tag.aspect.as_bytes());
                    h = saccs_obs::trace::hash_bytes(h, b";");
                }
            }
        }
        for slot in [&self.slots.cuisine, &self.slots.location] {
            h = saccs_obs::trace::hash_bytes(h, b"|");
            if let Some(v) = slot {
                h = saccs_obs::trace::hash_bytes(h, v.as_bytes());
            }
        }
        h
    }
}

/// The outcome of a ranking request: ranked `(item, score)` pairs, the
/// degradation record of the resilient ladder (empty when everything
/// ran at full fidelity), and the server-side latency.
#[derive(Debug, Clone)]
pub struct RankResponse {
    /// Ranked `(item_id, score)` pairs, best first.
    pub results: Vec<(usize, f32)>,
    /// What the resilient ladder had to give up, if anything.
    pub degradation: Degradation,
    /// Wall-clock time from admission (or call) to completion.
    pub elapsed: Duration,
    /// Per-stage wall-time summary, present when the request ran under
    /// an active trace context (e.g. the serve flight recorder).
    pub timings: Option<saccs_obs::trace::StageTimings>,
}

impl RankResponse {
    /// True when the request ran at full fidelity.
    pub fn is_full_fidelity(&self) -> bool {
        !self.degradation.is_degraded()
    }

    /// Convenience projection to just the item ids, best first.
    pub fn item_ids(&self) -> Vec<usize> {
        self.results.iter().map(|&(id, _)| id).collect()
    }
}

/// Errors surfaced to serving callers before Algorithm 1 even runs
/// (admission shed, index-only services asked for extraction); the
/// resilient ladder itself degrades instead of erroring.
pub type RankResult = Result<RankResponse, SaccsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_constructors_compose() {
        let req = RankRequest::utterance("cheap and cheerful")
            .with_slots(Slots {
                cuisine: Some("italian".into()),
                location: None,
            })
            .with_profile(UserProfile::new(), 0.3);
        assert_eq!(req.input, RankInput::Utterance("cheap and cheerful".into()));
        assert_eq!(req.slots.cuisine.as_deref(), Some("italian"));
        let (profile, boost) = req.profile.expect("profile attached");
        assert!(profile.is_empty());
        assert!((boost - 0.3).abs() < f32::EPSILON);
        assert!(req.config.is_none());

        let tagged = RankRequest::tags(vec![SubjectiveTag::new("quiet", "room")]);
        assert!(matches!(tagged.input, RankInput::Tags(ref t) if t.len() == 1));
    }

    #[test]
    fn trace_keys_are_deterministic_and_content_sensitive() {
        let a = RankRequest::utterance("cheap tasty ramen");
        let b = RankRequest::utterance("cheap tasty ramen");
        assert_eq!(a.trace_key(), b.trace_key(), "same content, same key");
        assert_ne!(
            a.trace_key(),
            RankRequest::utterance("cheap tasty sushi").trace_key()
        );
        assert_eq!(a.clone().with_trace_id(7).trace_key(), 7);
        let slotted = a.clone().with_slots(Slots {
            cuisine: Some("thai".into()),
            location: None,
        });
        assert_ne!(slotted.trace_key(), a.trace_key(), "slots feed the key");
        let tags = RankRequest::tags(vec![SubjectiveTag::new("quiet", "room")]);
        assert_eq!(
            tags.trace_key(),
            RankRequest::tags(vec![SubjectiveTag::new("quiet", "room")]).trace_key()
        );
        assert_ne!(tags.trace_key(), a.trace_key());
    }
}

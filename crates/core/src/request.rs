//! The typed request/response surface for ranking.
//!
//! Historically the service grew five overlapping entry points
//! (`rank`, `rank_utterance`, `rank_with_tags`,
//! `rank_with_tags_profiled`, `rank_resilient`), each a different
//! slice of (utterance-or-tags) × (slots) × (profile) × (resilience).
//! [`RankRequest`] collapses that grid into one value the canonical
//! [`crate::service::SaccsService::rank_request`] consumes, which is
//! also the unit the `saccs-serve` front end queues, sheds, and
//! micro-batches. The legacy entry points are gone; every caller goes
//! through this front door.

use crate::dialog::Slots;
use crate::error::SaccsError;
use crate::profile::UserProfile;
use crate::resilient::Degradation;
use crate::service::SaccsConfig;
use saccs_query::Filter;
use saccs_text::SubjectiveTag;
use std::time::Duration;

/// What the caller gives Algorithm 1 to work from: a raw utterance
/// (tags are extracted by the neural pipeline) or pre-extracted tags
/// (the extraction stage is skipped entirely — no extractor required,
/// no extract breaker touched).
#[derive(Debug, Clone, PartialEq)]
pub enum RankInput {
    /// A free-text utterance; subjective tags come from the extractor.
    Utterance(String),
    /// Pre-extracted subjective tags; the extract stage is skipped.
    Tags(Vec<SubjectiveTag>),
}

/// One ranking request: the input, the objective slot values for the
/// search API, and the optional per-request knobs.
#[derive(Debug, Clone)]
pub struct RankRequest {
    pub input: RankInput,
    /// Objective slots forwarded verbatim to the search API.
    pub slots: Slots,
    /// Personalization: reweight probe scores by this user's tag
    /// history, blended with the given boost factor.
    pub profile: Option<(UserProfile, f32)>,
    /// Per-request override of the service-level [`SaccsConfig`]
    /// (`top_k`, aggregation, padding). `None` uses the service's.
    pub config: Option<SaccsConfig>,
    /// Subjective query filter: a typed AST (or parsed DSL) compiled
    /// against the same pinned index snapshot the probes read, applied
    /// as a pure selection on the objective candidates before ranking.
    /// A filter that cannot be compiled degrades the request to
    /// unfiltered (with a `Degradation` record) rather than erroring.
    pub filter: Option<Filter>,
    /// Caller-assigned trace id for request-scoped tracing. `None` lets
    /// the serving layer derive one deterministically from the request
    /// content ([`trace_key`](Self::trace_key)) — never from wallclock.
    pub trace_id: Option<u64>,
    /// A filter DSL string that failed to parse, retained so
    /// [`sanitized`](Self::sanitized) can report the original error
    /// (builders stay infallible; validation has one seam).
    bad_dsl: Option<String>,
}

impl RankRequest {
    /// A request carrying a free-text utterance.
    pub fn utterance(text: impl Into<String>) -> Self {
        RankRequest {
            input: RankInput::Utterance(text.into()),
            slots: Slots::default(),
            profile: None,
            config: None,
            filter: None,
            trace_id: None,
            bad_dsl: None,
        }
    }

    /// A request carrying pre-extracted subjective tags.
    pub fn tags(tags: Vec<SubjectiveTag>) -> Self {
        RankRequest {
            input: RankInput::Tags(tags),
            slots: Slots::default(),
            profile: None,
            config: None,
            filter: None,
            trace_id: None,
            bad_dsl: None,
        }
    }

    /// Attach objective slots for the search API.
    pub fn with_slots(mut self, slots: Slots) -> Self {
        self.slots = slots;
        self
    }

    /// Attach a user profile and its boost factor.
    pub fn with_profile(mut self, profile: UserProfile, boost: f32) -> Self {
        self.profile = Some((profile, boost));
        self
    }

    /// Override the service-level config for this request only.
    pub fn with_config(mut self, config: SaccsConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Attach a subjective filter — the one front door for the query
    /// language: the filter flows unchanged through
    /// [`crate::service::SaccsService::rank_request`], the resilient
    /// ladder, the `saccs-serve` workers, and the trace pipeline.
    pub fn with_filter(mut self, filter: Filter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Parse `dsl` and attach the resulting filter. Parse errors are
    /// *not* surfaced here (builders stay infallible); they are
    /// reported — with byte-offset spans — by [`sanitized`](Self::sanitized)
    /// as [`SaccsError::InvalidRequest`].
    pub fn with_filter_dsl(self, dsl: &str) -> Self {
        match Filter::parse(dsl) {
            Ok(filter) => self.with_filter(filter),
            // Keep the malformed source so sanitized() can report the
            // original parse error instead of silently dropping it.
            Err(_) => self
                .with_filter(Filter::from_expr(saccs_query::FilterExpr::Opinion {
                    word: String::new(),
                    theta: 0.0,
                }))
                .with_bad_dsl(dsl),
        }
    }

    fn with_bad_dsl(mut self, dsl: &str) -> Self {
        self.bad_dsl = Some(dsl.to_string());
        self
    }

    /// Validate the request without consuming it. Everything funnels
    /// through here (and through [`sanitized`](Self::sanitized), the
    /// owned form) so nothing is ever silently clamped: a malformed
    /// filter, a non-finite profile boost or a zero `top_k` override
    /// all come back as typed [`SaccsError::InvalidRequest`].
    pub fn validate(&self) -> Result<(), SaccsError> {
        if let Some(dsl) = &self.bad_dsl {
            let reason = match Filter::parse(dsl) {
                Err(e) => e.to_string(),
                Ok(_) => "filter DSL failed to parse".to_string(),
            };
            return Err(SaccsError::InvalidRequest {
                field: "filter",
                reason,
            });
        }
        if let Some(filter) = &self.filter {
            filter.validate().map_err(|e| SaccsError::InvalidRequest {
                field: "filter",
                reason: e.to_string(),
            })?;
        }
        if let Some((_, boost)) = &self.profile {
            if !boost.is_finite() || *boost < 0.0 {
                return Err(SaccsError::InvalidRequest {
                    field: "profile",
                    reason: format!("boost {boost} must be finite and non-negative"),
                });
            }
        }
        if let Some(config) = &self.config {
            if config.top_k == 0 {
                return Err(SaccsError::InvalidRequest {
                    field: "config",
                    reason: "top_k override must be at least 1".to_string(),
                });
            }
        }
        Ok(())
    }

    /// The single validation seam, mirroring `ServeConfig::sanitized`:
    /// the serving front end calls this before admission, so a bad
    /// request is a typed error to the caller, never a queued job.
    pub fn sanitized(self) -> Result<Self, SaccsError> {
        self.validate()?;
        Ok(self)
    }

    /// Assign an explicit trace id (tests and benches use the request
    /// index so flight-recorder reports are byte-deterministic).
    pub fn with_trace_id(mut self, id: u64) -> Self {
        self.trace_id = Some(id);
        self
    }

    /// Deterministic trace id for this request: the assigned
    /// [`trace_id`](Self::trace_id) if any, otherwise an FNV-1a hash of
    /// the input content and slots. Identical requests get identical
    /// ids; wallclock is never involved.
    pub fn trace_key(&self) -> u64 {
        if let Some(id) = self.trace_id {
            return id;
        }
        let mut h = 0u64;
        match &self.input {
            RankInput::Utterance(text) => {
                h = saccs_obs::trace::hash_bytes(h, b"u:");
                h = saccs_obs::trace::hash_bytes(h, text.as_bytes());
            }
            RankInput::Tags(tags) => {
                h = saccs_obs::trace::hash_bytes(h, b"t:");
                for tag in tags {
                    h = saccs_obs::trace::hash_bytes(h, tag.opinion.as_bytes());
                    h = saccs_obs::trace::hash_bytes(h, b"/");
                    h = saccs_obs::trace::hash_bytes(h, tag.aspect.as_bytes());
                    h = saccs_obs::trace::hash_bytes(h, b";");
                }
            }
        }
        for slot in [&self.slots.cuisine, &self.slots.location] {
            h = saccs_obs::trace::hash_bytes(h, b"|");
            if let Some(v) = slot {
                h = saccs_obs::trace::hash_bytes(h, v.as_bytes());
            }
        }
        if let Some(filter) = &self.filter {
            // The canonical normal form, not the surface DSL: two
            // spellings of the same filter share a trace key.
            h = saccs_obs::trace::hash_bytes(h, b"f:");
            h = saccs_obs::trace::hash_bytes(h, filter.normal().as_bytes());
        }
        h
    }
}

/// The outcome of a ranking request: ranked `(item, score)` pairs, the
/// degradation record of the resilient ladder (empty when everything
/// ran at full fidelity), and the server-side latency.
#[derive(Debug, Clone)]
pub struct RankResponse {
    /// Ranked `(item_id, score)` pairs, best first.
    pub results: Vec<(usize, f32)>,
    /// What the resilient ladder had to give up, if anything.
    pub degradation: Degradation,
    /// Wall-clock time from admission (or call) to completion.
    pub elapsed: Duration,
    /// Per-stage wall-time summary, present when the request ran under
    /// an active trace context (e.g. the serve flight recorder).
    pub timings: Option<saccs_obs::trace::StageTimings>,
}

impl RankResponse {
    /// True when the request ran at full fidelity.
    pub fn is_full_fidelity(&self) -> bool {
        !self.degradation.is_degraded()
    }

    /// Convenience projection to just the item ids, best first.
    pub fn item_ids(&self) -> Vec<usize> {
        self.results.iter().map(|&(id, _)| id).collect()
    }
}

/// Errors surfaced to serving callers before Algorithm 1 even runs
/// (admission shed, index-only services asked for extraction); the
/// resilient ladder itself degrades instead of erroring.
pub type RankResult = Result<RankResponse, SaccsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_constructors_compose() {
        let req = RankRequest::utterance("cheap and cheerful")
            .with_slots(Slots {
                cuisine: Some("italian".into()),
                location: None,
            })
            .with_profile(UserProfile::new(), 0.3);
        assert_eq!(req.input, RankInput::Utterance("cheap and cheerful".into()));
        assert_eq!(req.slots.cuisine.as_deref(), Some("italian"));
        let (profile, boost) = req.profile.expect("profile attached");
        assert!(profile.is_empty());
        assert!((boost - 0.3).abs() < f32::EPSILON);
        assert!(req.config.is_none());

        let tagged = RankRequest::tags(vec![SubjectiveTag::new("quiet", "room")]);
        assert!(matches!(tagged.input, RankInput::Tags(ref t) if t.len() == 1));
    }

    #[test]
    fn trace_keys_are_deterministic_and_content_sensitive() {
        let a = RankRequest::utterance("cheap tasty ramen");
        let b = RankRequest::utterance("cheap tasty ramen");
        assert_eq!(a.trace_key(), b.trace_key(), "same content, same key");
        assert_ne!(
            a.trace_key(),
            RankRequest::utterance("cheap tasty sushi").trace_key()
        );
        assert_eq!(a.clone().with_trace_id(7).trace_key(), 7);
        let slotted = a.clone().with_slots(Slots {
            cuisine: Some("thai".into()),
            location: None,
        });
        assert_ne!(slotted.trace_key(), a.trace_key(), "slots feed the key");
        let tags = RankRequest::tags(vec![SubjectiveTag::new("quiet", "room")]);
        assert_eq!(
            tags.trace_key(),
            RankRequest::tags(vec![SubjectiveTag::new("quiet", "room")]).trace_key()
        );
        assert_ne!(tags.trace_key(), a.trace_key());
        let filtered = a.clone().with_filter_dsl("quiet AND NOT expensive");
        assert_ne!(filtered.trace_key(), a.trace_key(), "filter feeds the key");
        assert_eq!(
            filtered.trace_key(),
            a.clone()
                .with_filter_dsl("quiet and not expensive")
                .trace_key(),
            "the normal form is hashed, not the surface spelling"
        );
    }

    #[test]
    fn sanitized_is_the_single_validation_seam() {
        assert!(RankRequest::utterance("cheap ramen").sanitized().is_ok());
        let ok = RankRequest::utterance("x")
            .with_filter_dsl("delicious AND (quiet OR romantic), price<=2")
            .sanitized();
        assert!(ok.is_ok());

        let bad_dsl = RankRequest::utterance("x")
            .with_filter_dsl("price<=nine")
            .sanitized();
        match bad_dsl {
            Err(SaccsError::InvalidRequest { field, reason }) => {
                assert_eq!(field, "filter");
                assert!(reason.contains("bytes 7..11"), "span surfaces: {reason}");
            }
            other => panic!("expected InvalidRequest, got {other:?}"),
        }

        let bad_theta = RankRequest::utterance("x")
            .with_filter(Filter::from_expr(saccs_query::FilterExpr::Threshold {
                tag: SubjectiveTag::new("quiet", "room"),
                theta: 2.0,
            }))
            .sanitized();
        assert!(matches!(
            bad_theta,
            Err(SaccsError::InvalidRequest {
                field: "filter",
                ..
            })
        ));

        let bad_boost = RankRequest::utterance("x")
            .with_profile(UserProfile::new(), f32::NAN)
            .sanitized();
        assert!(matches!(
            bad_boost,
            Err(SaccsError::InvalidRequest {
                field: "profile",
                ..
            })
        ));

        let bad_top_k = RankRequest::utterance("x")
            .with_config(SaccsConfig {
                top_k: 0,
                ..SaccsConfig::default()
            })
            .sanitized();
        assert!(matches!(
            bad_top_k,
            Err(SaccsError::InvalidRequest {
                field: "config",
                ..
            })
        ));
    }
}

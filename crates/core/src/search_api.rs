//! The objective search API stand-in (§3.2's `search_api`).
//!
//! "The chatbot then delegates the search intent to a search API that
//! retrieves a list of restaurants filtered by objective criteria." The
//! synthetic corpus models one city's Italian restaurants (the paper's
//! Yelp slice is exactly that), so the objective filter matches every
//! entity unless the slots rule some out — mirroring the evaluation setup
//! where S_api is the full candidate pool and the subjective re-ranking is
//! what is measured.

use crate::dialog::Slots;
use saccs_data::entity::ATTRIBUTE_SCHEMA;
use saccs_data::Entity;
use saccs_query::ObjectiveCatalog;

/// Objective search over the entity database.
pub struct SearchApi<'a> {
    entities: &'a [Entity],
    /// The corpus city and cuisine (all entities share them).
    pub city: &'static str,
    pub cuisine: &'static str,
}

impl<'a> SearchApi<'a> {
    pub fn new(entities: &'a [Entity]) -> Self {
        SearchApi {
            entities,
            city: "montreal",
            cuisine: "italian",
        }
    }

    /// Entities matching the objective slots. Unknown locations/cuisines
    /// return the empty set (the API genuinely has nothing there); missing
    /// slots do not constrain.
    pub fn search(&self, slots: &Slots) -> Vec<usize> {
        if let Some(c) = &slots.cuisine {
            if c != self.cuisine {
                return Vec::new();
            }
        }
        if let Some(l) = &slots.location {
            if l != self.city {
                return Vec::new();
            }
        }
        self.entities.iter().map(|e| e.id).collect()
    }

    /// Fallible [`SearchApi::search`] behind the `algo1.search_api`
    /// failpoint. The in-memory stand-in cannot fail on its own, but a
    /// network-backed API will; the resilient service path
    /// (`SaccsService::rank_resilient`) calls this so chaos tests can
    /// exercise retries and degradation today.
    pub fn try_search(&self, slots: &Slots) -> Result<Vec<usize>, saccs_fault::FaultError> {
        saccs_fault::failpoint!("algo1.search_api")?;
        Ok(self.search(slots))
    }

    /// Entity display name.
    pub fn name(&self, id: usize) -> &str {
        &self.entities[id].name
    }

    pub fn len(&self) -> usize {
        self.entities.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }
}

/// The search API doubles as the planner's objective catalog: `price<=2`
/// and friends are answered from the same entity database the slots
/// search, so a compiled filter and the objective candidates can never
/// disagree about an entity's attributes.
impl ObjectiveCatalog for SearchApi<'_> {
    fn universe(&self) -> usize {
        // Entity ids, not slice positions: a sliced or reordered corpus
        // (tests gate candidates that way) keeps its original ids.
        self.entities.iter().map(|e| e.id + 1).max().unwrap_or(0)
    }

    fn attribute(&self, id: usize, name: &str) -> Option<&str> {
        self.entity(id)?.attributes.get(name).copied()
    }

    fn stars(&self, id: usize) -> Option<f32> {
        self.entity(id).map(|e| e.stars)
    }

    fn has_attribute(&self, name: &str) -> bool {
        ATTRIBUTE_SCHEMA.iter().any(|(n, _)| *n == name)
    }
}

impl SearchApi<'_> {
    /// Entity by id. Full corpora sit at their id's position; sliced or
    /// reordered ones fall back to a scan.
    fn entity(&self, id: usize) -> Option<&Entity> {
        self.entities
            .get(id)
            .filter(|e| e.id == id)
            .or_else(|| self.entities.iter().find(|e| e.id == id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saccs_text::{Domain, Lexicon};

    fn entities() -> Vec<Entity> {
        let lex = Lexicon::new(Domain::Restaurants);
        let mut rng = StdRng::seed_from_u64(3);
        (0..5).map(|i| Entity::sample(i, &lex, &mut rng)).collect()
    }

    #[test]
    fn unconstrained_search_returns_all() {
        let ents = entities();
        let api = SearchApi::new(&ents);
        assert_eq!(api.search(&Slots::default()).len(), 5);
    }

    #[test]
    fn matching_slots_return_all() {
        let ents = entities();
        let api = SearchApi::new(&ents);
        let slots = Slots {
            cuisine: Some("italian".into()),
            location: Some("montreal".into()),
        };
        assert_eq!(api.search(&slots).len(), 5);
    }

    #[test]
    fn mismatching_slots_return_none() {
        let ents = entities();
        let api = SearchApi::new(&ents);
        assert!(api
            .search(&Slots {
                cuisine: Some("thai".into()),
                location: None
            })
            .is_empty());
        assert!(api
            .search(&Slots {
                cuisine: None,
                location: Some("lyon".into())
            })
            .is_empty());
    }
}

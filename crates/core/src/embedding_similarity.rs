//! Embedding-cosine tag similarity — the alternative the paper's
//! footnote 2 argues *against*: "Conceptual similarity has been shown to
//! work better on short phrases such as subjective tags than cosine
//! similarity." This implementation lets the `similarity_ablation` bench
//! test that claim: tags are embedded with MiniBert (mean-pooled phrase
//! embeddings), compared by cosine, and rescaled to `[0, 1]`.
//!
//! Embeddings are precomputed into a lookup table at construction (the
//! encoder's interior mutability is not `Sync`, but the finished table
//! is), so the resulting measure can drive the index's parallel builder.

use saccs_embed::MiniBert;
use saccs_text::metrics::cosine;
use saccs_text::{SubjectiveTag, TagSimilarity};
use std::collections::HashMap;

/// Precomputed phrase-embedding similarity.
pub struct EmbeddingSimilarity {
    table: HashMap<String, Vec<f32>>,
}

impl EmbeddingSimilarity {
    /// Embed every tag in `universe` (index tags, review tags, and any
    /// query tags the caller will probe with).
    pub fn precompute<'a>(
        bert: &MiniBert,
        universe: impl IntoIterator<Item = &'a SubjectiveTag>,
    ) -> Self {
        let mut table = HashMap::new();
        for tag in universe {
            let phrase = tag.phrase();
            table.entry(phrase.clone()).or_insert_with(|| {
                let tokens: Vec<String> =
                    phrase.split_whitespace().map(|w| w.to_string()).collect();
                bert.phrase_embedding(&tokens)
            });
        }
        EmbeddingSimilarity { table }
    }

    /// Number of cached phrases.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl TagSimilarity for EmbeddingSimilarity {
    fn similarity(&self, a: &SubjectiveTag, b: &SubjectiveTag) -> f32 {
        match (self.table.get(&a.phrase()), self.table.get(&b.phrase())) {
            (Some(ea), Some(eb)) => ((cosine(ea, eb) + 1.0) / 2.0).clamp(0.0, 1.0),
            // Out-of-universe phrases are unknowable to a pure-embedding
            // measure with a frozen cache.
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_embed::{build_vocab, general_corpus, train_mlm, MiniBertConfig, MlmConfig};
    use saccs_text::Domain;

    fn sim() -> EmbeddingSimilarity {
        let vocab = build_vocab(&[Domain::Restaurants]);
        let bert = MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 16,
                seed: 4,
            },
        );
        train_mlm(
            &bert,
            &general_corpus(120, 5),
            &MlmConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let universe = vec![
            SubjectiveTag::new("delicious", "food"),
            SubjectiveTag::new("tasty", "food"),
            SubjectiveTag::new("nice", "staff"),
        ];
        EmbeddingSimilarity::precompute(&bert, &universe)
    }

    #[test]
    fn identity_is_maximal() {
        let s = sim();
        let t = SubjectiveTag::new("delicious", "food");
        let self_sim = s.similarity(&t, &t);
        let cross = s.similarity(&t, &SubjectiveTag::new("nice", "staff"));
        assert!((self_sim - 1.0).abs() < 1e-5);
        assert!(cross < self_sim);
    }

    #[test]
    fn symmetric_and_bounded() {
        let s = sim();
        let a = SubjectiveTag::new("delicious", "food");
        let b = SubjectiveTag::new("tasty", "food");
        let ab = s.similarity(&a, &b);
        assert_eq!(ab, s.similarity(&b, &a));
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn unknown_phrase_scores_zero() {
        let s = sim();
        let known = SubjectiveTag::new("delicious", "food");
        let unknown = SubjectiveTag::new("zorgle", "blarf");
        assert_eq!(s.similarity(&known, &unknown), 0.0);
    }

    #[test]
    fn cache_deduplicates() {
        let vocab = build_vocab(&[Domain::Restaurants]);
        let bert = MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 16,
                seed: 4,
            },
        );
        let t = SubjectiveTag::new("delicious", "food");
        let s = EmbeddingSimilarity::precompute(&bert, vec![&t, &t, &t]);
        assert_eq!(s.len(), 1);
    }
}

//! Embedding-cosine tag similarity — the alternative the paper's
//! footnote 2 argues *against*: "Conceptual similarity has been shown to
//! work better on short phrases such as subjective tags than cosine
//! similarity." This implementation lets the `similarity_ablation` bench
//! test that claim: tags are embedded with MiniBert (mean-pooled phrase
//! embeddings), compared by cosine, and rescaled to `[0, 1]`.
//!
//! Embeddings are precomputed into a lookup table at construction (the
//! encoder's interior mutability is not `Sync`, but the finished table
//! is), so the resulting measure can drive the index's parallel builder.

use saccs_embed::{EncoderPrecision, MiniBert, QuantizedEncoder};
use saccs_index::TagVectorSource;
use saccs_text::metrics::cosine;
use saccs_text::{SubjectiveTag, TagSimilarity};
use std::collections::HashMap;
use std::sync::Arc;

/// Precomputed phrase-embedding similarity. Cloning is cheap (the
/// embedding table is shared), so one precompute pass can feed both the
/// index's custom similarity and its ANN [`TagVectorSource`].
#[derive(Clone)]
pub struct EmbeddingSimilarity {
    table: Arc<HashMap<String, Vec<f32>>>,
}

impl EmbeddingSimilarity {
    /// Embed every tag in `universe` (index tags, review tags, and any
    /// query tags the caller will probe with) with the default f32
    /// encoder path.
    pub fn precompute<'a>(
        bert: &MiniBert,
        universe: impl IntoIterator<Item = &'a SubjectiveTag>,
    ) -> Self {
        Self::precompute_with(bert, universe, EncoderPrecision::F32)
    }

    /// Like [`EmbeddingSimilarity::precompute`], with an explicit
    /// encoder precision. [`EncoderPrecision::F32`] runs MiniBert's own
    /// forward (bitwise identical to `precompute`);
    /// [`EncoderPrecision::Int8`] snapshots the weights once into a
    /// [`QuantizedEncoder`] and embeds every phrase through the int8
    /// projection path.
    pub fn precompute_with<'a>(
        bert: &MiniBert,
        universe: impl IntoIterator<Item = &'a SubjectiveTag>,
        precision: EncoderPrecision,
    ) -> Self {
        let quantized = match precision {
            EncoderPrecision::F32 => None,
            EncoderPrecision::Int8 => Some(QuantizedEncoder::from_bert(bert)),
        };
        let mut table = HashMap::new();
        for tag in universe {
            let phrase = tag.phrase();
            table.entry(phrase.clone()).or_insert_with(|| {
                let tokens: Vec<String> =
                    phrase.split_whitespace().map(|w| w.to_string()).collect();
                match &quantized {
                    Some(qe) => qe.phrase_embedding(&bert.ids(&tokens)),
                    None => bert.phrase_embedding(&tokens),
                }
            });
        }
        EmbeddingSimilarity {
            table: Arc::new(table),
        }
    }

    /// Number of cached phrases.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The cached embedding for `phrase`, if it was in the universe.
    pub fn phrase_vector(&self, phrase: &str) -> Option<&[f32]> {
        self.table.get(phrase).map(Vec::as_slice)
    }
}

/// Feeds the cached embeddings to the index's graph-ANN probe path.
impl TagVectorSource for EmbeddingSimilarity {
    fn vector(&self, tag: &SubjectiveTag) -> Option<Vec<f32>> {
        self.table.get(&tag.phrase()).cloned()
    }
}

impl TagSimilarity for EmbeddingSimilarity {
    fn similarity(&self, a: &SubjectiveTag, b: &SubjectiveTag) -> f32 {
        match (self.table.get(&a.phrase()), self.table.get(&b.phrase())) {
            (Some(ea), Some(eb)) => ((cosine(ea, eb) + 1.0) / 2.0).clamp(0.0, 1.0),
            // Out-of-universe phrases are unknowable to a pure-embedding
            // measure with a frozen cache.
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_embed::{build_vocab, general_corpus, train_mlm, MiniBertConfig, MlmConfig};
    use saccs_text::Domain;

    fn sim() -> EmbeddingSimilarity {
        let vocab = build_vocab(&[Domain::Restaurants]);
        let bert = MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 16,
                seed: 4,
            },
        );
        train_mlm(
            &bert,
            &general_corpus(120, 5),
            &MlmConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let universe = vec![
            SubjectiveTag::new("delicious", "food"),
            SubjectiveTag::new("tasty", "food"),
            SubjectiveTag::new("nice", "staff"),
        ];
        EmbeddingSimilarity::precompute(&bert, &universe)
    }

    #[test]
    fn identity_is_maximal() {
        let s = sim();
        let t = SubjectiveTag::new("delicious", "food");
        let self_sim = s.similarity(&t, &t);
        let cross = s.similarity(&t, &SubjectiveTag::new("nice", "staff"));
        assert!((self_sim - 1.0).abs() < 1e-5);
        assert!(cross < self_sim);
    }

    #[test]
    fn symmetric_and_bounded() {
        let s = sim();
        let a = SubjectiveTag::new("delicious", "food");
        let b = SubjectiveTag::new("tasty", "food");
        let ab = s.similarity(&a, &b);
        assert_eq!(ab, s.similarity(&b, &a));
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn unknown_phrase_scores_zero() {
        let s = sim();
        let known = SubjectiveTag::new("delicious", "food");
        let unknown = SubjectiveTag::new("zorgle", "blarf");
        assert_eq!(s.similarity(&known, &unknown), 0.0);
    }

    #[test]
    fn f32_precision_is_bitwise_identical_to_default_precompute() {
        let vocab = build_vocab(&[Domain::Restaurants]);
        let bert = MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 16,
                seed: 4,
            },
        );
        let universe = vec![
            SubjectiveTag::new("delicious", "food"),
            SubjectiveTag::new("tasty", "food"),
            SubjectiveTag::new("nice", "staff"),
        ];
        let default = EmbeddingSimilarity::precompute(&bert, &universe);
        let f32_mode = EmbeddingSimilarity::precompute_with(
            &bert,
            &universe,
            saccs_embed::EncoderPrecision::F32,
        );
        for tag in &universe {
            let a = default.phrase_vector(&tag.phrase()).unwrap();
            let b = f32_mode.phrase_vector(&tag.phrase()).unwrap();
            assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn int8_precision_stays_close_and_feeds_the_vector_source() {
        let vocab = build_vocab(&[Domain::Restaurants]);
        let bert = MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 16,
                seed: 4,
            },
        );
        let universe = vec![
            SubjectiveTag::new("delicious", "food"),
            SubjectiveTag::new("tasty", "food"),
        ];
        let f32_mode = EmbeddingSimilarity::precompute(&bert, &universe);
        let int8 = EmbeddingSimilarity::precompute_with(
            &bert,
            &universe,
            saccs_embed::EncoderPrecision::Int8,
        );
        for tag in &universe {
            let a = f32_mode.phrase_vector(&tag.phrase()).unwrap();
            let b = int8.phrase_vector(&tag.phrase()).unwrap();
            let cos = cosine(a, b);
            assert!(cos > 0.999, "int8-vs-f32 cosine {cos} for {tag:?}");
            // The TagVectorSource view hands out the same cached vector.
            let via_source = TagVectorSource::vector(&int8, tag).unwrap();
            assert_eq!(via_source, b);
        }
        assert!(TagVectorSource::vector(&int8, &SubjectiveTag::new("zorgle", "blarf")).is_none());
    }

    #[test]
    fn graph_ann_probe_matches_scan_on_small_embedding_corpus() {
        use saccs_index::index::{EntityEvidence, IndexConfig, SubjectiveIndex};
        use saccs_text::{ConceptualSimilarity, Domain as D, Lexicon};

        let vocab = build_vocab(&[Domain::Restaurants]);
        let bert = MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 16,
                seed: 4,
            },
        );
        let tags: Vec<SubjectiveTag> = [
            ("delicious", "food"),
            ("tasty", "food"),
            ("nice", "staff"),
            ("friendly", "service"),
            ("cozy", "ambiance"),
            ("cheap", "price"),
        ]
        .iter()
        .map(|(o, a)| SubjectiveTag::new(o, a))
        .collect();
        let probe = SubjectiveTag::new("great", "meal");
        let mut universe = tags.clone();
        universe.push(probe.clone());
        let emb = EmbeddingSimilarity::precompute(&bert, &universe);

        let build = |ann: bool| {
            let mut idx = SubjectiveIndex::new(
                ConceptualSimilarity::new(Lexicon::new(D::Restaurants)),
                IndexConfig {
                    // Cosine rescaled to [0,1] clusters high; raise θ so
                    // the probe actually filters.
                    theta_filter: 0.6,
                    ann_enabled: ann,
                    // ef ≥ tag count: the beam covers the whole graph, so
                    // the approximate search degenerates to exact.
                    ann_ef: 64,
                    ..IndexConfig::default()
                },
            )
            .with_custom_similarity(emb.clone())
            .with_tag_vectors(emb.clone());
            for e in 0..6usize {
                idx.register_entity(EntityEvidence {
                    entity_id: e,
                    review_count: 1 + e % 3,
                    review_tags: vec![tags[e].clone(), tags[(e + 1) % tags.len()].clone()],
                });
            }
            idx.index_tags(&tags);
            idx
        };
        let scan = build(false).probe_readonly(&probe);
        let ann = build(true).probe_readonly(&probe);
        assert!(!scan.is_empty());
        assert_eq!(scan.len(), ann.len());
        for ((ea, sa), (eb, sb)) in scan.iter().zip(&ann) {
            assert_eq!(ea, eb);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
    }

    #[test]
    fn cache_deduplicates() {
        let vocab = build_vocab(&[Domain::Restaurants]);
        let bert = MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 16,
                seed: 4,
            },
        );
        let t = SubjectiveTag::new("delicious", "food");
        let s = EmbeddingSimilarity::precompute(&bert, vec![&t, &t, &t]);
        assert_eq!(s.len(), 1);
    }
}

//! One-call construction of a fully trained SACCS service.
//!
//! Mirrors the paper's experimental setup end to end:
//!
//! 1. pretrain MiniBert on the general corpus (BERT stand-in, §4.1),
//! 2. post-train on in-domain review text (domain knowledge, §4.2 / \[58\]),
//! 3. fine-tune on the tagging task (sharpens the attention heads the
//!    pairing heuristic reads, §5.1),
//! 4. train the BiLSTM-CRF tagger, optionally adversarially (§4.3),
//! 5. fit the data-programming pairing pipeline (§5.2),
//! 6. run the extractor over every review and build the subjective-tag
//!    index (§3.1, Figure 1).

use crate::extractor::TagExtractor;
use crate::service::{SaccsConfig, SaccsService};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use saccs_data::{canonical_tags, Dataset, DatasetId, YelpCorpus};
use saccs_embed::{
    build_vocab, finetune_tagging, general_corpus, train_mlm, MiniBert, MiniBertConfig, MlmConfig,
};
use saccs_index::index::{EntityEvidence, IndexConfig};
use saccs_index::SubjectiveIndex;
use saccs_pairing::{PairingPipeline, PipelineConfig};
use saccs_tagger::{Tagger, TrainConfig};
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};
use std::rc::Rc;

/// End-to-end build configuration.
#[derive(Debug, Clone)]
pub struct SaccsBuilder {
    pub bert: MiniBertConfig,
    /// Sentences in the general (mixed-domain) MLM corpus.
    pub mlm_sentences: usize,
    pub mlm: MlmConfig,
    /// Cap on in-domain sentences used for domain post-training (0 skips
    /// the §4.2 step entirely).
    pub post_train_sentences: usize,
    /// Epochs of tagging fine-tuning for the attention heads (0 skips).
    pub finetune_epochs: usize,
    /// Scale of the S1 dataset used to train the tagger (1.0 = paper size).
    pub tagger_data_scale: f64,
    pub tagger: TrainConfig,
    pub pipeline: PipelineConfig,
    pub index: IndexConfig,
    pub service: SaccsConfig,
    /// How many of the 18 canonical tags to index initially (Table 2
    /// evaluates 6, 12 and 18).
    pub initial_tags: usize,
    pub seed: u64,
}

impl SaccsBuilder {
    /// Small and fast: for tests and examples (seconds, not minutes).
    pub fn quick() -> Self {
        SaccsBuilder {
            bert: MiniBertConfig {
                dim: 24,
                heads: 4,
                layers: 2,
                max_len: 48,
                seed: 0xB1,
            },
            mlm_sentences: 500,
            mlm: MlmConfig {
                epochs: 2,
                ..Default::default()
            },
            post_train_sentences: 300,
            finetune_epochs: 2,
            tagger_data_scale: 0.12,
            tagger: TrainConfig {
                epochs: 12,
                ..Default::default()
            },
            pipeline: PipelineConfig::default(),
            index: IndexConfig::default(),
            service: SaccsConfig::default(),
            initial_tags: 18,
            seed: 0x5ACC,
        }
    }

    /// Paper-scale settings used by the Table-2 bench.
    pub fn paper() -> Self {
        SaccsBuilder {
            bert: MiniBertConfig {
                dim: 48,
                heads: 6,
                layers: 4,
                max_len: 48,
                seed: 0xB2,
            },
            mlm_sentences: 6000,
            mlm: MlmConfig {
                epochs: 4,
                ..Default::default()
            },
            post_train_sentences: 4000,
            finetune_epochs: 6,
            tagger_data_scale: 0.5,
            tagger: TrainConfig {
                epochs: 10,
                ..Default::default()
            },
            pipeline: PipelineConfig::default(),
            index: IndexConfig::default(),
            service: SaccsConfig::default(),
            initial_tags: 18,
            seed: 0x5ACC,
        }
    }

    /// Train everything against `corpus` and build the populated service.
    pub fn build(&self, corpus: &YelpCorpus) -> TrainedSaccs {
        let _build = saccs_obs::span!("build.pipeline");
        let mut rng = StdRng::seed_from_u64(self.seed);

        // 1–3: the encoder.
        let _pretrain = saccs_obs::span!("build.pretrain");
        let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
        let bert = MiniBert::new(vocab, self.bert.clone());
        train_mlm(
            &bert,
            &general_corpus(self.mlm_sentences, self.seed ^ 1),
            &self.mlm,
        );
        if self.post_train_sentences > 0 {
            let mut domain_sents: Vec<Vec<String>> =
                corpus.all_sentences().map(|s| s.tokens.clone()).collect();
            domain_sents.shuffle(&mut rng);
            domain_sents.truncate(self.post_train_sentences);
            train_mlm(
                &bert,
                &domain_sents,
                &MlmConfig {
                    seed: self.seed ^ 2,
                    ..self.mlm.clone()
                },
            );
        }
        let tagging_data = Dataset::generate_scaled(DatasetId::S1, self.tagger_data_scale);
        // The extractor must also parse the *request register* ("i want a
        // restaurant with …", §3.2), so utterance-style sentences are mixed
        // into the tagger's training data (~20% of the review volume).
        let mut tagger_train = tagging_data.train.clone();
        {
            use saccs_data::{GeneratorConfig, SentenceGenerator};
            let gen = SentenceGenerator::new(
                Lexicon::new(Domain::Restaurants),
                GeneratorConfig {
                    noise_rate: 0.0,
                    ..Default::default()
                },
            );
            let n_utts = (2 * tagger_train.len() / 5).max(40);
            for _ in 0..n_utts {
                tagger_train.push(gen.random_utterance(&mut rng));
            }
        }
        if self.finetune_epochs > 0 {
            finetune_tagging(
                &bert,
                &tagger_train,
                self.finetune_epochs,
                1e-3,
                self.seed ^ 3,
            );
        }
        drop(_pretrain);
        let bert = Rc::new(bert);

        // 4: the tagger (spans itself as `tagger.train`).
        let tagger = Tagger::train(bert.clone(), &tagger_train, &self.tagger);

        // 5: the pairing pipeline (dev = a slice of the tagging data;
        // spans itself as `pairing.fit`).
        let dev: Vec<_> = tagging_data.test.iter().take(60).cloned().collect();
        let pairing = PairingPipeline::fit(
            bert.clone(),
            &tagging_data.train,
            &dev,
            self.pipeline.clone(),
        );

        let extractor = TagExtractor::new(tagger, pairing)
            .with_lexicon_repair(Lexicon::new(Domain::Restaurants));

        // 6: extract review tags and build the index.
        let mut index = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            self.index.clone(),
        );
        {
            let _extract = saccs_obs::span!("build.extract_reviews");
            // Warm the whole corpus's frozen features in one deduped,
            // pool-parallel batch: review sentences repeat heavily (the
            // generators reuse templates), so the per-sentence extraction
            // below hits the encoder memo instead of re-running forwards.
            let all_sentences: Vec<Vec<String>> = corpus
                .reviews
                .iter()
                .flat_map(|r| r.sentences.iter().map(|s| s.tokens.clone()))
                .collect();
            extractor.warm_features(&all_sentences);
            for entity in &corpus.entities {
                let review_ids = corpus.reviews_of(entity.id);
                let mut review_tags = Vec::new();
                for &ri in review_ids {
                    for sentence in &corpus.reviews[ri].sentences {
                        review_tags.extend(extractor.extract_from_tokens(&sentence.tokens));
                    }
                }
                index.register_entity(EntityEvidence {
                    entity_id: entity.id,
                    review_count: review_ids.len(),
                    review_tags,
                });
            }
        }
        let tags: Vec<SubjectiveTag> = canonical_tags()
            .iter()
            .take(self.initial_tags)
            .map(|t| t.tag())
            .collect();
        index.index_tags(&tags);

        TrainedSaccs {
            service: SaccsService::new(index, extractor, self.service.clone()),
            bert,
        }
    }
}

/// The result of a full build.
pub struct TrainedSaccs {
    pub service: SaccsService,
    /// The trained encoder, exposed so callers can reuse it for further
    /// components (embedding-similarity ablations, additional taggers)
    /// without retraining; the service holds its own `Rc` clones.
    pub bert: Rc<MiniBert>,
}

impl TrainedSaccs {
    /// Re-index with a different number of canonical tags (Table 2's
    /// 6/12/18-tag conditions reuse one trained pipeline).
    pub fn reindex_canonical(&mut self, n_tags: usize) {
        let tags: Vec<SubjectiveTag> = canonical_tags()
            .iter()
            .take(n_tags)
            .map(|t| t.tag())
            .collect();
        let index = self.service.index_mut();
        index.clear_tags();
        index.index_tags(&tags);
    }
}

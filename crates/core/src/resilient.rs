//! Resilience primitives for the serving path: retry policy, per-stage
//! circuit breakers, deadline budget, and the degradation report.
//!
//! The degradation ladder, top to bottom (each rung gives up less than
//! the one below it):
//!
//! 1. **Retry** — transient stage failures are retried under
//!    deterministic exponential backoff with bounded jitter.
//! 2. **Unfiltered** — the request's subjective filter could not be
//!    compiled or evaluated; the full ranking comes back with the
//!    filter dropped.
//! 3. **Drop the tag** — a single failing probe drops that tag's
//!    subjective filter; the remaining tags still rank.
//! 4. **Objective-only** — extraction (or every probe) down: return the
//!    `search_api` order verbatim, exactly like a tag-less query.
//! 5. **Partial results** — the deadline budget lapsed mid-request:
//!    return what is ranked so far instead of blocking.
//! 6. **Empty** — the objective API itself is unreachable; there is
//!    nothing left to serve, but the response still explains why.
//!
//! Every rung is recorded as a [`DegradationEvent`] in the returned
//! [`crate::request::RankResponse`], so callers (and the chaos suite)
//! can tell a clean answer from a degraded one without log archaeology.

use crate::error::{SaccsError, Stage};
use saccs_fault::{
    Backoff, BreakerConfig, BreakerState, BreakerTransition, FaultError, SharedBreaker,
};
use std::time::{Duration, Instant};

/// Per-stage retry policy: how many attempts, spaced how.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per logical call (1 = no retries).
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::new(Duration::from_millis(1), Duration::from_millis(50)).jitter(0.5),
        }
    }
}

/// Tuning for [`crate::service::SaccsService::rank_resilient`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceConfig {
    /// Retry policy shared by all stages.
    pub retry: RetryPolicy,
    /// Breaker configuration (each stage gets its own breaker instance).
    pub breaker: BreakerConfig,
    /// Per-request wall-clock budget; `None` disables deadline checks.
    pub deadline: Option<Duration>,
}

/// What the service gave up when a stage failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// The request's subjective filter could not be compiled or
    /// evaluated; results came back unfiltered. The mildest rung: the
    /// full ranking is intact, only the filter was sacrificed.
    Unfiltered,
    /// One tag's subjective filter was dropped; the rest still rank.
    DroppedTag,
    /// Subjective ranking was skipped; the objective order came back.
    ObjectiveOnly,
    /// The deadline lapsed mid-request; partially-ranked results.
    Partial,
    /// Nothing could be served at all.
    Empty,
}

impl DegradeAction {
    /// Stable lowercase name (for logs and metrics).
    pub fn label(self) -> &'static str {
        match self {
            DegradeAction::Unfiltered => "unfiltered",
            DegradeAction::DroppedTag => "dropped_tag",
            DegradeAction::ObjectiveOnly => "objective_only",
            DegradeAction::Partial => "partial",
            DegradeAction::Empty => "empty",
        }
    }
}

/// One rung taken on the degradation ladder: which stage failed, how,
/// and what the service did about it.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationEvent {
    pub stage: Stage,
    pub error: SaccsError,
    pub action: DegradeAction,
}

/// The degradation report attached to every resilient response.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Degradation {
    /// Events in the order they occurred; empty for a clean request.
    pub events: Vec<DegradationEvent>,
}

impl Degradation {
    /// `true` iff anything was given up.
    pub fn is_degraded(&self) -> bool {
        !self.events.is_empty()
    }

    /// The lowest rung reached (worst action), if any.
    pub fn worst(&self) -> Option<DegradeAction> {
        self.events
            .iter()
            .map(|e| e.action)
            .max_by_key(|a| match a {
                DegradeAction::Unfiltered => 0,
                DegradeAction::DroppedTag => 1,
                DegradeAction::ObjectiveOnly => 2,
                DegradeAction::Partial => 3,
                DegradeAction::Empty => 4,
            })
    }

    pub(crate) fn record(&mut self, stage: Stage, error: SaccsError, action: DegradeAction) {
        saccs_obs::trace::record(saccs_obs::trace::TraceEvent::Degraded {
            stage: stage.label(),
            action: action.label(),
        });
        self.events.push(DegradationEvent {
            stage,
            error,
            action,
        });
    }
}

/// One circuit breaker per failable stage, so a dead extractor does not
/// open the gate in front of a healthy index. The breakers are
/// [`SharedBreaker`]s — atomic, `&self`-driven — so many serving threads
/// can share one service instance and one consistent breaker state.
#[derive(Debug)]
pub struct StageBreakers {
    pub search_api: SharedBreaker,
    pub extract: SharedBreaker,
    pub probe: SharedBreaker,
}

impl StageBreakers {
    /// Fresh (closed) breakers with the given shared config.
    pub fn new(config: BreakerConfig) -> StageBreakers {
        StageBreakers {
            search_api: SharedBreaker::new(config),
            extract: SharedBreaker::new(config),
            probe: SharedBreaker::new(config),
        }
    }

    /// The breaker guarding `stage`; `None` for [`Stage::Admission`]
    /// and [`Stage::Ingest`], which are gated by the serving queue
    /// depth, not a breaker (a failed ingest persist stays buffered and
    /// is retried at the next seal, so tripping a breaker would only
    /// block the in-memory path that still works).
    pub fn for_stage(&self, stage: Stage) -> Option<&SharedBreaker> {
        match stage {
            // Filter compilation is pure in-memory compute over the
            // pinned snapshot — its only failure mode is a bad request,
            // which no breaker can shield the next request from.
            Stage::Admission | Stage::Ingest | Stage::Filter => None,
            Stage::SearchApi => Some(&self.search_api),
            Stage::Extract => Some(&self.extract),
            Stage::Probe => Some(&self.probe),
        }
    }
}

/// The per-request deadline budget clock.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineClock {
    start: Instant,
    budget: Option<Duration>,
}

impl DeadlineClock {
    /// Start the clock now; `None` never expires.
    pub fn start(budget: Option<Duration>) -> DeadlineClock {
        DeadlineClock {
            start: Instant::now(),
            budget,
        }
    }

    /// Wall-clock time since the request started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Whether the budget has lapsed.
    pub fn expired(&self) -> bool {
        self.budget.is_some_and(|b| self.start.elapsed() >= b)
    }

    /// The deadline error for `stage`, stamped with the elapsed time.
    pub fn exceeded_at(&self, stage: Stage) -> SaccsError {
        SaccsError::DeadlineExceeded {
            stage,
            elapsed: self.elapsed(),
        }
    }
}

/// Count a breaker state transition on the `fault.breaker.*` metrics
/// and emit it into the owning request's trace, tagged with the stage
/// whose breaker moved. The transition comes from the breaker
/// operation's own CAS, so under concurrency each transition is counted
/// exactly once (by the thread whose operation performed it) —
/// re-reading `breaker.state()` here would race.
fn note_transition(stage: Stage, transition: BreakerTransition) {
    if !transition.changed() {
        return;
    }
    let to = match transition.after {
        BreakerState::Open => {
            saccs_obs::counter!("fault.breaker.opened").inc();
            "open"
        }
        BreakerState::HalfOpen => {
            saccs_obs::counter!("fault.breaker.half_open").inc();
            "half_open"
        }
        BreakerState::Closed => {
            saccs_obs::counter!("fault.breaker.closed").inc();
            "closed"
        }
    };
    saccs_obs::trace::record(saccs_obs::trace::TraceEvent::Breaker {
        stage: stage.label(),
        to,
    });
}

/// Run `op` for `stage` under the full protection stack: breaker gate,
/// bounded retries with deterministic backoff, deadline checks. One
/// breaker permit spans the whole logical call (retries included) and
/// is settled by exactly one `on_success`/`on_failure`.
///
/// Takes `&SharedBreaker`: concurrent callers share one breaker state.
/// On the fault-free path this is one closed-breaker CAS and one `op`
/// call — no sleeps, no counters.
pub fn call_with_retry<T>(
    stage: Stage,
    policy: &RetryPolicy,
    breaker: &SharedBreaker,
    deadline: &DeadlineClock,
    mut op: impl FnMut() -> Result<T, FaultError>,
) -> Result<T, SaccsError> {
    if deadline.expired() {
        saccs_obs::counter!("fault.deadline.exceeded").inc();
        saccs_obs::trace::record(saccs_obs::trace::TraceEvent::DeadlineExhausted {
            stage: stage.label(),
        });
        return Err(deadline.exceeded_at(stage));
    }
    // `allow` can lapse an open window into half-open.
    let (allowed, transition) = breaker.allow();
    note_transition(stage, transition);
    if !allowed {
        saccs_obs::counter!("fault.breaker.rejected").inc();
        return Err(SaccsError::CircuitOpen { stage });
    }
    let mut attempt: u32 = 0;
    loop {
        match op() {
            Ok(v) => {
                note_transition(stage, breaker.on_success());
                return Ok(v);
            }
            Err(fault) => {
                if attempt + 1 >= policy.max_attempts || deadline.expired() {
                    note_transition(stage, breaker.on_failure());
                    return Err(SaccsError::RetriesExhausted {
                        stage,
                        attempts: attempt + 1,
                        last: fault,
                    });
                }
                saccs_obs::counter!("fault.retry.attempts").inc();
                saccs_obs::trace::record(saccs_obs::trace::TraceEvent::Retry {
                    stage: stage.label(),
                    attempt: attempt + 1,
                });
                std::thread::sleep(policy.backoff.delay(attempt));
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_fault::FaultKind;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::new(Duration::ZERO, Duration::ZERO),
        }
    }

    fn fault(n: u64) -> FaultError {
        FaultError::new("algo1.probe", FaultKind::Unavailable, n)
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let breaker = SharedBreaker::new(BreakerConfig::default());
        let clock = DeadlineClock::start(None);
        let mut calls = 0u64;
        let out = call_with_retry(Stage::Probe, &fast_policy(), &breaker, &clock, || {
            calls += 1;
            if calls < 3 {
                Err(fault(calls))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn exhausted_retries_report_attempts_and_feed_the_breaker() {
        let breaker = SharedBreaker::new(BreakerConfig {
            failure_threshold: 2,
            ..BreakerConfig::default()
        });
        let clock = DeadlineClock::start(None);
        let run = |breaker: &SharedBreaker| {
            call_with_retry(Stage::Probe, &fast_policy(), breaker, &clock, || {
                Err::<(), _>(fault(1))
            })
        };
        match run(&breaker) {
            Err(SaccsError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(breaker.state(), BreakerState::Closed, "one logical failure");
        let _ = run(&breaker);
        assert_eq!(breaker.state(), BreakerState::Open, "second trips it");
        match run(&breaker) {
            Err(SaccsError::CircuitOpen { stage }) => assert_eq!(stage, Stage::Probe),
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_short_circuits_without_calling_op() {
        let breaker = SharedBreaker::new(BreakerConfig::default());
        let clock = DeadlineClock::start(Some(Duration::ZERO));
        let mut called = false;
        let out = call_with_retry(Stage::Extract, &fast_policy(), &breaker, &clock, || {
            called = true;
            Ok(())
        });
        assert!(matches!(out, Err(SaccsError::DeadlineExceeded { .. })));
        assert!(!called, "op must not run past the deadline");
    }

    #[test]
    fn degradation_report_tracks_worst_rung() {
        let mut d = Degradation::default();
        assert!(!d.is_degraded());
        assert_eq!(d.worst(), None);
        d.record(
            Stage::Probe,
            SaccsError::Fault(fault(1)),
            DegradeAction::DroppedTag,
        );
        d.record(
            Stage::Extract,
            SaccsError::Unavailable {
                stage: Stage::Extract,
            },
            DegradeAction::ObjectiveOnly,
        );
        assert!(d.is_degraded());
        assert_eq!(d.worst(), Some(DegradeAction::ObjectiveOnly));
    }

    #[test]
    fn stage_breakers_are_independent() {
        let b = StageBreakers::new(BreakerConfig {
            failure_threshold: 1,
            ..BreakerConfig::default()
        });
        b.for_stage(Stage::Extract)
            .expect("extract has a breaker")
            .on_failure();
        assert_eq!(b.extract.state(), BreakerState::Open);
        assert_eq!(b.search_api.state(), BreakerState::Closed);
        assert_eq!(b.probe.state(), BreakerState::Closed);
        assert!(
            b.for_stage(Stage::Admission).is_none(),
            "admission is queue-gated, not breaker-gated"
        );
    }
}

//! Multi-turn conversation state.
//!
//! The paper situates SACCS inside task-oriented dialog systems (§1, §3),
//! where a search is refined across turns: *"I want an Italian restaurant
//! in Montreal"* → *"with a romantic ambiance"* → *"actually, forget the
//! romantic part — just somewhere quiet"*. This module tracks the
//! accumulated objective slots and subjective filters of one search
//! episode, merging refinements and honoring retractions, so each turn
//! re-runs Algorithm 1 over the *session's* constraint set rather than
//! the last utterance alone.

use crate::dialog::Slots;
use saccs_text::{ConceptualSimilarity, SubjectiveTag};

/// Words that signal the user is *removing* a constraint.
const RETRACT_MARKERS: &[&str] = &[
    "forget",
    "drop",
    "remove",
    "without",
    "scratch",
    "nevermind",
];

/// The accumulated state of one search episode.
#[derive(Debug, Default, Clone)]
pub struct Conversation {
    slots: Slots,
    tags: Vec<SubjectiveTag>,
    turns: usize,
}

impl Conversation {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of utterances absorbed.
    pub fn turns(&self) -> usize {
        self.turns
    }

    /// The session's current objective slots.
    pub fn slots(&self) -> &Slots {
        &self.slots
    }

    /// The session's active subjective filters.
    pub fn tags(&self) -> &[SubjectiveTag] {
        &self.tags
    }

    /// Absorb one turn: merge new slots (later turns override earlier
    /// ones field-wise), and either add the turn's subjective tags or —
    /// when the utterance carries a retraction marker — remove the active
    /// tags similar to the mentioned ones.
    ///
    /// Returns the tags that were added or removed this turn.
    pub fn absorb(
        &mut self,
        utterance: &str,
        turn_slots: Slots,
        turn_tags: Vec<SubjectiveTag>,
        similarity: &ConceptualSimilarity,
    ) -> TurnEffect {
        self.turns += 1;
        if turn_slots.cuisine.is_some() {
            self.slots.cuisine = turn_slots.cuisine;
        }
        if turn_slots.location.is_some() {
            self.slots.location = turn_slots.location;
        }

        // Word-boundary match: "unforgettable" must not trigger "forget".
        let words = saccs_text::token::words_lower(utterance);
        let retracting = words.iter().any(|w| RETRACT_MARKERS.contains(&w.as_str()));
        let mut removed = Vec::new();
        let mut remaining_turn_tags = turn_tags;
        if retracting {
            self.tags.retain(|active| {
                let hit = remaining_turn_tags
                    .iter()
                    .any(|t| similarity.tag_similarity(active, t) > 0.6);
                if hit {
                    removed.push(active.clone());
                }
                !hit
            });
            // A retract-and-refine turn ("forget the romantic part — just
            // somewhere quiet") still *adds* the tags that were not the
            // subject of the retraction.
            remaining_turn_tags.retain(|t| {
                !removed
                    .iter()
                    .any(|r| similarity.tag_similarity(r, t) > 0.6)
            });
        }

        let mut added = Vec::new();
        for t in remaining_turn_tags {
            // Deduplicate against near-identical active filters.
            let duplicate = self
                .tags
                .iter()
                .any(|a| similarity.tag_similarity(a, &t) > 0.95);
            if !duplicate {
                added.push(t.clone());
                self.tags.push(t);
            }
        }
        if retracting {
            TurnEffect::Changed { added, removed }
        } else {
            TurnEffect::Added(added)
        }
    }

    /// Start a fresh episode (e.g. on an explicit "new search").
    pub fn reset(&mut self) {
        *self = Conversation::default();
    }
}

/// What one absorbed turn changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TurnEffect {
    /// A plain refinement turn: these tags were added.
    Added(Vec<SubjectiveTag>),
    /// A retraction turn: `removed` filters were dropped, and any tags in
    /// the same utterance that were *not* the subject of the retraction
    /// were added ("forget the romantic part — just somewhere quiet").
    Changed {
        added: Vec<SubjectiveTag>,
        removed: Vec<SubjectiveTag>,
    },
}

impl TurnEffect {
    /// Tags this turn added, regardless of variant.
    pub fn added(&self) -> &[SubjectiveTag] {
        match self {
            TurnEffect::Added(a) => a,
            TurnEffect::Changed { added, .. } => added,
        }
    }

    /// Tags this turn removed.
    pub fn removed(&self) -> &[SubjectiveTag] {
        match self {
            TurnEffect::Added(_) => &[],
            TurnEffect::Changed { removed, .. } => removed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_text::{Domain, Lexicon};

    fn sim() -> ConceptualSimilarity {
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants))
    }

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    #[test]
    fn refinement_accumulates_tags_and_slots() {
        let s = sim();
        let mut c = Conversation::new();
        c.absorb(
            "I want an Italian restaurant in Montreal",
            Slots {
                cuisine: Some("italian".into()),
                location: Some("montreal".into()),
            },
            vec![],
            &s,
        );
        let effect = c.absorb(
            "with a romantic ambiance",
            Slots::default(),
            vec![tag("romantic", "ambiance")],
            &s,
        );
        assert_eq!(effect, TurnEffect::Added(vec![tag("romantic", "ambiance")]));
        assert_eq!(c.turns(), 2);
        assert_eq!(c.slots().cuisine.as_deref(), Some("italian"));
        assert_eq!(c.tags(), &[tag("romantic", "ambiance")]);
    }

    #[test]
    fn later_slots_override_earlier() {
        let s = sim();
        let mut c = Conversation::new();
        c.absorb(
            "in montreal",
            Slots {
                cuisine: None,
                location: Some("montreal".into()),
            },
            vec![],
            &s,
        );
        c.absorb(
            "actually in lyon",
            Slots {
                cuisine: None,
                location: Some("lyon".into()),
            },
            vec![],
            &s,
        );
        assert_eq!(c.slots().location.as_deref(), Some("lyon"));
    }

    #[test]
    fn retraction_removes_similar_tags() {
        let s = sim();
        let mut c = Conversation::new();
        c.absorb(
            "x",
            Slots::default(),
            vec![tag("romantic", "ambiance"), tag("quick", "service")],
            &s,
        );
        let effect = c.absorb(
            "forget the romantic ambiance part",
            Slots::default(),
            vec![tag("romantic", "ambiance")],
            &s,
        );
        assert_eq!(effect.removed(), &[tag("romantic", "ambiance")]);
        assert!(effect.added().is_empty());
        assert_eq!(c.tags(), &[tag("quick", "service")]);
    }

    #[test]
    fn retract_and_refine_keeps_the_new_constraint() {
        // The module doc's own example: one utterance both retracts and
        // adds.
        let s = sim();
        let mut c = Conversation::new();
        c.absorb("x", Slots::default(), vec![tag("romantic", "ambiance")], &s);
        let effect = c.absorb(
            "forget the romantic part, just somewhere quiet",
            Slots::default(),
            vec![tag("romantic", "ambiance"), tag("quiet", "place")],
            &s,
        );
        assert_eq!(effect.removed(), &[tag("romantic", "ambiance")]);
        assert_eq!(effect.added(), &[tag("quiet", "place")]);
        assert_eq!(c.tags(), &[tag("quiet", "place")]);
    }

    #[test]
    fn retraction_catches_paraphrases() {
        let s = sim();
        let mut c = Conversation::new();
        c.absorb("x", Slots::default(), vec![tag("romantic", "ambiance")], &s);
        // User retracts with a paraphrase ("intimate atmosphere").
        c.absorb(
            "drop the intimate atmosphere thing",
            Slots::default(),
            vec![tag("intimate", "atmosphere")],
            &s,
        );
        assert!(c.tags().is_empty());
    }

    #[test]
    fn near_duplicates_are_not_stacked() {
        let s = sim();
        let mut c = Conversation::new();
        c.absorb("x", Slots::default(), vec![tag("delicious", "food")], &s);
        let effect = c.absorb("y", Slots::default(), vec![tag("delicious", "food")], &s);
        assert_eq!(effect, TurnEffect::Added(vec![]));
        assert_eq!(c.tags().len(), 1);
        // A genuinely different filter still lands.
        c.absorb("z", Slots::default(), vec![tag("quiet", "place")], &s);
        assert_eq!(c.tags().len(), 2);
    }

    #[test]
    fn reset_clears_the_episode() {
        let s = sim();
        let mut c = Conversation::new();
        c.absorb(
            "x",
            Slots {
                cuisine: Some("thai".into()),
                location: None,
            },
            vec![tag("quiet", "place")],
            &s,
        );
        c.reset();
        assert_eq!(c.turns(), 0);
        assert!(c.tags().is_empty());
        assert_eq!(c.slots(), &Slots::default());
    }
}

//! The typed service-failure taxonomy.
//!
//! Algorithm 1's stages historically had no failure model at all — any
//! infrastructure error was a panic. `SaccsError` names the ways a
//! stage can fail so the resilient serving path
//! ([`crate::service::SaccsService::rank_resilient`]) can decide, per
//! error, where on the degradation ladder to land (retry → drop the
//! tag → objective-only → partial results).

use saccs_fault::FaultError;
use std::fmt;
use std::time::Duration;

/// The failable stages of Algorithm 1 (the aggregate/pad stages are
/// pure in-memory compute and cannot fail), plus the serving front
/// end's admission gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The serving front end's bounded admission queue (`saccs-serve`);
    /// requests shed here never reach Algorithm 1 at all.
    Admission,
    /// The objective `search_api` call.
    SearchApi,
    /// Neural subjective-tag extraction.
    Extract,
    /// Subjective filter compilation against the pinned snapshot.
    Filter,
    /// Per-tag index probes.
    Probe,
    /// Live review ingestion into the segmented index.
    Ingest,
}

impl Stage {
    /// Stable lowercase name, matching the failpoint site suffix.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::SearchApi => "search_api",
            Stage::Extract => "extract",
            Stage::Filter => "filter",
            Stage::Probe => "probe",
            Stage::Ingest => "ingest",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a stage of a resilient request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SaccsError {
    /// A single injected (or, one day, real) infrastructure fault.
    Fault(FaultError),
    /// The stage's circuit breaker is open; the call was not attempted.
    CircuitOpen { stage: Stage },
    /// The stage failed on every allowed attempt.
    RetriesExhausted {
        stage: Stage,
        attempts: u32,
        last: FaultError,
    },
    /// The per-request deadline budget lapsed at this stage.
    DeadlineExceeded { stage: Stage, elapsed: Duration },
    /// The stage's component is absent (e.g. an `index_only` service
    /// has no extractor).
    Unavailable { stage: Stage },
    /// The request needs the neural extractor but the service was built
    /// [`crate::service::SaccsService::index_only`]. Unlike
    /// [`SaccsError::Unavailable`] this is a *caller* error — the request
    /// shape cannot be served by this service configuration, ever — so it
    /// gets its own variant instead of masquerading as an outage.
    NoExtractor,
    /// The request failed structural validation at the `sanitized()`
    /// seam (mirroring `ServeConfig::sanitized`): a malformed filter
    /// DSL, out-of-range θ, empty input, … Also a *caller* error —
    /// reported before any stage runs, never silently clamped.
    InvalidRequest {
        /// Which request field was rejected (`"filter"`, `"input"`, …).
        field: &'static str,
        /// Why; filter DSL errors include byte-offset spans.
        reason: String,
    },
}

impl SaccsError {
    /// The stage the error is attributed to.
    pub fn stage(&self) -> Stage {
        match self {
            SaccsError::Fault(e) => {
                if e.site.ends_with("search_api") {
                    Stage::SearchApi
                } else if e.site.ends_with("extract") {
                    Stage::Extract
                } else if e.site.ends_with("filter") {
                    Stage::Filter
                } else {
                    Stage::Probe
                }
            }
            SaccsError::CircuitOpen { stage }
            | SaccsError::RetriesExhausted { stage, .. }
            | SaccsError::DeadlineExceeded { stage, .. }
            | SaccsError::Unavailable { stage } => *stage,
            SaccsError::NoExtractor => Stage::Extract,
            // Rejected before any Algorithm-1 stage runs, like a shed.
            SaccsError::InvalidRequest { .. } => Stage::Admission,
        }
    }
}

impl fmt::Display for SaccsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaccsError::Fault(e) => write!(f, "{e}"),
            SaccsError::CircuitOpen { stage } => {
                write!(f, "circuit breaker open for stage `{stage}`")
            }
            SaccsError::RetriesExhausted {
                stage,
                attempts,
                last,
            } => write!(
                f,
                "stage `{stage}` failed after {attempts} attempts: {last}"
            ),
            SaccsError::DeadlineExceeded { stage, elapsed } => write!(
                f,
                "deadline exceeded at stage `{stage}` after {:.1}ms",
                elapsed.as_secs_f64() * 1e3
            ),
            SaccsError::Unavailable { stage } => {
                write!(f, "stage `{stage}` has no backing component")
            }
            SaccsError::NoExtractor => {
                write!(f, "service was built index-only and has no extractor")
            }
            SaccsError::InvalidRequest { field, reason } => {
                write!(f, "invalid request field `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SaccsError {}

impl From<FaultError> for SaccsError {
    fn from(e: FaultError) -> Self {
        SaccsError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_fault::FaultKind;

    #[test]
    fn stage_attribution_covers_every_variant() {
        let fault = FaultError::new("algo1.search_api", FaultKind::Timeout, 1);
        assert_eq!(SaccsError::Fault(fault.clone()).stage(), Stage::SearchApi);
        assert_eq!(
            SaccsError::Fault(FaultError::new("algo1.extract", FaultKind::Timeout, 1)).stage(),
            Stage::Extract
        );
        assert_eq!(
            SaccsError::Fault(FaultError::new("algo1.probe", FaultKind::Timeout, 1)).stage(),
            Stage::Probe
        );
        assert_eq!(
            SaccsError::CircuitOpen {
                stage: Stage::Extract
            }
            .stage(),
            Stage::Extract
        );
        assert_eq!(
            SaccsError::RetriesExhausted {
                stage: Stage::Probe,
                attempts: 3,
                last: fault,
            }
            .stage(),
            Stage::Probe
        );
    }

    #[test]
    fn displays_are_informative() {
        let e = SaccsError::RetriesExhausted {
            stage: Stage::Probe,
            attempts: 3,
            last: FaultError::new("algo1.probe", FaultKind::Unavailable, 7),
        };
        let s = e.to_string();
        assert!(
            s.contains("probe") && s.contains('3') && s.contains("unavailable"),
            "{s}"
        );
    }
}

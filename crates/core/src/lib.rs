//! # saccs-core
//!
//! SACCS — the Subjectivity Aware Conversational Search Service of the
//! EDBT 2021 paper, assembled from the substrate crates:
//!
//! * [`extractor`] — the subjective-tag extraction pipeline (tagger §4 +
//!   pairing §5) turning raw utterances and reviews into
//!   [`saccs_text::SubjectiveTag`]s;
//! * [`dialog`] — the rule-based intent recognition and slot filling the
//!   paper assumes the underlying dialog system provides (§3);
//! * [`search_api`] — the objective search API stand-in (the
//!   TripAdvisor/Yelp call of §3.2) over the synthetic entity database;
//! * [`service`] — Algorithm 1: subjective filtering and ranking of the
//!   API results against the tag index, with the §3.3 aggregation
//!   operators (mean / product / min) as an explicit ablation axis;
//! * [`builder`] — one-call construction of a fully trained service from a
//!   corpus (pretrain MiniBert → train tagger → fit pairing → extract tags
//!   from every review → build the index).

pub mod builder;
pub mod conversation;
pub mod dialog;
pub mod embedding_similarity;
pub mod extractor;
pub mod persist;
pub mod profile;
pub mod search_api;
pub mod service;

pub use builder::{SaccsBuilder, TrainedSaccs};
pub use conversation::{Conversation, TurnEffect};
pub use dialog::{Intent, RuleNlu, Slots};
pub use embedding_similarity::EmbeddingSimilarity;
pub use extractor::TagExtractor;
pub use persist::{load_extractor_weights, save_extractor, PersistError};
pub use profile::UserProfile;
pub use search_api::SearchApi;
pub use service::{Aggregation, SaccsConfig, SaccsService};

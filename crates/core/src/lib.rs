//! # saccs-core
//!
//! SACCS — the Subjectivity Aware Conversational Search Service of the
//! EDBT 2021 paper, assembled from the substrate crates:
//!
//! * [`extractor`] — the subjective-tag extraction pipeline (tagger §4 +
//!   pairing §5) turning raw utterances and reviews into
//!   [`saccs_text::SubjectiveTag`]s;
//! * [`dialog`] — the rule-based intent recognition and slot filling the
//!   paper assumes the underlying dialog system provides (§3);
//! * [`search_api`] — the objective search API stand-in (the
//!   TripAdvisor/Yelp call of §3.2) over the synthetic entity database;
//! * [`service`] — Algorithm 1: subjective filtering and ranking of the
//!   API results against the tag index, with the §3.3 aggregation
//!   operators (mean / product / min) as an explicit ablation axis;
//! * [`builder`] — one-call construction of a fully trained service from a
//!   corpus (pretrain MiniBert → train tagger → fit pairing → extract tags
//!   from every review → build the index).

/// One-call construction of a trained service from a corpus.
pub mod builder;
/// Validating builders for the service and resilience configs.
pub mod config;
/// Multi-turn conversation state over the service.
pub mod conversation;
/// Rule-based NLU: intents and slots for the dialog loop.
pub mod dialog;
/// Tag similarity backed by MiniBert embeddings.
pub mod embedding_similarity;
/// Typed failure taxonomy for the service stages.
pub mod error;
/// The neural tag extractor (tagger + pairing pipeline).
pub mod extractor;
/// Saving and loading extractor weights (SNN1 codec).
pub mod persist;
/// Per-user interest profiles accumulated across turns.
pub mod profile;
/// The typed rank request/response surface.
pub mod request;
/// Retry/breaker/deadline primitives and the degradation report.
pub mod resilient;
/// Objective search API stand-in over the entity database.
pub mod search_api;
/// Algorithm 1: subjective filtering and ranking.
pub mod service;
/// Cross-thread extractor sharing (blueprint + per-thread replicas).
pub mod shared_extractor;

/// Build a fully trained SACCS stack from a corpus.
pub use builder::{SaccsBuilder, TrainedSaccs};
/// Validating config builders and their rejection reasons.
pub use config::{ConfigError, ResilienceConfigBuilder, SaccsConfigBuilder};
/// Conversation state machine and per-turn outcomes.
pub use conversation::{Conversation, TurnEffect};
/// Rule-based intent/slot analysis of user turns.
pub use dialog::{Intent, RuleNlu, Slots};
/// Embedding-space tag similarity for the index.
pub use embedding_similarity::EmbeddingSimilarity;
/// The typed service failure taxonomy and its stages.
pub use error::{SaccsError, Stage};
/// Utterance to subjective tags, end to end.
pub use extractor::TagExtractor;
/// Extractor weight persistence.
pub use persist::{load_extractor_weights, save_extractor, PersistError};
/// A user's accumulated subjective interests.
pub use profile::UserProfile;
/// The typed rank request/response surface.
pub use request::{RankInput, RankRequest, RankResponse, RankResult};
/// Resilient-serving primitives and the degraded-response report.
pub use resilient::{Degradation, DegradationEvent, DegradeAction, ResilienceConfig, RetryPolicy};
/// The subjective query language, re-exported so request builders can
/// construct filters without a direct `saccs-query` dependency.
pub use saccs_query::{Filter, FilterExpr};
/// The objective (non-subjective) search backend.
pub use search_api::SearchApi;
/// The ranking service and its configuration.
pub use service::{Aggregation, SaccsConfig, SaccsService};
/// `Send + Sync` extractor blueprint with per-thread replicas.
pub use shared_extractor::SharedExtractor;

//! The subjective-tag extraction pipeline (Figure 2: tagging → pairing).

use saccs_pairing::PairingPipeline;
use saccs_tagger::Tagger;
use saccs_text::sentence::split_sentences;
use saccs_text::{tokenize_lower, Lexicon, Span, SpanKind, SubjectiveTag};

/// Extracts subjective tags from free text by tagging aspect/opinion spans
/// (§4) and pairing them (§5). This is the `extract_tags` function of
/// Algorithm 1 and the extractor box of Figure 1.
pub struct TagExtractor {
    tagger: Tagger,
    pairing: PairingPipeline,
    /// Optional gazetteer used for span repair (see
    /// [`TagExtractor::with_lexicon_repair`]).
    repair_lexicon: Option<Lexicon>,
}

impl TagExtractor {
    pub fn new(tagger: Tagger, pairing: PairingPipeline) -> Self {
        TagExtractor {
            tagger,
            pairing,
            repair_lexicon: None,
        }
    }

    /// Enable lexicon-guided span repair: a decoded multiword *aspect*
    /// span whose prefix is a known opinion phrase and whose suffix is a
    /// known aspect term is split into the two spans (and symmetrically
    /// for opinion spans ending in an aspect term). This is standard
    /// gazetteer-constrained decoding; it fixes the frequent neural-tagger
    /// failure of fusing an adjacent opinion+aspect bigram ("delicious
    /// food") into one span.
    pub fn with_lexicon_repair(mut self, lexicon: Lexicon) -> Self {
        self.repair_lexicon = Some(lexicon);
        self
    }

    /// Deterministic gazetteer extraction, used as a fallback when the
    /// neural pipeline extracts nothing from a sentence so the user-facing
    /// hot path (utterances, §3.2) degrades to high-precision dictionary
    /// matching instead of silence. Two surface orders are recognized:
    /// opinion-then-aspect ("delicious food", optionally over one filler
    /// token) and aspect-then-opinion across a short gap ("the food is
    /// delicious").
    fn lexicon_fallback(&self, tokens: &[String]) -> Vec<SubjectiveTag> {
        let Some(lex) = &self.repair_lexicon else {
            return Vec::new();
        };
        let mut out = self.fallback_opinion_first(tokens, lex);
        if out.is_empty() {
            out = self.fallback_aspect_first(tokens, lex);
        }
        out
    }

    /// "the food is delicious": known aspect term, then a known opinion
    /// phrase within a 3-token window.
    fn fallback_aspect_first(&self, tokens: &[String], lex: &Lexicon) -> Vec<SubjectiveTag> {
        let mut out = Vec::new();
        let n = tokens.len();
        let mut i = 0usize;
        while i < n {
            let mut asp_end = None;
            for len in (1..=2usize.min(n - i)).rev() {
                if lex.aspect_concept(&tokens[i..i + len].join(" ")).is_some() {
                    asp_end = Some(i + len);
                    break;
                }
            }
            let Some(asp_end) = asp_end else {
                i += 1;
                continue;
            };
            let mut found = None;
            'gap: for skip in 0..=2usize {
                let o_start = asp_end + skip;
                for len in (1..=3usize.min(n.saturating_sub(o_start))).rev() {
                    if lex
                        .opinion_group(&tokens[o_start..o_start + len].join(" "))
                        .is_some()
                    {
                        found = Some((o_start, o_start + len));
                        break 'gap;
                    }
                }
            }
            if let Some((o_start, o_end)) = found {
                out.push(SubjectiveTag::new(
                    &tokens[o_start..o_end].join(" "),
                    &tokens[i..asp_end].join(" "),
                ));
                i = o_end;
            } else {
                i = asp_end;
            }
        }
        out
    }

    /// "delicious food": known opinion phrase, then a known aspect term.
    fn fallback_opinion_first(&self, tokens: &[String], lex: &Lexicon) -> Vec<SubjectiveTag> {
        let mut out = Vec::new();
        let n = tokens.len();
        let mut i = 0usize;
        while i < n {
            // Longest opinion phrase starting at i.
            let mut op_end = None;
            for len in (1..=3usize.min(n - i)).rev() {
                let phrase = tokens[i..i + len].join(" ");
                if lex.opinion_group(&phrase).is_some() {
                    op_end = Some(i + len);
                    break;
                }
            }
            let Some(op_end) = op_end else {
                i += 1;
                continue;
            };
            // Aspect directly after, optionally skipping one filler token.
            let mut found = None;
            for skip in 0..=1usize {
                let a_start = op_end + skip;
                for len in (1..=2usize.min(n.saturating_sub(a_start))).rev() {
                    let phrase = tokens[a_start..a_start + len].join(" ");
                    if lex.aspect_concept(&phrase).is_some() {
                        found = Some((a_start, a_start + len));
                        break;
                    }
                }
                if found.is_some() {
                    break;
                }
            }
            if let Some((a_start, a_end)) = found {
                out.push(SubjectiveTag::new(
                    &tokens[i..op_end].join(" "),
                    &tokens[a_start..a_end].join(" "),
                ));
                i = a_end;
            } else {
                i = op_end;
            }
        }
        out
    }

    /// Apply the gazetteer split rule to one span list.
    fn repair(&self, tokens: &[String], spans: Vec<Span>) -> Vec<Span> {
        let Some(lex) = &self.repair_lexicon else {
            return spans;
        };
        let mut out = Vec::with_capacity(spans.len());
        for s in spans {
            if s.len() < 2 {
                out.push(s);
                continue;
            }
            let mut split_at = None;
            for cut in s.start + 1..s.end {
                let prefix = tokens[s.start..cut].join(" ");
                let suffix = tokens[cut..s.end].join(" ");
                if lex.opinion_group(&prefix).is_some() && lex.aspect_concept(&suffix).is_some() {
                    split_at = Some(cut);
                    break;
                }
            }
            match split_at {
                Some(cut) => {
                    out.push(Span::opinion(s.start, cut));
                    out.push(Span::aspect(cut, s.end));
                }
                None => out.push(s),
            }
        }
        out
    }

    pub fn tagger(&self) -> &Tagger {
        &self.tagger
    }

    pub fn pairing(&self) -> &PairingPipeline {
        &self.pairing
    }

    /// The lexicon used for boundary repair, if one was attached.
    pub fn repair_lexicon(&self) -> Option<&Lexicon> {
        self.repair_lexicon.as_ref()
    }

    /// Extract subjective tags from one sentence's tokens.
    pub fn extract_from_tokens(&self, tokens: &[String]) -> Vec<SubjectiveTag> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let spans = self.repair(tokens, self.tagger.extract_spans(tokens));
        let aspects: Vec<Span> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Aspect)
            .copied()
            .collect();
        let opinions: Vec<Span> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Opinion)
            .copied()
            .collect();
        if aspects.is_empty() || opinions.is_empty() {
            return self.lexicon_fallback(tokens);
        }
        let tags: Vec<SubjectiveTag> = self
            .pairing
            .pair_spans(tokens, &aspects, &opinions)
            .into_iter()
            .map(|(a, o)| SubjectiveTag::new(&o.text(tokens), &a.text(tokens)))
            // Spans over punctuation-only tokens normalize to empty parts;
            // an empty-sided tag is meaningless downstream.
            .filter(|t| !t.opinion.is_empty() && !t.aspect.is_empty())
            .collect();
        if tags.is_empty() {
            // Neural spans existed but every pairing was rejected or
            // degenerate: same dictionary fallback as the no-span case.
            return self.lexicon_fallback(tokens);
        }
        tags
    }

    /// Batch-warm the encoder's frozen-feature memo for `sentences`:
    /// deduped and fanned out across the `saccs-rt` pool by
    /// `MiniBert::features_batch`, so the per-sentence tagging that
    /// follows serves every forward from the cache. A no-op for zero or
    /// one (non-empty) sentences — nothing to batch.
    pub fn warm_features(&self, sentences: &[Vec<String>]) {
        let non_empty: Vec<Vec<String>> = sentences
            .iter()
            .filter(|t| !t.is_empty())
            .cloned()
            .collect();
        if non_empty.len() > 1 {
            let _ = self.tagger.bert().features_batch(&non_empty);
        }
    }

    /// Extract subjective tags from free text (reviews or utterances):
    /// sentence-split, tokenize, batch the tagger's feature forwards,
    /// then tag and pair per sentence.
    pub fn extract(&self, text: &str) -> Vec<SubjectiveTag> {
        let sentences = sentence_tokens(text);
        self.warm_features(&sentences);
        let mut out = Vec::new();
        for tokens in &sentences {
            out.extend(self.extract_from_tokens(tokens));
        }
        out
    }

    /// Fallible [`TagExtractor::extract`] behind the `algo1.extract`
    /// failpoint, for the resilient service path: a deployed extractor
    /// sits on a model server that can go away mid-request.
    pub fn try_extract(&self, text: &str) -> Result<Vec<SubjectiveTag>, saccs_fault::FaultError> {
        saccs_fault::failpoint!("algo1.extract")?;
        Ok(self.extract(text))
    }
}

/// The exact sentence-splitting + tokenization [`TagExtractor::extract`]
/// performs on an utterance, exposed so a serving front end can
/// pre-tokenize *several* queued requests and warm the encoder memo
/// across all of them in one [`TagExtractor::warm_features`] batch.
pub fn sentence_tokens(text: &str) -> Vec<Vec<String>> {
    split_sentences(text)
        .into_iter()
        .map(|sentence| {
            tokenize_lower(&sentence)
                .into_iter()
                .map(|t| t.text)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_data::{Dataset, DatasetId};
    use saccs_embed::{build_vocab, MiniBert, MiniBertConfig};
    use saccs_pairing::{PairingPipeline, PipelineConfig};
    use saccs_tagger::{Tagger, TrainConfig};
    use saccs_text::Domain;
    use std::rc::Rc;

    /// Minimal (barely trained) extractor with lexicon repair enabled —
    /// these tests exercise the deterministic fallback paths, not model
    /// quality.
    fn tiny_extractor() -> TagExtractor {
        let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
        let bert = Rc::new(MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 48,
                seed: 21,
            },
        ));
        let data = Dataset::generate_scaled(DatasetId::S4, 0.03);
        let tagger = Tagger::train(
            bert.clone(),
            &data.train,
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let dev: Vec<_> = data.test.iter().take(5).cloned().collect();
        let pairing = PairingPipeline::fit(
            bert,
            &data.train,
            &dev,
            PipelineConfig {
                discriminative: saccs_pairing::DiscriminativeConfig {
                    epochs: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        TagExtractor::new(tagger, pairing)
            .with_lexicon_repair(saccs_text::Lexicon::new(Domain::Restaurants))
    }

    fn toks(s: &str) -> Vec<String> {
        saccs_text::tokenize_lower(s)
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn fallback_recognizes_both_surface_orders() {
        let ex = tiny_extractor();
        // Force the fallback by calling it directly on in-lexicon phrases.
        let lex = saccs_text::Lexicon::new(Domain::Restaurants);
        let opinion_first = ex.fallback_opinion_first(&toks("any place with delicious food"), &lex);
        assert!(
            opinion_first.contains(&SubjectiveTag::new("delicious", "food")),
            "{opinion_first:?}"
        );
        let aspect_first = ex.fallback_aspect_first(&toks("the food is really good here"), &lex);
        assert!(
            aspect_first
                .iter()
                .any(|t| t.aspect == "food" && t.opinion.contains("good")),
            "{aspect_first:?}"
        );
    }

    #[test]
    fn fallback_ignores_out_of_lexicon_junk() {
        let ex = tiny_extractor();
        let lex = saccs_text::Lexicon::new(Domain::Restaurants);
        assert!(ex
            .fallback_opinion_first(&toks("zorgle blarf wibble"), &lex)
            .is_empty());
        assert!(ex
            .fallback_aspect_first(&toks("zorgle blarf wibble"), &lex)
            .is_empty());
    }

    #[test]
    fn extraction_never_returns_empty_sided_tags() {
        let ex = tiny_extractor();
        for text in [
            "🤖 !!! ~~~",
            "the food is delicious",
            "I want a restaurant with a nice staff",
            "",
        ] {
            for t in ex.extract(text) {
                assert!(
                    !t.opinion.is_empty() && !t.aspect.is_empty(),
                    "{t:?} from {text:?}"
                );
            }
        }
    }

    #[test]
    fn multiword_fallback_matches() {
        let ex = tiny_extractor();
        let lex = saccs_text::Lexicon::new(Domain::Restaurants);
        // "really good" is a 2-token opinion variant; "wine list" a 2-token
        // aspect member.
        let tags = ex.fallback_opinion_first(&toks("really good wine list"), &lex);
        assert!(
            tags.contains(&SubjectiveTag::new("really good", "wine list")),
            "{tags:?}"
        );
    }
}

//! Cross-thread sharing of the neural extractor.
//!
//! [`TagExtractor`] cannot be `Sync`: the autograd graph underneath it
//! (`saccs-nn`'s `Var`) is `Rc<RefCell<…>>`-based by design, and the
//! encoder handle inside the tagger and pairer is an `Rc<MiniBert>`.
//! A concurrent serving front end still wants one `SaccsService` shared
//! by every worker, so this module splits the extractor into:
//!
//! * a [`SharedExtractor`] **blueprint** — the serialized weights plus
//!   every construction parameter (vocabulary, encoder config, head
//!   shapes, repair lexicon). Plain owned data: `Send + Sync`.
//! * per-thread **replicas** — real `TagExtractor`s rebuilt from the
//!   blueprint on first use in each thread and cached in a
//!   thread-local, keyed by the blueprint's unique id.
//!
//! Replicas are *bitwise faithful*: construction is
//! same-shape-then-`load_state`, the exact mechanism the persistence
//! round-trip test pins (`persist::tests::
//! save_load_roundtrip_restores_extractions`), so every thread's
//! replica extracts identical tags with identical float bits. The
//! thread that builds the blueprint adopts the original extractor into
//! its own cache, keeping the single-threaded path allocation-free.

use crate::extractor::TagExtractor;
use saccs_embed::{MiniBert, MiniBertConfig};
use saccs_nn::{decode_state, encode_state};
use saccs_pairing::{DiscriminativePairer, PairingPipeline, PipelineConfig};
use saccs_tagger::{Architecture, Tagger, TaggerModel};
use saccs_text::vocab::Vocab;
use saccs_text::Lexicon;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Replicas cached per thread; beyond this many distinct blueprints the
/// cache is cleared (serving processes hold one or two services, so
/// eviction is a correctness backstop, not a tuning knob).
const REPLICA_CACHE_CAP: usize = 8;

thread_local! {
    static REPLICAS: RefCell<HashMap<u64, Rc<TagExtractor>>> = RefCell::new(HashMap::new());
}

fn next_uid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A `Send + Sync` blueprint of a trained [`TagExtractor`]: serialized
/// weights plus construction parameters. Threads materialize cached
/// bitwise-identical replicas via [`SharedExtractor::with_replica`].
pub struct SharedExtractor {
    uid: u64,
    vocab: Vocab,
    bert_config: MiniBertConfig,
    bert_bytes: Vec<u8>,
    tagger_arch: Architecture,
    tagger_hidden: usize,
    tagger_dropout: f32,
    tagger_state: Vec<u8>,
    pipeline_config: PipelineConfig,
    pairer_state: Vec<u8>,
    repair_lexicon: Option<Lexicon>,
}

impl SharedExtractor {
    /// Snapshot `extractor` into a blueprint and adopt the original as
    /// this thread's cached replica (so the constructing thread keeps
    /// serving from the already-warm instance).
    pub fn adopt(extractor: TagExtractor) -> SharedExtractor {
        let uid = next_uid();
        let bert = extractor.tagger().bert();
        let model = extractor.tagger().model();
        let shared = SharedExtractor {
            uid,
            vocab: bert.vocab().clone(),
            bert_config: bert.config().clone(),
            bert_bytes: bert.save_bytes().to_vec(),
            tagger_arch: model.architecture(),
            tagger_hidden: model.hidden(),
            tagger_dropout: model.dropout_p(),
            tagger_state: encode_state(&model.state()).to_vec(),
            pipeline_config: extractor.pairing().config().clone(),
            pairer_state: encode_state(&extractor.pairing().discriminative_model().state())
                .to_vec(),
            repair_lexicon: extractor.repair_lexicon().cloned(),
        };
        REPLICAS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache.len() >= REPLICA_CACHE_CAP {
                cache.clear();
            }
            cache.insert(uid, Rc::new(extractor));
        });
        shared
    }

    /// Run `f` against this thread's replica, building it from the
    /// blueprint on the thread's first use.
    pub fn with_replica<R>(&self, f: impl FnOnce(&TagExtractor) -> R) -> R {
        let replica = REPLICAS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(r) = cache.get(&self.uid) {
                return Rc::clone(r);
            }
            if cache.len() >= REPLICA_CACHE_CAP {
                cache.clear();
            }
            let r = Rc::new(self.build_replica());
            cache.insert(self.uid, Rc::clone(&r));
            r
        });
        f(&replica)
    }

    /// Materialize a fresh extractor from the blueprint: construct the
    /// same shapes, then load the serialized weights over them. The
    /// decode calls cannot fail — the bytes were produced by
    /// `encode_state`/`save_bytes` on same-shaped models in `adopt`.
    fn build_replica(&self) -> TagExtractor {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let bert = Rc::new(MiniBert::new(self.vocab.clone(), self.bert_config.clone()));
        if let Err(e) = bert.load_bytes(&self.bert_bytes) {
            unreachable!("blueprint bert bytes decode into the same-shaped encoder: {e}")
        }
        let mut rng = StdRng::seed_from_u64(0);
        let model = TaggerModel::new(
            self.tagger_arch,
            bert.dim(),
            self.tagger_hidden,
            self.tagger_dropout,
            &mut rng,
        );
        match decode_state(&self.tagger_state) {
            Ok(state) => model.load_state(&state),
            Err(e) => unreachable!("blueprint tagger state decodes: {e}"),
        }
        let tagger = Tagger::from_parts(Rc::clone(&bert), model);
        let pairer =
            DiscriminativePairer::replica(bert, self.pipeline_config.discriminative.hidden);
        match decode_state(&self.pairer_state) {
            Ok(state) => pairer.load_state(&state),
            Err(e) => unreachable!("blueprint pairer state decodes: {e}"),
        }
        let pairing = PairingPipeline::serving(pairer, self.pipeline_config.clone());
        let extractor = TagExtractor::new(tagger, pairing);
        match &self.repair_lexicon {
            Some(lex) => extractor.with_lexicon_repair(lex.clone()),
            None => extractor,
        }
    }
}

impl std::fmt::Debug for SharedExtractor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedExtractor")
            .field("uid", &self.uid)
            .field("bert_bytes", &self.bert_bytes.len())
            .field("tagger_state", &self.tagger_state.len())
            .field("pairer_state", &self.pairer_state.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_data::{Dataset, DatasetId};
    use saccs_embed::build_vocab;
    use saccs_tagger::TrainConfig;
    use saccs_text::Domain;

    fn tiny_extractor() -> TagExtractor {
        let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
        let bert = Rc::new(MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 48,
                seed: 9,
            },
        ));
        let data = Dataset::generate_scaled(DatasetId::S4, 0.05);
        let tagger = Tagger::train(
            bert.clone(),
            &data.train,
            &TrainConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        let dev: Vec<_> = data.test.iter().take(10).cloned().collect();
        let pairing = PairingPipeline::fit(
            bert,
            &data.train,
            &dev,
            PipelineConfig {
                discriminative: saccs_pairing::DiscriminativeConfig {
                    epochs: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        TagExtractor::new(tagger, pairing).with_lexicon_repair(Lexicon::new(Domain::Restaurants))
    }

    const PROBES: [&str; 3] = [
        "the food is delicious and the staff is friendly",
        "I want a cozy place with a great atmosphere",
        "somewhere with tasty pizza and quick service",
    ];

    #[test]
    fn adopting_thread_reuses_the_original_and_replicas_match_bitwise() {
        let original = tiny_extractor();
        let expected: Vec<_> = PROBES.iter().map(|p| original.extract(p)).collect();
        let shared = SharedExtractor::adopt(original);

        // Adopting thread: served from the cache seeded with the original.
        for (probe, want) in PROBES.iter().zip(&expected) {
            assert_eq!(&shared.with_replica(|ex| ex.extract(probe)), want);
        }

        // A forced rebuild (what any other thread does on first use) is
        // bitwise identical too.
        let rebuilt = shared.build_replica();
        for (probe, want) in PROBES.iter().zip(&expected) {
            assert_eq!(&rebuilt.extract(probe), want);
        }
    }

    #[test]
    fn other_threads_build_identical_replicas() {
        let original = tiny_extractor();
        let expected: Vec<_> = PROBES.iter().map(|p| original.extract(p)).collect();
        let shared = SharedExtractor::adopt(original);

        let results: Vec<Vec<_>> = saccs_rt::parallel_map(PROBES.len(), 1, |i| {
            shared.with_replica(|ex| ex.extract(PROBES[i]))
        });
        assert_eq!(results, expected, "pool-thread replicas diverged");
    }
}

//! Persistence of trained pipelines.
//!
//! Training the full SACCS stack takes minutes at paper scale; a deployed
//! service wants to train once and restart cheaply. This module saves and
//! restores the *weights* of a trained [`TagExtractor`] (MiniBert, tagger
//! head, discriminative pairer) with the `saccs-nn` state codec. The
//! caller reconstructs the same-shaped architecture (same configs, same
//! vocabulary — everything in this workspace is deterministic under a
//! seed) and loads the weights into it, skipping training entirely.
//!
//! Layout under the target directory:
//!
//! ```text
//! <dir>/bert.snn      MiniBert parameters
//! <dir>/tagger.snn    tagger head (BiLSTM + projection + CRF)
//! <dir>/pairer.snn    discriminative pairing classifier
//! ```
//!
//! The subjective index is *not* persisted here: it rebuilds from
//! registered evidence in milliseconds (`SubjectiveIndex::index_tags`),
//! and evidence itself is cheap to re-extract or to store via
//! [`saccs_index::index::EntityEvidence`]'s serde impls.

use crate::extractor::TagExtractor;
use saccs_nn::{decode_state, encode_state};
use std::io;
use std::path::Path;

/// Errors from save/load.
#[derive(Debug)]
pub enum PersistError {
    Io(io::Error),
    Codec(saccs_nn::CodecError),
    /// Injected by the `persist.save` / `persist.load` failpoints
    /// (chaos testing of the restart path).
    Fault(saccs_fault::FaultError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
            PersistError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl From<saccs_fault::FaultError> for PersistError {
    fn from(e: saccs_fault::FaultError) -> Self {
        PersistError::Fault(e)
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<saccs_nn::CodecError> for PersistError {
    fn from(e: saccs_nn::CodecError) -> Self {
        PersistError::Codec(e)
    }
}

/// Save the extractor's weights under `dir` (created if absent).
pub fn save_extractor(extractor: &TagExtractor, dir: &Path) -> Result<(), PersistError> {
    saccs_fault::failpoint!("persist.save")?;
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("bert.snn"), extractor.tagger().bert().save_bytes())?;
    std::fs::write(
        dir.join("tagger.snn"),
        encode_state(&extractor.tagger().model().state()),
    )?;
    std::fs::write(
        dir.join("pairer.snn"),
        encode_state(&extractor.pairing().discriminative_model().state()),
    )?;
    Ok(())
}

/// Load weights saved by [`save_extractor`] into a same-shaped extractor.
/// Parameters are interior-mutable, so a shared reference suffices.
pub fn load_extractor_weights(extractor: &TagExtractor, dir: &Path) -> Result<(), PersistError> {
    saccs_fault::failpoint!("persist.load")?;
    extractor
        .tagger()
        .bert()
        .load_bytes(&std::fs::read(dir.join("bert.snn"))?)?;
    extractor
        .tagger()
        .model()
        .load_state(&decode_state(&std::fs::read(dir.join("tagger.snn"))?)?);
    extractor
        .pairing()
        .discriminative_model()
        .load_state(&decode_state(&std::fs::read(dir.join("pairer.snn"))?)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::TagExtractor;
    use saccs_data::{Dataset, DatasetId};
    use saccs_embed::{build_vocab, MiniBert, MiniBertConfig};
    use saccs_pairing::{PairingPipeline, PipelineConfig};
    use saccs_tagger::{Tagger, TrainConfig};
    use saccs_text::Domain;
    use std::rc::Rc;

    /// A minimal trained extractor (seconds, not minutes).
    fn tiny_extractor(seed: u64) -> TagExtractor {
        let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
        let bert = Rc::new(MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 48,
                seed,
            },
        ));
        let data = Dataset::generate_scaled(DatasetId::S4, 0.05);
        let tagger = Tagger::train(
            bert.clone(),
            &data.train,
            &TrainConfig {
                epochs: 2,
                seed,
                ..Default::default()
            },
        );
        let dev: Vec<_> = data.test.iter().take(10).cloned().collect();
        let pairing = PairingPipeline::fit(
            bert,
            &data.train,
            &dev,
            PipelineConfig {
                discriminative: saccs_pairing::DiscriminativeConfig {
                    epochs: 1,
                    seed,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        TagExtractor::new(tagger, pairing)
    }

    #[test]
    fn save_load_roundtrip_restores_extractions() {
        let dir = std::env::temp_dir().join("saccs-persist-extractor");
        let trained = tiny_extractor(1);
        let probe = "the food is delicious and the staff is friendly";
        let before = trained.extract(probe);
        save_extractor(&trained, &dir).unwrap();

        // A differently-initialized twin (same shapes, different seed)…
        let twin = tiny_extractor(2);
        // …after loading, must reproduce the original's behaviour exactly.
        load_extractor_weights(&twin, &dir).unwrap();
        assert_eq!(twin.extract(probe), before);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_surface_as_io_errors() {
        let trained = tiny_extractor(3);
        let err = load_extractor_weights(&trained, Path::new("/nonexistent/saccs/persist/dir"))
            .unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err}");
    }

    #[test]
    fn corrupt_files_surface_as_codec_errors() {
        let dir = std::env::temp_dir().join("saccs-persist-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        for f in ["bert.snn", "tagger.snn", "pairer.snn"] {
            std::fs::write(dir.join(f), b"not a snapshot").unwrap();
        }
        let trained = tiny_extractor(4);
        let err = load_extractor_weights(&trained, &dir).unwrap_err();
        assert!(matches!(err, PersistError::Codec(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Algorithm 1: subjective filtering and ranking.
//!
//! ```text
//! S_api ← search_api(u)            (objective results)
//! tags  ← extract_tags(u)          (subjective tags in the utterance)
//! for t in tags:
//!     S_t ← index[t]               if t known
//!     S_t ← ⋃ index[tag]·sim       otherwise (θ_filter gate)
//! R ← ⋂ { S_api, S_t … }
//! return sort(aggregate_scores(R))
//! ```
//!
//! §3.3: with many tags, per-entity scores are aggregated with the
//! arithmetic mean ("we also experimented with … the product or min
//! operators, but the arithmetic mean works better in practice") — all
//! three are implemented so the ablation bench can verify that claim.
//!
//! # Concurrency
//!
//! The whole rank path is `&self`: a single `SaccsService` behind an
//! `Arc` serves any number of threads. The moving parts that make that
//! true live elsewhere — the index records probe history behind a
//! mutex, the stage breakers are lock-free atomics
//! ([`saccs_fault::SharedBreaker`]), and the (non-`Sync`) neural
//! extractor is shared as a [`crate::SharedExtractor`] blueprint with
//! bitwise-identical per-thread replicas. The canonical entry point is
//! [`SaccsService::rank_request`] over a [`RankRequest`]; the historical
//! per-shape methods (`rank`, `rank_utterance`, `rank_with_tags`, …) are
//! gone — every request shape, including subjective filters, goes
//! through the one front door.

use crate::error::{SaccsError, Stage};
use crate::extractor::TagExtractor;
use crate::request::{RankInput, RankRequest, RankResponse};
use crate::resilient::{
    call_with_retry, DeadlineClock, Degradation, DegradeAction, ResilienceConfig, StageBreakers,
};
use crate::search_api::SearchApi;
use crate::shared_extractor::SharedExtractor;
use saccs_index::{IngestReceipt, LiveIndex, LiveSnapshot, SubjectiveIndex};
use saccs_query::{compile, CompiledFilter, Filter, JoinOrder};
use saccs_text::SubjectiveTag;
use std::collections::HashMap;
use std::sync::Arc;

/// Score aggregation across tags (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    Mean,
    Product,
    Min,
}

impl Aggregation {
    pub const ALL: [Aggregation; 3] = [Aggregation::Mean, Aggregation::Product, Aggregation::Min];

    pub fn label(self) -> &'static str {
        match self {
            Aggregation::Mean => "mean",
            Aggregation::Product => "product",
            Aggregation::Min => "min",
        }
    }

    fn combine(self, scores: &[f32]) -> f32 {
        if scores.is_empty() {
            // The padding path can hand over an empty per-tag score set;
            // every operator must agree it contributes nothing (a bare
            // `product` would say 1.0 and a bare `min` +∞).
            return 0.0;
        }
        match self {
            Aggregation::Mean => scores.iter().sum::<f32>() / scores.len() as f32,
            Aggregation::Product => scores.iter().product(),
            Aggregation::Min => scores.iter().fold(f32::INFINITY, |m, &s| m.min(s)),
        }
    }
}

/// Service parameters. Prefer [`crate::SaccsConfigBuilder`] for
/// validated construction; the fields stay public for tests and
/// ablations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaccsConfig {
    pub aggregation: Aggregation,
    /// Number of results to return.
    pub top_k: usize,
    /// When the strict intersection of Algorithm 1 yields fewer than
    /// `top_k` entities, pad with partially-matching entities (those found
    /// under a subset of the tags), ranked below full matches. Without
    /// padding, short candidate lists waste NDCG@k mass.
    pub pad_partial_matches: bool,
}

impl Default for SaccsConfig {
    fn default() -> Self {
        SaccsConfig {
            aggregation: Aggregation::Mean,
            top_k: 10,
            pad_partial_matches: true,
        }
    }
}

/// The assembled subjective search service.
pub struct SaccsService {
    index: SubjectiveIndex,
    /// Live-ingestion backend. When present, probes pin one consistent
    /// [`LiveSnapshot`] per request and `self.index` is only the
    /// similarity/config carrier for profile weights.
    live: Option<Arc<LiveIndex>>,
    extractor: Option<SharedExtractor>,
    config: SaccsConfig,
    resilience: ResilienceConfig,
    breakers: StageBreakers,
}

impl SaccsService {
    /// Build from a populated index and a trained extractor. The
    /// extractor is adopted into a [`SharedExtractor`] so the service
    /// can be shared across serving threads.
    pub fn new(index: SubjectiveIndex, extractor: TagExtractor, config: SaccsConfig) -> Self {
        let resilience = ResilienceConfig::default();
        let breakers = StageBreakers::new(resilience.breaker);
        SaccsService {
            index,
            live: None,
            extractor: Some(SharedExtractor::adopt(extractor)),
            config,
            resilience,
            breakers,
        }
    }

    /// Build without a neural extractor; utterance-input requests fail
    /// with [`SaccsError::NoExtractor`] (or degrade to objective-only on
    /// the resilient path), tags-input requests work normally. Useful
    /// for index-only experiments and tests.
    pub fn index_only(index: SubjectiveIndex, config: SaccsConfig) -> Self {
        let resilience = ResilienceConfig::default();
        let breakers = StageBreakers::new(resilience.breaker);
        SaccsService {
            index,
            live: None,
            extractor: None,
            config,
            resilience,
            breakers,
        }
    }

    /// Build over a live-ingestion backend: probes pin one consistent
    /// snapshot of `live` per request (ingest proceeds concurrently
    /// without ever being observed mid-write), and
    /// [`SaccsService::ingest`] feeds reviews in. No neural extractor —
    /// utterance requests degrade to objective-only like
    /// [`SaccsService::index_only`].
    pub fn with_live_index(live: Arc<LiveIndex>, config: SaccsConfig) -> Self {
        let resilience = ResilienceConfig::default();
        let breakers = StageBreakers::new(resilience.breaker);
        // The static index is only the similarity/config carrier (for
        // profile weights); probes never touch it while `live` is set.
        let index = SubjectiveIndex::new(live.similarity().clone(), live.config().clone());
        SaccsService {
            index,
            live: Some(live),
            extractor: None,
            config,
            resilience,
            breakers,
        }
    }

    /// Replace the resilience tuning (retries, breakers, deadline) used
    /// by the resilient rank path. Resets the stage breakers.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.breakers = StageBreakers::new(resilience.breaker);
        self.resilience = resilience;
        self
    }

    /// The active resilience tuning.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// The per-stage circuit breakers (inspection; chaos tests assert
    /// on trip counts).
    pub fn breakers(&self) -> &StageBreakers {
        &self.breakers
    }

    pub fn index(&self) -> &SubjectiveIndex {
        &self.index
    }

    /// The live-ingestion backend, when the service was built
    /// [`SaccsService::with_live_index`].
    pub fn live_index(&self) -> Option<&Arc<LiveIndex>> {
        self.live.as_ref()
    }

    /// Ingest one review into the live backend. Fails with
    /// [`SaccsError::Unavailable`] at [`Stage::Ingest`] on a static
    /// (non-live) service.
    pub fn ingest(
        &self,
        entity_id: usize,
        review_tags: &[SubjectiveTag],
    ) -> Result<IngestReceipt, SaccsError> {
        match &self.live {
            Some(live) => Ok(live.add_review(entity_id, review_tags)),
            None => Err(SaccsError::Unavailable {
                stage: Stage::Ingest,
            }),
        }
    }

    pub fn index_mut(&mut self) -> &mut SubjectiveIndex {
        &mut self.index
    }

    /// The shared extractor blueprint, if this service has one. Serving
    /// front ends use it to warm per-thread replicas across queued
    /// requests.
    pub fn extractor(&self) -> Option<&SharedExtractor> {
        self.extractor.as_ref()
    }

    pub fn config(&self) -> &SaccsConfig {
        &self.config
    }

    pub fn set_aggregation(&mut self, aggregation: Aggregation) {
        self.config.aggregation = aggregation;
    }

    // ------------------------------------------------------------------
    // Canonical request-shaped API
    // ------------------------------------------------------------------

    /// Hardened Algorithm 1 over a typed request — the canonical entry
    /// point, and the unit the `saccs-serve` front end queues and sheds.
    ///
    /// Every failable stage (`search_api`, `extract`, per-tag `probe`)
    /// runs under its own circuit breaker and bounded retries with
    /// deterministic backoff, inside a per-request deadline budget
    /// ([`ResilienceConfig`]). Failures degrade instead of erroring,
    /// walking the ladder documented in [`crate::resilient`]:
    ///
    /// * an unevaluable subjective filter ranks unfiltered
    ///   ([`DegradeAction::Unfiltered`]);
    /// * a failing probe drops that tag's filter ([`DegradeAction::DroppedTag`]);
    /// * failed extraction — or every probe failing — returns the
    ///   objective API order ([`DegradeAction::ObjectiveOnly`]);
    /// * a lapsed deadline returns whatever is ranked so far
    ///   ([`DegradeAction::Partial`]);
    /// * an unreachable `search_api` returns empty results
    ///   ([`DegradeAction::Empty`]) — with the reason in the report.
    ///
    /// Tags-input requests skip the extraction stage entirely (no
    /// extractor required, no extract breaker touched). With no faults
    /// armed (or the `fault` feature off) the results are bitwise
    /// identical to [`SaccsService::rank_unguarded`] and the overhead is
    /// one closed-breaker check per stage. Every retry, breaker
    /// transition, degradation and deadline miss is counted on the
    /// `fault.*` metrics; `fault.degraded_requests` increments at most
    /// once per request.
    pub fn rank_request(&self, request: &RankRequest, api: &SearchApi<'_>) -> RankResponse {
        self.rank_request_at(request, api, DeadlineClock::start(self.resilience.deadline))
    }

    /// [`SaccsService::rank_request`] against an externally-started
    /// deadline clock. The serving front end starts the clock at
    /// *admission*, so time spent queued counts against the request's
    /// budget instead of silently extending it.
    pub fn rank_request_at(
        &self,
        request: &RankRequest,
        api: &SearchApi<'_>,
        clock: DeadlineClock,
    ) -> RankResponse {
        let _rank = saccs_obs::span!("algo1.rank_resilient");
        let config = request.config.as_ref().unwrap_or(&self.config);
        let mut degradation = Degradation::default();
        let finish =
            |results: Vec<(usize, f32)>, degradation: Degradation, clock: &DeadlineClock| {
                if degradation.is_degraded() {
                    saccs_obs::counter!("fault.degraded_requests").inc();
                }
                RankResponse {
                    results,
                    degradation,
                    elapsed: clock.elapsed(),
                    timings: saccs_obs::trace::current_stage_timings(),
                }
            };

        // Stage 1: objective search — the floor of the ladder. If it is
        // unreachable there is nothing left to serve.
        let mut api_results = {
            let _search = saccs_obs::span!("algo1.search_api");
            let retry = &self.resilience.retry;
            let breaker = &self.breakers.search_api;
            match call_with_retry(Stage::SearchApi, retry, breaker, &clock, || {
                api.try_search(&request.slots)
            }) {
                Ok(results) => results,
                Err(err) => {
                    degradation.record(Stage::SearchApi, err, DegradeAction::Empty);
                    return finish(Vec::new(), degradation, &clock);
                }
            }
        };

        // One pin for the whole request: the filter compiles against the
        // exact segment set the probes below will answer from, however
        // much is ingested mid-flight.
        let pinned = self.pin_live();

        // Stage 1b: the subjective filter, compiled against the pinned
        // snapshot and applied as a pure selection on the objective
        // candidates. A filter that cannot be compiled (malformed DSL
        // admitted past `sanitized()`, unknown attribute, armed
        // failpoint) costs only itself: the request continues unfiltered
        // on the mildest ladder rung.
        if let Some(filter) = &request.filter {
            let _filter = saccs_obs::span!("algo1.filter");
            let candidates = api_results.len() as u32;
            match self.try_filter(filter, pinned.as_deref(), api) {
                Ok(compiled) => {
                    api_results.retain(|&e| compiled.contains(e));
                    saccs_obs::trace::record(saccs_obs::trace::TraceEvent::FilterPlan {
                        leaves: compiled.summary().leaves,
                        candidates,
                        passed: api_results.len() as u32,
                    });
                }
                Err(err) => {
                    degradation.record(Stage::Filter, err, DegradeAction::Unfiltered);
                }
            }
        }

        // Stage 2: subjective tags. Pre-extracted tags skip the neural
        // stage entirely; an utterance goes through the extractor —
        // objective-only on failure (an absent extractor degrades
        // identically: `index_only` services serve objective results
        // instead of erroring on the resilient path).
        let tags: Vec<SubjectiveTag> = match &request.input {
            RankInput::Tags(tags) => tags.clone(),
            RankInput::Utterance(utterance) => {
                if clock.expired() {
                    saccs_obs::counter!("fault.deadline.exceeded").inc();
                    saccs_obs::trace::record(saccs_obs::trace::TraceEvent::DeadlineExhausted {
                        stage: Stage::Extract.label(),
                    });
                    degradation.record(
                        Stage::Extract,
                        clock.exceeded_at(Stage::Extract),
                        DegradeAction::ObjectiveOnly,
                    );
                    Vec::new()
                } else {
                    let _extract = saccs_obs::span!("algo1.extract");
                    match self.extractor.as_ref() {
                        None => {
                            degradation.record(
                                Stage::Extract,
                                SaccsError::Unavailable {
                                    stage: Stage::Extract,
                                },
                                DegradeAction::ObjectiveOnly,
                            );
                            Vec::new()
                        }
                        Some(shared) => {
                            let retry = &self.resilience.retry;
                            let breaker = &self.breakers.extract;
                            match call_with_retry(Stage::Extract, retry, breaker, &clock, || {
                                shared.with_replica(|ex| ex.try_extract(utterance))
                            }) {
                                Ok(tags) => tags,
                                Err(err) => {
                                    degradation.record(
                                        Stage::Extract,
                                        err,
                                        DegradeAction::ObjectiveOnly,
                                    );
                                    Vec::new()
                                }
                            }
                        }
                    }
                }
            }
        };
        if tags.is_empty() {
            return finish(
                Self::passthrough(&api_results, config.top_k),
                degradation,
                &clock,
            );
        }

        // Personalization weights are pure in-memory compute over the
        // profile — computed up front so the probe loop below stays a
        // single pass.
        let weights: Option<Vec<f32>> = request.profile.as_ref().map(|(profile, boost)| {
            tags.iter()
                .map(|t| profile.weight(t, self.index.similarity(), *boost))
                .collect()
        });

        // Stage 3: per-tag probes. Each failing tag is dropped on its
        // own; the deadline is re-checked between tags so a lapsed
        // budget truncates the probe list instead of blocking.
        let mut per_tag: Vec<HashMap<usize, f32>> = Vec::with_capacity(tags.len());
        let mut probe_failures: Vec<SaccsError> = Vec::new();
        {
            let _probe = saccs_obs::span!("algo1.probe");
            let retry = &self.resilience.retry;
            let breaker = &self.breakers.probe;
            for (i, t) in tags.iter().enumerate() {
                if clock.expired() {
                    saccs_obs::counter!("fault.deadline.exceeded").inc();
                    saccs_obs::trace::record(saccs_obs::trace::TraceEvent::DeadlineExhausted {
                        stage: Stage::Probe.label(),
                    });
                    degradation.record(
                        Stage::Probe,
                        clock.exceeded_at(Stage::Probe),
                        DegradeAction::Partial,
                    );
                    break;
                }
                let w = weights.as_ref().map_or(1.0, |ws| ws[i]);
                match call_with_retry(Stage::Probe, retry, breaker, &clock, || {
                    self.try_probe_at(pinned.as_deref(), t)
                }) {
                    Ok(scores) => {
                        per_tag.push(scores.into_iter().map(|(e, s)| (e, s * w)).collect())
                    }
                    Err(err) => probe_failures.push(err),
                }
            }
        }
        // A dropped probe costs one tag if its siblings survived, and
        // the whole subjective stage if none did.
        let probe_action = if per_tag.is_empty() {
            DegradeAction::ObjectiveOnly
        } else {
            DegradeAction::DroppedTag
        };
        for err in probe_failures {
            degradation.record(Stage::Probe, err, probe_action);
        }
        if per_tag.is_empty() {
            return finish(
                Self::passthrough(&api_results, config.top_k),
                degradation,
                &clock,
            );
        }

        // Stage 4: pure in-memory aggregation — cannot fail.
        finish(
            self.aggregate_and_pad(&api_results, &per_tag, config),
            degradation,
            &clock,
        )
    }

    /// Algorithm 1 over a typed request with *no* resilience machinery:
    /// no retries, no breakers, no deadline — a stage failure is the
    /// caller's problem. This is the fully-observable baseline the
    /// resilient path is measured against (each stage runs under its own
    /// `saccs-obs` span: `algo1.search_api`, `algo1.extract`,
    /// `algo1.probe`, `algo1.aggregate`, `algo1.pad`, all nested inside
    /// `algo1.rank`). Utterance input on an extractor-less service is
    /// [`SaccsError::NoExtractor`]; an unevaluable filter is
    /// [`SaccsError::InvalidRequest`] — no degradation here.
    pub fn rank_unguarded(
        &self,
        request: &RankRequest,
        api: &SearchApi<'_>,
    ) -> Result<RankResponse, SaccsError> {
        let _rank = saccs_obs::span!("algo1.rank");
        let clock = DeadlineClock::start(None);
        let mut api_results = {
            let _search = saccs_obs::span!("algo1.search_api");
            api.search(&request.slots)
        };
        let pinned = self.pin_live();
        if let Some(filter) = &request.filter {
            let _filter = saccs_obs::span!("algo1.filter");
            let candidates = api_results.len() as u32;
            let compiled = self.try_filter(filter, pinned.as_deref(), api)?;
            api_results.retain(|&e| compiled.contains(e));
            saccs_obs::trace::record(saccs_obs::trace::TraceEvent::FilterPlan {
                leaves: compiled.summary().leaves,
                candidates,
                passed: api_results.len() as u32,
            });
        }
        let tags: Vec<SubjectiveTag> = match &request.input {
            RankInput::Tags(tags) => tags.clone(),
            RankInput::Utterance(utterance) => {
                let _extract = saccs_obs::span!("algo1.extract");
                let shared = self.extractor.as_ref().ok_or(SaccsError::NoExtractor)?;
                shared.with_replica(|ex| ex.extract(utterance))
            }
        };
        let config = request.config.as_ref().unwrap_or(&self.config);
        let weights: Option<Vec<f32>> = request.profile.as_ref().map(|(profile, boost)| {
            tags.iter()
                .map(|t| profile.weight(t, self.index.similarity(), *boost))
                .collect()
        });
        let results = self.rank_core(
            &tags,
            &api_results,
            weights.as_deref(),
            config,
            pinned.as_deref(),
        );
        Ok(RankResponse {
            results,
            degradation: Degradation::default(),
            elapsed: clock.elapsed(),
            timings: saccs_obs::trace::current_stage_timings(),
        })
    }

    /// Extract tags from an utterance without ranking (for inspection).
    /// `Err(NoExtractor)` if the service was built
    /// [`SaccsService::index_only`].
    pub fn extract_tags(&self, utterance: &str) -> Result<Vec<SubjectiveTag>, SaccsError> {
        let shared = self.extractor.as_ref().ok_or(SaccsError::NoExtractor)?;
        Ok(shared.with_replica(|ex| ex.extract(utterance)))
    }

    // ------------------------------------------------------------------
    // Shared internals
    // ------------------------------------------------------------------

    /// Objective passthrough: the API order verbatim with zero scores.
    fn passthrough(api: &[usize], k: usize) -> Vec<(usize, f32)> {
        api.iter().take(k).map(|&e| (e, 0.0)).collect()
    }

    /// One pinned live snapshot for a request, or `None` on the static
    /// path.
    fn pin_live(&self) -> Option<Arc<LiveSnapshot>> {
        self.live.as_ref().map(|l| l.pin())
    }

    /// Compile the request's filter against the same pinned snapshot the
    /// probes read (or the static index), with the search API as the
    /// objective catalog. Behind the `algo1.filter` failpoint so chaos
    /// scenarios can force the unfiltered degradation rung.
    fn try_filter(
        &self,
        filter: &Filter,
        pinned: Option<&LiveSnapshot>,
        api: &SearchApi<'_>,
    ) -> Result<CompiledFilter, SaccsError> {
        saccs_fault::failpoint!("algo1.filter")?;
        let index = match (&self.live, pinned) {
            (Some(_), Some(snap)) => snap.index(),
            _ => &self.index,
        };
        compile(filter, index, api, JoinOrder::RarestFirst).map_err(|e| {
            SaccsError::InvalidRequest {
                field: "filter",
                reason: e.to_string(),
            }
        })
    }

    /// Probe against the request's pinned snapshot (live backend) or the
    /// static index.
    fn probe_at(&self, pinned: Option<&LiveSnapshot>, tag: &SubjectiveTag) -> Vec<(usize, f32)> {
        match (&self.live, pinned) {
            (Some(live), Some(snap)) => live.probe_pinned(snap, tag),
            _ => self.index.probe(tag),
        }
    }

    /// Fallible [`SaccsService::probe_at`] — both backends share the
    /// `algo1.probe` failpoint, so chaos scenarios hit them alike.
    fn try_probe_at(
        &self,
        pinned: Option<&LiveSnapshot>,
        tag: &SubjectiveTag,
    ) -> Result<Vec<(usize, f32)>, saccs_fault::FaultError> {
        match (&self.live, pinned) {
            (Some(live), Some(snap)) => live.try_probe_pinned(snap, tag),
            _ => self.index.try_probe(tag),
        }
    }

    /// Shared Algorithm-1 core: filter, aggregate, rank, with optional
    /// per-tag weights (the personalization hook). `config` is the
    /// *effective* config — the service's, or the request's override.
    /// `pinned` is the request's snapshot pin, shared with the filter
    /// stage so both read one consistent segment set.
    fn rank_core(
        &self,
        tags: &[SubjectiveTag],
        api_results: &[usize],
        weights: Option<&[f32]>,
        config: &SaccsConfig,
        pinned: Option<&LiveSnapshot>,
    ) -> Vec<(usize, f32)> {
        if tags.is_empty() {
            // No subjective signal: return the API order as-is.
            return Self::passthrough(api_results, config.top_k);
        }
        // Per-tag score maps (lines 7–10), optionally profile-weighted.
        let mut per_tag: Vec<HashMap<usize, f32>> = Vec::with_capacity(tags.len());
        {
            let _probe = saccs_obs::span!("algo1.probe");
            for (i, t) in tags.iter().enumerate() {
                let w = weights.map_or(1.0, |ws| ws[i]);
                per_tag.push(
                    self.probe_at(pinned, t)
                        .into_iter()
                        .map(|(e, s)| (e, s * w))
                        .collect(),
                );
            }
        }
        self.aggregate_and_pad(api_results, &per_tag, config)
    }

    /// Algorithm 1 lines 11–12 over already-probed tag score maps:
    /// intersect, aggregate, pad, rank. `per_tag` holds one map per
    /// *successfully probed* tag — the resilient path hands over fewer
    /// maps than extracted tags when probes were dropped, and the
    /// full/partial split then applies to the surviving tags only.
    fn aggregate_and_pad(
        &self,
        api_results: &[usize],
        per_tag: &[HashMap<usize, f32>],
        config: &SaccsConfig,
    ) -> Vec<(usize, f32)> {
        // Line 11: strict intersection, plus optional partial matches.
        let mut full: Vec<(usize, f32)> = Vec::new();
        let mut partial: Vec<(usize, f32, usize)> = Vec::new();
        {
            let _aggregate = saccs_obs::span!("algo1.aggregate");
            for &e in api_results {
                let scores: Vec<f32> = per_tag.iter().filter_map(|m| m.get(&e)).copied().collect();
                if scores.len() == per_tag.len() {
                    full.push((e, config.aggregation.combine(&scores)));
                } else if !scores.is_empty() && config.pad_partial_matches {
                    // Partials score as the aggregate of the *present* tags
                    // discounted by coverage. Under Mean this equals the
                    // zero-padded mean; under Product/Min it keeps partials
                    // comparable instead of collapsing them all to zero.
                    let coverage = scores.len() as f32 / per_tag.len() as f32;
                    let score = config.aggregation.combine(&scores) * coverage;
                    partial.push((e, score, scores.len()));
                }
            }
        }
        // The pad span covers the degenerate fallback too: a request's
        // trace always carries all five stages, whatever the data did.
        let _pad = saccs_obs::span!("algo1.pad");
        // Degenerate case: the subjective filters matched nothing at all
        // (e.g. every extracted tag is below θ_filter similarity to every
        // index tag). Fall back to the objective API order — SACCS then
        // behaves exactly like the underlying search service.
        if full.is_empty() && partial.is_empty() {
            return Self::passthrough(api_results, config.top_k);
        }
        full.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        partial.sort_by(|a, b| b.2.cmp(&a.2).then(b.1.total_cmp(&a.1)).then(a.0.cmp(&b.0)));
        let mut out = full;
        if out.len() < config.top_k {
            out.extend(partial.into_iter().map(|(e, s, _)| (e, s)));
        }
        out.truncate(config.top_k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::UserProfile;
    use saccs_index::index::{EntityEvidence, IndexConfig};
    use saccs_text::{ConceptualSimilarity, Domain, Lexicon};

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    /// Entities with the given ids, in the given order — the search API
    /// returns candidates in corpus order, so this is how tests gate and
    /// order the candidate pool through the request front door.
    fn entities_for(ids: &[usize]) -> Vec<saccs_data::Entity> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let lex = Lexicon::new(Domain::Restaurants);
        ids.iter()
            .map(|&i| {
                let mut rng = StdRng::seed_from_u64(5 + i as u64);
                saccs_data::Entity::sample(i, &lex, &mut rng)
            })
            .collect()
    }

    /// Rank pre-extracted tags against an explicit candidate list via
    /// the canonical request path.
    fn rank_tags(
        s: &SaccsService,
        tags: Vec<SubjectiveTag>,
        candidates: &[usize],
    ) -> Vec<(usize, f32)> {
        let ents = entities_for(candidates);
        let api = SearchApi::new(&ents);
        s.rank_request(&RankRequest::tags(tags), &api).results
    }

    /// Index with three entities: 0 is great food + nice staff, 1 is
    /// great food only, 2 is nice staff only.
    fn service() -> SaccsService {
        let mut idx = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig::default(),
        );
        idx.register_entity(EntityEvidence {
            entity_id: 0,
            review_count: 5,
            review_tags: vec![tag("delicious", "food"), tag("friendly", "staff")],
        });
        idx.register_entity(EntityEvidence {
            entity_id: 1,
            review_count: 5,
            review_tags: vec![tag("delicious", "food")],
        });
        idx.register_entity(EntityEvidence {
            entity_id: 2,
            review_count: 5,
            review_tags: vec![tag("friendly", "staff")],
        });
        idx.index_tags(&[tag("delicious", "food"), tag("nice", "staff")]);
        SaccsService::index_only(idx, SaccsConfig::default())
    }

    #[test]
    fn service_is_send_and_sync() {
        // The whole point of the `&self` migration: one service behind an
        // `Arc` must be shareable across serving threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SaccsService>();
        assert_send_sync::<RankRequest>();
        assert_send_sync::<RankResponse>();
    }

    #[test]
    fn combine_on_empty_scores_is_zero_for_every_operator() {
        // Regression: Product used to return 1.0 and Min +∞ on an empty
        // slice, which would float garbage to the top of padded rankings.
        for agg in Aggregation::ALL {
            assert_eq!(agg.combine(&[]), 0.0, "{} on empty slice", agg.label());
        }
    }

    #[test]
    fn single_tag_ranks_by_degree() {
        let s = service();
        let ranked = rank_tags(&s, vec![tag("delicious", "food")], &[0, 1, 2]);
        let ids: Vec<usize> = ranked.iter().map(|(e, _)| *e).collect();
        assert!(ids.contains(&0) && ids.contains(&1));
        assert!(!ids.contains(&2) || ranked.iter().find(|(e, _)| *e == 2).unwrap().1 == 0.0);
    }

    #[test]
    fn intersection_prefers_entities_matching_all_tags() {
        let s = service();
        let ranked = rank_tags(
            &s,
            vec![tag("delicious", "food"), tag("nice", "staff")],
            &[0, 1, 2],
        );
        assert_eq!(
            ranked[0].0, 0,
            "only entity 0 matches both tags: {ranked:?}"
        );
    }

    #[test]
    fn partial_matches_pad_below_full_matches() {
        let s = service();
        let ranked = rank_tags(
            &s,
            vec![tag("delicious", "food"), tag("nice", "staff")],
            &[0, 1, 2],
        );
        // All three entities appear (top_k 10, padding on), 0 first.
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].0, 0);
    }

    #[test]
    fn padding_can_be_disabled() {
        let mut s = service();
        s.config.pad_partial_matches = false;
        let ranked = rank_tags(
            &s,
            vec![tag("delicious", "food"), tag("nice", "staff")],
            &[0, 1, 2],
        );
        assert_eq!(ranked.len(), 1);
    }

    #[test]
    fn per_request_config_overrides_service_config() {
        // The service pads; the request turns padding off and shrinks
        // top_k. Tags-input requests need no extractor and no live API
        // entities beyond the candidate gate.
        let s = service();
        let ents = entities(3);
        let api = SearchApi::new(&ents);
        let padded = s.rank_request(
            &RankRequest::tags(vec![tag("delicious", "food"), tag("nice", "staff")]),
            &api,
        );
        assert_eq!(padded.results.len(), 3);
        let strict = s.rank_request(
            &RankRequest::tags(vec![tag("delicious", "food"), tag("nice", "staff")]).with_config(
                SaccsConfig {
                    pad_partial_matches: false,
                    ..SaccsConfig::default()
                },
            ),
            &api,
        );
        assert_eq!(strict.results.len(), 1, "{:?}", strict.results);
        assert!(strict.is_full_fidelity());
        // The service's own config is untouched by the override.
        assert!(s.config().pad_partial_matches);
    }

    #[test]
    fn tags_input_skips_the_extract_breaker_entirely() {
        let s = service();
        let ents = entities(3);
        let api = SearchApi::new(&ents);
        let before = s.breakers().extract.times_opened();
        let response = s.rank_request(&RankRequest::tags(vec![tag("delicious", "food")]), &api);
        assert!(!response.results.is_empty());
        assert!(response.is_full_fidelity());
        assert_eq!(s.breakers().extract.times_opened(), before);
    }

    #[test]
    fn unguarded_utterance_on_index_only_service_is_no_extractor() {
        let s = service();
        let ents = entities(3);
        let api = SearchApi::new(&ents);
        let err = s
            .rank_unguarded(&RankRequest::utterance("delicious food"), &api)
            .expect_err("index_only service cannot extract");
        assert_eq!(err, SaccsError::NoExtractor);
        assert_eq!(
            s.extract_tags("delicious food"),
            Err(SaccsError::NoExtractor)
        );
    }

    #[test]
    fn api_results_gate_the_candidates() {
        let s = service();
        let ranked = rank_tags(&s, vec![tag("delicious", "food")], &[1]);
        assert!(ranked.iter().all(|(e, _)| *e == 1));
    }

    #[test]
    fn empty_tags_pass_api_order_through() {
        let s = service();
        let ranked = rank_tags(&s, vec![], &[2, 0, 1]);
        assert_eq!(
            ranked.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![2, 0, 1]
        );
    }

    #[test]
    fn unknown_tag_uses_similarity_fallback_and_history() {
        let s = service();
        // "scrumptious food" is not an index tag; similar to delicious food.
        let ranked = rank_tags(&s, vec![tag("scrumptious", "food")], &[0, 1, 2]);
        assert!(!ranked.is_empty());
        assert_eq!(s.index().history().len(), 1);
    }

    #[test]
    fn aggregation_operators_differ() {
        let mut s = service();
        let tags = vec![tag("delicious", "food"), tag("nice", "staff")];
        let mean = rank_tags(&s, tags.clone(), &[0, 1, 2]);
        s.set_aggregation(Aggregation::Product);
        let product = rank_tags(&s, tags.clone(), &[0, 1, 2]);
        s.set_aggregation(Aggregation::Min);
        let min = rank_tags(&s, tags, &[0, 1, 2]);
        // Same top entity (0 matches everything), but different scores.
        assert_eq!(mean[0].0, 0);
        assert_eq!(product[0].0, 0);
        assert_eq!(min[0].0, 0);
        assert_ne!(mean[0].1, product[0].1);
    }

    #[test]
    fn personalization_tilts_toward_standing_interests() {
        let s = service();
        // Query mentions both dimensions; entity 1 excels at food, entity
        // 2 at staff. A staff-obsessed profile must pull entity 2 above 1.
        let tags = vec![tag("delicious", "food"), tag("nice", "staff")];
        let mut profile = UserProfile::new();
        for _ in 0..8 {
            profile.observe(&[tag("friendly", "staff")]);
        }
        let ents = entities_for(&[1, 2]);
        let api = SearchApi::new(&ents);
        let ranked = s
            .rank_request(
                &RankRequest::tags(tags.clone()).with_profile(profile, 2.0),
                &api,
            )
            .results;
        // Both entities match exactly one tag each; the profile weight on
        // the staff side must put entity 2 first.
        let pos1 = ranked.iter().position(|(e, _)| *e == 1).unwrap();
        let pos2 = ranked.iter().position(|(e, _)| *e == 2).unwrap();
        assert!(pos2 < pos1, "profile did not tilt ranking: {ranked:?}");
        // With boost 0 the order is purely score-based and deterministic.
        let neutral = s
            .rank_request(
                &RankRequest::tags(tags).with_profile(UserProfile::new(), 0.0),
                &api,
            )
            .results;
        assert_eq!(neutral.len(), 2);
    }

    #[test]
    fn profiled_request_agrees_with_unguarded_path() {
        // The resilient and unguarded paths share the probe/aggregate
        // core; with no faults armed they must agree bitwise.
        let s = service();
        let ents = entities(3);
        let api = SearchApi::new(&ents);
        let tags = vec![tag("delicious", "food"), tag("nice", "staff")];
        let mut profile = UserProfile::new();
        for _ in 0..8 {
            profile.observe(&[tag("friendly", "staff")]);
        }
        let request = RankRequest::tags(tags).with_profile(profile, 2.0);
        let resilient = s.rank_request(&request, &api);
        let unguarded = s.rank_unguarded(&request, &api).expect("tags input");
        assert_eq!(resilient.results, unguarded.results);
        assert!(resilient.is_full_fidelity());
    }

    fn entities(n: usize) -> Vec<saccs_data::Entity> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let lex = Lexicon::new(Domain::Restaurants);
        let mut rng = StdRng::seed_from_u64(5);
        (0..n)
            .map(|i| saccs_data::Entity::sample(i, &lex, &mut rng))
            .collect()
    }

    #[test]
    fn utterance_request_without_extractor_is_objective_only() {
        // `index_only` services have no extractor; the unguarded path
        // errors, the resilient path degrades to the objective order.
        let ents = entities(3);
        let api = SearchApi::new(&ents);
        let s = service();
        let out = s.rank_request(&RankRequest::utterance("delicious food"), &api);
        assert_eq!(out.results, vec![(0, 0.0), (1, 0.0), (2, 0.0)]);
        assert!(out.degradation.is_degraded());
        assert_eq!(out.degradation.worst(), Some(DegradeAction::ObjectiveOnly));
        assert!(matches!(
            out.degradation.events[0].error,
            SaccsError::Unavailable { .. }
        ));
    }

    #[test]
    fn zero_deadline_reports_instead_of_blocking() {
        let ents = entities(3);
        let api = SearchApi::new(&ents);
        let s = service().with_resilience(ResilienceConfig {
            deadline: Some(std::time::Duration::ZERO),
            ..ResilienceConfig::default()
        });
        let out = s.rank_request(&RankRequest::utterance("delicious food"), &api);
        assert!(out.results.is_empty());
        assert_eq!(out.degradation.worst(), Some(DegradeAction::Empty));
        assert!(matches!(
            out.degradation.events[0].error,
            SaccsError::DeadlineExceeded { .. }
        ));
    }

    #[test]
    fn top_k_truncates() {
        let mut s = service();
        s.config.top_k = 1;
        let ranked = rank_tags(
            &s,
            vec![tag("delicious", "food"), tag("nice", "staff")],
            &[0, 1, 2],
        );
        assert_eq!(ranked.len(), 1);
    }

    #[test]
    fn filter_retains_matches_and_degrades_when_uncompilable() {
        let s = service();
        let ents = entities(3);
        let api = SearchApi::new(&ents);
        // "delicious" matches the delicious-food postings: entities 0
        // and 1. Entity 2 is cut before ranking, at full fidelity.
        let req = RankRequest::tags(vec![tag("delicious", "food")]).with_filter_dsl("delicious");
        let out = s.rank_request(&req, &api);
        assert!(out.is_full_fidelity());
        let ids = out.item_ids();
        assert!(
            ids.contains(&0) && ids.contains(&1) && !ids.contains(&2),
            "{ids:?}"
        );

        // An unknown attribute cannot compile: the resilient path ranks
        // unfiltered on the mildest rung, the unguarded path errors.
        let bad =
            RankRequest::tags(vec![tag("delicious", "food")]).with_filter_dsl("Parking=garage");
        let out = s.rank_request(&bad, &api);
        assert_eq!(out.degradation.worst(), Some(DegradeAction::Unfiltered));
        assert!(!out.results.is_empty());
        let err = s.rank_unguarded(&bad, &api).expect_err("unknown attribute");
        assert!(matches!(
            err,
            SaccsError::InvalidRequest {
                field: "filter",
                ..
            }
        ));
    }
}

//! Algorithm 1: subjective filtering and ranking.
//!
//! ```text
//! S_api ← search_api(u)            (objective results)
//! tags  ← extract_tags(u)          (subjective tags in the utterance)
//! for t in tags:
//!     S_t ← index[t]               if t known
//!     S_t ← ⋃ index[tag]·sim       otherwise (θ_filter gate)
//! R ← ⋂ { S_api, S_t … }
//! return sort(aggregate_scores(R))
//! ```
//!
//! §3.3: with many tags, per-entity scores are aggregated with the
//! arithmetic mean ("we also experimented with … the product or min
//! operators, but the arithmetic mean works better in practice") — all
//! three are implemented so the ablation bench can verify that claim.

use crate::dialog::Slots;
use crate::extractor::TagExtractor;
use crate::profile::UserProfile;
use crate::search_api::SearchApi;
use saccs_index::SubjectiveIndex;
use saccs_text::SubjectiveTag;
use std::collections::HashMap;

/// Score aggregation across tags (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    Mean,
    Product,
    Min,
}

impl Aggregation {
    pub const ALL: [Aggregation; 3] = [Aggregation::Mean, Aggregation::Product, Aggregation::Min];

    pub fn label(self) -> &'static str {
        match self {
            Aggregation::Mean => "mean",
            Aggregation::Product => "product",
            Aggregation::Min => "min",
        }
    }

    fn combine(self, scores: &[f32]) -> f32 {
        if scores.is_empty() {
            // The padding path can hand over an empty per-tag score set;
            // every operator must agree it contributes nothing (a bare
            // `product` would say 1.0 and a bare `min` +∞).
            return 0.0;
        }
        match self {
            Aggregation::Mean => scores.iter().sum::<f32>() / scores.len() as f32,
            Aggregation::Product => scores.iter().product(),
            Aggregation::Min => scores.iter().fold(f32::INFINITY, |m, &s| m.min(s)),
        }
    }
}

/// Service parameters.
#[derive(Debug, Clone)]
pub struct SaccsConfig {
    pub aggregation: Aggregation,
    /// Number of results to return.
    pub top_k: usize,
    /// When the strict intersection of Algorithm 1 yields fewer than
    /// `top_k` entities, pad with partially-matching entities (those found
    /// under a subset of the tags), ranked below full matches. Without
    /// padding, short candidate lists waste NDCG@k mass.
    pub pad_partial_matches: bool,
}

impl Default for SaccsConfig {
    fn default() -> Self {
        SaccsConfig {
            aggregation: Aggregation::Mean,
            top_k: 10,
            pad_partial_matches: true,
        }
    }
}

/// The assembled subjective search service.
pub struct SaccsService {
    index: SubjectiveIndex,
    extractor: Option<TagExtractor>,
    config: SaccsConfig,
}

impl SaccsService {
    /// Build from a populated index and a trained extractor.
    pub fn new(index: SubjectiveIndex, extractor: TagExtractor, config: SaccsConfig) -> Self {
        SaccsService {
            index,
            extractor: Some(extractor),
            config,
        }
    }

    /// Build without a neural extractor; only
    /// [`SaccsService::rank_with_tags`] is available. Useful for index-only
    /// experiments and tests.
    pub fn index_only(index: SubjectiveIndex, config: SaccsConfig) -> Self {
        SaccsService {
            index,
            extractor: None,
            config,
        }
    }

    pub fn index(&self) -> &SubjectiveIndex {
        &self.index
    }

    pub fn index_mut(&mut self) -> &mut SubjectiveIndex {
        &mut self.index
    }

    /// The trained extractor, if this service has one.
    pub fn extractor(&self) -> Option<&TagExtractor> {
        self.extractor.as_ref()
    }

    pub fn config(&self) -> &SaccsConfig {
        &self.config
    }

    pub fn set_aggregation(&mut self, aggregation: Aggregation) {
        self.config.aggregation = aggregation;
    }

    /// Algorithm 1 with the utterance's tags already extracted (lines
    /// 6–12). `api_results` is S_api. Returns `(entity, score)` sorted by
    /// descending aggregated score, at most `top_k` entries.
    pub fn rank_with_tags(
        &mut self,
        tags: &[SubjectiveTag],
        api_results: &[usize],
    ) -> Vec<(usize, f32)> {
        self.rank_core(tags, api_results, None)
    }

    /// Personalized Algorithm 1 (§7 extension): per-tag scores are scaled
    /// by the user's profile weight before aggregation, so standing
    /// interests tilt the ranking. `boost` bounds the tilt (0 = no
    /// personalization; 0.5 = up to +50% weight on favorite dimensions).
    pub fn rank_with_tags_profiled(
        &mut self,
        tags: &[SubjectiveTag],
        api_results: &[usize],
        profile: &UserProfile,
        boost: f32,
    ) -> Vec<(usize, f32)> {
        let weights: Vec<f32> = tags
            .iter()
            .map(|t| profile.weight(t, self.index.similarity(), boost))
            .collect();
        self.rank_core(tags, api_results, Some(&weights))
    }

    /// Shared Algorithm-1 core: filter, aggregate, rank, with optional
    /// per-tag weights (the personalization hook).
    fn rank_core(
        &mut self,
        tags: &[SubjectiveTag],
        api_results: &[usize],
        weights: Option<&[f32]>,
    ) -> Vec<(usize, f32)> {
        let passthrough = |api: &[usize], k: usize| -> Vec<(usize, f32)> {
            api.iter().take(k).map(|&e| (e, 0.0)).collect()
        };
        if tags.is_empty() {
            // No subjective signal: return the API order as-is.
            return passthrough(api_results, self.config.top_k);
        }
        // Per-tag score maps (lines 7–10), optionally profile-weighted.
        let mut per_tag: Vec<HashMap<usize, f32>> = Vec::with_capacity(tags.len());
        {
            let _probe = saccs_obs::span!("algo1.probe");
            for (i, t) in tags.iter().enumerate() {
                let w = weights.map_or(1.0, |ws| ws[i]);
                per_tag.push(
                    self.index
                        .probe(t)
                        .into_iter()
                        .map(|(e, s)| (e, s * w))
                        .collect(),
                );
            }
        }

        // Line 11: strict intersection, plus optional partial matches.
        let mut full: Vec<(usize, f32)> = Vec::new();
        let mut partial: Vec<(usize, f32, usize)> = Vec::new();
        {
            let _aggregate = saccs_obs::span!("algo1.aggregate");
            for &e in api_results {
                let scores: Vec<f32> = per_tag.iter().filter_map(|m| m.get(&e)).copied().collect();
                if scores.len() == tags.len() {
                    full.push((e, self.config.aggregation.combine(&scores)));
                } else if !scores.is_empty() && self.config.pad_partial_matches {
                    // Partials score as the aggregate of the *present* tags
                    // discounted by coverage. Under Mean this equals the
                    // zero-padded mean; under Product/Min it keeps partials
                    // comparable instead of collapsing them all to zero.
                    let coverage = scores.len() as f32 / tags.len() as f32;
                    let score = self.config.aggregation.combine(&scores) * coverage;
                    partial.push((e, score, scores.len()));
                }
            }
        }
        // Degenerate case: the subjective filters matched nothing at all
        // (e.g. every extracted tag is below θ_filter similarity to every
        // index tag). Fall back to the objective API order — SACCS then
        // behaves exactly like the underlying search service.
        if full.is_empty() && partial.is_empty() {
            return passthrough(api_results, self.config.top_k);
        }
        let _pad = saccs_obs::span!("algo1.pad");
        full.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        partial.sort_by(|a, b| b.2.cmp(&a.2).then(b.1.total_cmp(&a.1)).then(a.0.cmp(&b.0)));
        let mut out = full;
        if out.len() < self.config.top_k {
            out.extend(partial.into_iter().map(|(e, s, _)| (e, s)));
        }
        out.truncate(self.config.top_k);
        out
    }

    /// Complete Algorithm 1 from a raw utterance and dialog slots: call
    /// the objective `search_api`, extract the subjective tags with the
    /// neural pipeline, then filter, aggregate and rank. This is the
    /// fully-observable serving entry point: each stage runs under its own
    /// `saccs-obs` span (`algo1.search_api`, `algo1.extract`,
    /// `algo1.probe`, `algo1.aggregate`, `algo1.pad`, all nested inside
    /// `algo1.rank`). Panics if the service was built
    /// [`SaccsService::index_only`].
    pub fn rank(
        &mut self,
        utterance: &str,
        api: &SearchApi<'_>,
        slots: &Slots,
    ) -> Vec<(usize, f32)> {
        let _rank = saccs_obs::span!("algo1.rank");
        let api_results = {
            let _search = saccs_obs::span!("algo1.search_api");
            api.search(slots)
        };
        let tags = {
            let _extract = saccs_obs::span!("algo1.extract");
            self.extract_tags(utterance)
        };
        self.rank_core(&tags, &api_results, None)
    }

    /// Full Algorithm 1 from a raw utterance: extract tags with the neural
    /// pipeline, then filter and rank. Panics if the service was built
    /// [`SaccsService::index_only`].
    pub fn rank_utterance(&mut self, utterance: &str, api_results: &[usize]) -> Vec<(usize, f32)> {
        let extractor = self
            .extractor
            .as_ref()
            // lint:allow(no-unwrap-in-lib): documented panic for index_only services
            .expect("service built without an extractor");
        let tags = extractor.extract(utterance);
        self.rank_with_tags(&tags, api_results)
    }

    /// Extract tags from an utterance without ranking (for inspection).
    pub fn extract_tags(&self, utterance: &str) -> Vec<SubjectiveTag> {
        self.extractor
            .as_ref()
            // lint:allow(no-unwrap-in-lib): documented panic for index_only services
            .expect("service built without an extractor")
            .extract(utterance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_index::index::{EntityEvidence, IndexConfig};
    use saccs_text::{ConceptualSimilarity, Domain, Lexicon};

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    /// Index with three entities: 0 is great food + nice staff, 1 is
    /// great food only, 2 is nice staff only.
    fn service() -> SaccsService {
        let mut idx = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig::default(),
        );
        idx.register_entity(EntityEvidence {
            entity_id: 0,
            review_count: 5,
            review_tags: vec![tag("delicious", "food"), tag("friendly", "staff")],
        });
        idx.register_entity(EntityEvidence {
            entity_id: 1,
            review_count: 5,
            review_tags: vec![tag("delicious", "food")],
        });
        idx.register_entity(EntityEvidence {
            entity_id: 2,
            review_count: 5,
            review_tags: vec![tag("friendly", "staff")],
        });
        idx.index_tags(&[tag("delicious", "food"), tag("nice", "staff")]);
        SaccsService::index_only(idx, SaccsConfig::default())
    }

    #[test]
    fn combine_on_empty_scores_is_zero_for_every_operator() {
        // Regression: Product used to return 1.0 and Min +∞ on an empty
        // slice, which would float garbage to the top of padded rankings.
        for agg in Aggregation::ALL {
            assert_eq!(agg.combine(&[]), 0.0, "{} on empty slice", agg.label());
        }
    }

    #[test]
    fn single_tag_ranks_by_degree() {
        let mut s = service();
        let ranked = s.rank_with_tags(&[tag("delicious", "food")], &[0, 1, 2]);
        let ids: Vec<usize> = ranked.iter().map(|(e, _)| *e).collect();
        assert!(ids.contains(&0) && ids.contains(&1));
        assert!(!ids.contains(&2) || ranked.iter().find(|(e, _)| *e == 2).unwrap().1 == 0.0);
    }

    #[test]
    fn intersection_prefers_entities_matching_all_tags() {
        let mut s = service();
        let ranked = s.rank_with_tags(
            &[tag("delicious", "food"), tag("nice", "staff")],
            &[0, 1, 2],
        );
        assert_eq!(
            ranked[0].0, 0,
            "only entity 0 matches both tags: {ranked:?}"
        );
    }

    #[test]
    fn partial_matches_pad_below_full_matches() {
        let mut s = service();
        let ranked = s.rank_with_tags(
            &[tag("delicious", "food"), tag("nice", "staff")],
            &[0, 1, 2],
        );
        // All three entities appear (top_k 10, padding on), 0 first.
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].0, 0);
    }

    #[test]
    fn padding_can_be_disabled() {
        let mut s = service();
        s.config.pad_partial_matches = false;
        let ranked = s.rank_with_tags(
            &[tag("delicious", "food"), tag("nice", "staff")],
            &[0, 1, 2],
        );
        assert_eq!(ranked.len(), 1);
    }

    #[test]
    fn api_results_gate_the_candidates() {
        let mut s = service();
        let ranked = s.rank_with_tags(&[tag("delicious", "food")], &[1]);
        assert!(ranked.iter().all(|(e, _)| *e == 1));
    }

    #[test]
    fn empty_tags_pass_api_order_through() {
        let mut s = service();
        let ranked = s.rank_with_tags(&[], &[2, 0, 1]);
        assert_eq!(
            ranked.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![2, 0, 1]
        );
    }

    #[test]
    fn unknown_tag_uses_similarity_fallback_and_history() {
        let mut s = service();
        // "scrumptious food" is not an index tag; similar to delicious food.
        let ranked = s.rank_with_tags(&[tag("scrumptious", "food")], &[0, 1, 2]);
        assert!(!ranked.is_empty());
        assert_eq!(s.index().history().len(), 1);
    }

    #[test]
    fn aggregation_operators_differ() {
        let mut s = service();
        let tags = [tag("delicious", "food"), tag("nice", "staff")];
        let mean = s.rank_with_tags(&tags, &[0, 1, 2]);
        s.set_aggregation(Aggregation::Product);
        let product = s.rank_with_tags(&tags, &[0, 1, 2]);
        s.set_aggregation(Aggregation::Min);
        let min = s.rank_with_tags(&tags, &[0, 1, 2]);
        // Same top entity (0 matches everything), but different scores.
        assert_eq!(mean[0].0, 0);
        assert_eq!(product[0].0, 0);
        assert_eq!(min[0].0, 0);
        assert_ne!(mean[0].1, product[0].1);
    }

    #[test]
    fn personalization_tilts_toward_standing_interests() {
        let mut s = service();
        // Query mentions both dimensions; entity 1 excels at food, entity
        // 2 at staff. A staff-obsessed profile must pull entity 2 above 1.
        let tags = [tag("delicious", "food"), tag("nice", "staff")];
        let mut profile = crate::profile::UserProfile::new();
        for _ in 0..8 {
            profile.observe(&[tag("friendly", "staff")]);
        }
        let ranked = s.rank_with_tags_profiled(&tags, &[1, 2], &profile, 2.0);
        // Both entities match exactly one tag each; the profile weight on
        // the staff side must put entity 2 first.
        let pos1 = ranked.iter().position(|(e, _)| *e == 1).unwrap();
        let pos2 = ranked.iter().position(|(e, _)| *e == 2).unwrap();
        assert!(pos2 < pos1, "profile did not tilt ranking: {ranked:?}");
        // With boost 0 the order is purely score-based and deterministic.
        let neutral = s.rank_with_tags_profiled(&tags, &[1, 2], &UserProfile::new(), 0.0);
        assert_eq!(neutral.len(), 2);
    }

    #[test]
    fn top_k_truncates() {
        let mut s = service();
        s.config.top_k = 1;
        let ranked = s.rank_with_tags(
            &[tag("delicious", "food"), tag("nice", "staff")],
            &[0, 1, 2],
        );
        assert_eq!(ranked.len(), 1);
    }
}

//! Rule-based NLU: intent recognition and slot filling.
//!
//! §3 assumes "the underlying dialog system is already equipped with
//! intent recognition [15, 23, 46] and slot filling techniques [4, 12]".
//! This module supplies that substrate with transparent rules: keyword
//! intent detection and pattern slot extraction ("I want to eat Italian
//! food near Lyon…" → intent `SearchRestaurant`, cuisine `italian`,
//! location `lyon`).

use saccs_text::token::words_lower;

/// Recognized user intents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intent {
    /// The paper's running example: find a restaurant.
    SearchRestaurant,
    /// Greeting/small talk (out of SACCS scope, answered conversationally).
    SmallTalk,
    /// Anything else.
    Unknown,
}

/// Objective slots extracted from the utterance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Slots {
    pub cuisine: Option<String>,
    pub location: Option<String>,
}

const CUISINES: &[&str] = &[
    "italian",
    "french",
    "chinese",
    "japanese",
    "indian",
    "mexican",
    "thai",
    "greek",
    "lebanese",
    "vietnamese",
];

const SEARCH_MARKERS: &[&str] = &[
    "restaurant",
    "eat",
    "dinner",
    "lunch",
    "food",
    "place",
    "table",
    "reservation",
    "dine",
    "somewhere",
    "anywhere",
    "spot",
];

const GREETINGS: &[&str] = &["hello", "hi", "hey", "thanks", "thank", "bye", "goodbye"];

/// The rule NLU.
#[derive(Debug, Default, Clone)]
pub struct RuleNlu;

impl RuleNlu {
    pub fn new() -> Self {
        RuleNlu
    }

    /// Classify the intent of an utterance.
    pub fn intent(&self, utterance: &str) -> Intent {
        let words = words_lower(utterance);
        if words.iter().any(|w| SEARCH_MARKERS.contains(&w.as_str())) {
            return Intent::SearchRestaurant;
        }
        if words.iter().any(|w| GREETINGS.contains(&w.as_str())) {
            return Intent::SmallTalk;
        }
        Intent::Unknown
    }

    /// Extract objective slots: a known cuisine anywhere, and the word
    /// following "in" / "near" / "around" as the location.
    pub fn slots(&self, utterance: &str) -> Slots {
        let words = words_lower(utterance);
        let cuisine = words
            .iter()
            .find(|w| CUISINES.contains(&w.as_str()))
            .cloned();
        let mut location = None;
        for (i, w) in words.iter().enumerate() {
            if matches!(w.as_str(), "in" | "near" | "around") {
                if let Some(next) = words.get(i + 1) {
                    // Skip articles ("in a romantic ambiance" is not a place).
                    if !matches!(next.as_str(), "a" | "an" | "the") {
                        location = Some(next.clone());
                        break;
                    }
                }
            }
        }
        Slots { cuisine, location }
    }

    /// Full parse: `(intent, slots)`.
    pub fn parse(&self, utterance: &str) -> (Intent, Slots) {
        (self.intent(utterance), self.slots(utterance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_utterance() {
        // §3: "I want to eat Italian food near Lyon in a romantic ambiance"
        let nlu = RuleNlu::new();
        let (intent, slots) =
            nlu.parse("I want to eat Italian food near Lyon in a romantic ambiance");
        assert_eq!(intent, Intent::SearchRestaurant);
        assert_eq!(slots.cuisine.as_deref(), Some("italian"));
        assert_eq!(slots.location.as_deref(), Some("lyon"));
    }

    #[test]
    fn melbourne_example() {
        let nlu = RuleNlu::new();
        let (intent, slots) = nlu.parse(
            "I want an Italian restaurant in Melbourne that serves delicious food and has a nice staff",
        );
        assert_eq!(intent, Intent::SearchRestaurant);
        assert_eq!(slots.location.as_deref(), Some("melbourne"));
    }

    #[test]
    fn article_after_in_is_not_a_location() {
        let nlu = RuleNlu::new();
        let slots = nlu.slots("I want a restaurant in a quiet place");
        assert_eq!(slots.location, None);
    }

    #[test]
    fn greeting_is_small_talk() {
        let nlu = RuleNlu::new();
        assert_eq!(nlu.intent("hello there"), Intent::SmallTalk);
        assert_eq!(nlu.intent("qwz zzz"), Intent::Unknown);
    }

    #[test]
    fn no_slots_when_absent() {
        let nlu = RuleNlu::new();
        assert_eq!(nlu.slots("any good place to eat"), Slots::default());
    }
}

//! `saccs-rt` — a scoped work-stealing thread pool (stdlib only).
//!
//! Every parallel region in the workspace goes through this crate; raw
//! `std::thread::spawn` in library code is rejected by the
//! `no-spawn-outside-rt` xtask lint. The pool is process-global and
//! lazy: the first parallel call spawns `SACCS_THREADS - 1` persistent
//! workers (default: `std::thread::available_parallelism`), each owning
//! a deque it pops LIFO and others steal FIFO, plus a shared injector
//! for submissions from non-pool threads. The calling thread always
//! participates — while a [`scope`] waits it drains queued tasks — so
//! correctness never depends on workers existing and `SACCS_THREADS=1`
//! runs everything inline with zero queue traffic.
//!
//! **Determinism contract**: the pool makes no ordering promises between
//! tasks, so callers must keep results independent of interleaving. The
//! workspace does this in two ways: (1) tasks write disjoint output
//! ranges whose values are pure functions of the inputs (matmul row
//! blocks, per-tag postings), and (2) reductions run over a *fixed shard
//! layout* in a fixed order after the parallel phase (tagger gradient
//! accumulation). Under that contract every result is bitwise identical
//! at any thread count — see DESIGN.md §9 and the cross-thread-count
//! proptests in `nn`, `tagger` and `index`.
//!
//! The pool size is exported as the `rt.pool.threads` gauge via
//! `saccs-obs` whenever it changes.

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Hard cap on pool workers; `SACCS_THREADS` is clamped to this.
pub const MAX_THREADS: usize = 64;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Fan-out width override installed by [`set_threads`] (0 = none).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The pool width this process would configure from the environment:
/// `SACCS_THREADS` if set (clamped to `1..=MAX_THREADS`), otherwise the
/// machine's available parallelism. Read once at first use.
fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("SACCS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, MAX_THREADS)
    })
}

/// Current fan-out width: the [`set_threads`] override if one is
/// installed, otherwise the configured (`SACCS_THREADS`/cores) width.
pub fn threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => configured_threads(),
        n => n,
    }
}

/// Override the fan-out width in-process (test/bench hook).
///
/// Grows the worker set if needed so `n`-wide scopes actually run on
/// `n` threads; never shrinks it — narrowing only changes how many
/// chunks [`parallel_for_chunks`] and friends cut, which is exactly
/// what the cross-thread-count determinism tests exercise. Concurrent
/// callers race on the single global override, so tests serialize on a
/// lock around it.
pub fn set_threads(n: usize) {
    let n = n.clamp(1, MAX_THREADS);
    OVERRIDE.store(n, Ordering::Relaxed);
    if n > 1 {
        pool().ensure_workers(n - 1);
    }
    export_pool_gauge();
}

fn export_pool_gauge() {
    saccs_obs::registry()
        .gauge("rt.pool.threads")
        .set(threads() as f64);
}

thread_local! {
    /// Index of this thread's own deque when it is a pool worker.
    static WORKER_QUEUE: Cell<Option<usize>> = const { Cell::new(None) };
}

struct Pool {
    /// `queues[0]` is the injector; `queues[1..]` are worker deques.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Count of queued-but-unclaimed tasks across all queues.
    ready: AtomicUsize,
    /// Parking lot for idle workers; pushers take this lock empty to
    /// close the check-then-wait race before notifying.
    sleep: Mutex<()>,
    wake: Condvar,
    /// Workers actually spawned so far (grown lazily, never shrunk).
    spawned: AtomicUsize,
    /// Serializes worker spawning.
    grow: Mutex<()>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool = Pool {
            queues: (0..=MAX_THREADS)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            ready: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            spawned: AtomicUsize::new(0),
            grow: Mutex::new(()),
        };
        export_pool_gauge();
        pool
    })
}

/// Recover the guard from a poisoned mutex: pool state is only queues of
/// not-yet-started tasks, which stay consistent across a panic (task
/// panics are caught before they can unwind through a held lock).
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

impl Pool {
    fn has_workers(&self) -> bool {
        self.spawned.load(Ordering::Relaxed) > 0
    }

    /// Spawn workers until at least `n` exist (capped at `MAX_THREADS`).
    fn ensure_workers(&'static self, n: usize) {
        let n = n.min(MAX_THREADS);
        if self.spawned.load(Ordering::Acquire) >= n {
            return;
        }
        let _g = relock(self.grow.lock());
        while self.spawned.load(Ordering::Acquire) < n {
            let id = self.spawned.load(Ordering::Acquire);
            let builder = std::thread::Builder::new().name(format!("saccs-rt-{id}"));
            // Worker threads are detached and live for the process.
            let spawned = builder.spawn(move || self.worker_loop(id));
            match spawned {
                Ok(_) => {
                    self.spawned.fetch_add(1, Ordering::Release);
                }
                Err(_) => break, // out of threads: callers still make progress inline
            }
        }
    }

    fn worker_loop(&'static self, id: usize) {
        WORKER_QUEUE.with(|w| w.set(Some(id + 1)));
        loop {
            if let Some(task) = self.try_pop(id + 1) {
                task();
                continue;
            }
            let guard = relock(self.sleep.lock());
            if self.ready.load(Ordering::Acquire) > 0 {
                continue; // re-race for the task instead of sleeping
            }
            // Timeout is belt-and-braces; pushers notify under `sleep`.
            let _ = self.wake.wait_timeout(guard, Duration::from_millis(100));
        }
    }

    /// Pop a task: own deque LIFO first (cache-warm), then the injector,
    /// then steal FIFO from the other workers, scanning from `home`.
    fn try_pop(&self, home: usize) -> Option<Task> {
        if self.ready.load(Ordering::Acquire) == 0 {
            return None;
        }
        if let Some(t) = self.pop_back(home) {
            return Some(t);
        }
        let live = self.spawned.load(Ordering::Acquire) + 1;
        for i in 0..live {
            let q = (home + i) % live;
            if q == home {
                continue;
            }
            if let Some(t) = self.pop_front(q) {
                return Some(t);
            }
        }
        None
    }

    fn pop_back(&self, q: usize) -> Option<Task> {
        let t = relock(self.queues[q].lock()).pop_back();
        if t.is_some() {
            self.ready.fetch_sub(1, Ordering::AcqRel);
        }
        t
    }

    fn pop_front(&self, q: usize) -> Option<Task> {
        let t = relock(self.queues[q].lock()).pop_front();
        if t.is_some() {
            self.ready.fetch_sub(1, Ordering::AcqRel);
        }
        t
    }

    /// Queue a task on the current worker's deque (or the injector from
    /// non-pool threads) and wake one sleeper.
    fn push(&self, task: Task) {
        let q = WORKER_QUEUE.with(|w| w.get()).unwrap_or(0);
        relock(self.queues[q].lock()).push_back(task);
        self.ready.fetch_add(1, Ordering::AcqRel);
        // Empty critical section: a worker past its ready-check is
        // guaranteed to be inside wait() once we hold `sleep`.
        drop(relock(self.sleep.lock()));
        self.wake.notify_one();
    }
}

/// Bookkeeping shared by a [`scope`] and its spawned tasks.
struct ScopeState {
    pending: AtomicUsize,
    /// First panic payload from any task; re-raised when the scope ends.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    done: Mutex<()>,
    all_done: Condvar,
}

impl ScopeState {
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send + 'static>) {
        let mut slot = relock(self.panic.lock());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            drop(relock(self.done.lock()));
            self.all_done.notify_all();
        }
    }
}

/// Handle for spawning borrowing tasks; created by [`scope`].
pub struct Scope<'env> {
    pool: &'static Pool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, mirroring `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Run `f` on the pool. The closure may borrow from the environment
    /// of the enclosing [`scope`] call; a panic inside it is captured
    /// and re-raised on the scope's caller after all tasks finish.
    ///
    /// With no workers spawned (the `SACCS_THREADS=1` fast path) the
    /// task runs inline, so single-threaded configs pay no queue or
    /// wakeup traffic at all.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        // Capture the caller's request-trace context (one relaxed load
        // when tracing is off) so pool workers attribute their work to
        // the owning request for the task's duration.
        let trace = saccs_obs::trace::propagated();
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let _trace_scope = trace.map(saccs_obs::trace::install);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.record_panic(payload);
            }
            state.complete_one();
        });
        // SAFETY: `scope` blocks until `pending` drops to zero before
        // returning, so the task (and everything it borrows from `'env`)
        // cannot outlive the borrowed environment. The lifetime is
        // erased only to store the task in the process-global queues.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task) };
        if self.pool.has_workers() {
            self.pool.push(task);
        } else {
            task();
        }
    }

    /// Block until every spawned task has completed, executing queued
    /// tasks on this thread while waiting.
    fn wait(&self) {
        let home = WORKER_QUEUE.with(|w| w.get()).unwrap_or(0);
        while self.state.pending.load(Ordering::Acquire) > 0 {
            if let Some(task) = self.pool.try_pop(home) {
                task();
                continue;
            }
            let guard = relock(self.state.done.lock());
            if self.state.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            // Timeout bounds the window of the (already handshaked)
            // completion race; normally the condvar fires first.
            let _ = self
                .state
                .all_done
                .wait_timeout(guard, Duration::from_millis(1));
        }
    }
}

/// Run `f` with a [`Scope`] whose tasks may borrow from the caller's
/// stack. Returns `f`'s value after every spawned task has completed;
/// the calling thread helps execute queued tasks while it waits (which
/// is what makes nested scopes on worker threads deadlock-free). If any
/// task panicked, the first payload is re-raised here.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    if threads() > 1 {
        pool().ensure_workers(threads() - 1);
    }
    let scope = Scope {
        pool: pool(),
        state: Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(()),
            all_done: Condvar::new(),
        }),
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    scope.wait();
    let task_panic = relock(scope.state.panic.lock()).take();
    match (result, task_panic) {
        // A task panic wins over the closure's own result or panic: the
        // closure usually only spawns, so the task payload is the root
        // cause.
        (_, Some(payload)) => resume_unwind(payload),
        (Err(payload), None) => resume_unwind(payload),
        (Ok(r), None) => r,
    }
}

/// Run `a` and `b` potentially in parallel and return both results.
/// `a` goes to the pool, `b` runs on the calling thread.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
{
    let mut ra: Option<RA> = None;
    let rb = {
        let slot = &mut ra;
        scope(|s| {
            s.spawn(move || *slot = Some(a()));
            b()
        })
    };
    // `scope` re-raises if `a` panicked, so the slot is always filled.
    let ra = ra.unwrap_or_else(|| unreachable!("join: task completed without a result"));
    (ra, rb)
}

/// Split `data` into contiguous chunks of `chunk` elements (the last one
/// may be shorter) and run `f(chunk_index, chunk)` for each, in parallel
/// when the pool is wider than one thread. Chunk *contents* for a given
/// index are identical at any width, so callers whose `f` writes a pure
/// function of the chunk get thread-count-independent results only if
/// they also pick `chunk` independently of [`threads`] — otherwise the
/// per-chunk values must be boundary-independent (as in matmul row
/// blocks).
pub fn parallel_for_chunks<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    if threads() == 1 || data.len() <= chunk {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    scope(|s| {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || f(i, c));
        }
    });
}

/// Evaluate `f(0), …, f(n-1)` (in parallel above `min_per_task` items
/// per thread) and collect the results in index order. The output is
/// positionally deterministic regardless of scheduling.
pub fn parallel_map<R, F>(n: usize, min_per_task: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads().max(1)).max(min_per_task.max(1));
    parallel_for_chunks(&mut out, chunk, |ci, slots| {
        let base = ci * chunk;
        for (j, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(base + j));
        }
    });
    out.into_iter()
        .map(|o| o.unwrap_or_else(|| unreachable!("parallel_map: unfilled slot")))
        .collect()
}

/// Spawn a dedicated, long-lived OS thread *outside* the work-stealing
/// pool, named `saccs-<name>`.
///
/// Pool tasks must never block indefinitely (a parked pool worker
/// starves every other scope), so components that wait on external
/// events — a serving front end's request-queue workers, most notably —
/// get their own threads through this function instead. It is the one
/// sanctioned escape hatch from the `no-spawn-outside-rt` lint: the
/// thread is still created by `saccs-rt`, keeping thread provenance in
/// one crate.
///
/// Panics if the OS refuses to spawn a thread — callers create a small,
/// fixed number of workers at startup, where failing loudly beats
/// serving with a silently missing worker.
pub fn spawn_worker<F>(name: &str, f: F) -> std::thread::JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("saccs-{name}"))
        .spawn(f)
        .unwrap_or_else(|e| panic!("failed to spawn worker thread `saccs-{name}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that touch the global width override.
    static WIDTH_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn scope_runs_borrowing_tasks() {
        let _g = relock(WIDTH_LOCK.lock());
        set_threads(4);
        let mut parts = vec![0u64; 8];
        scope(|s| {
            for (i, p) in parts.iter_mut().enumerate() {
                s.spawn(move || *p = (i as u64 + 1) * 10);
            }
        });
        assert_eq!(parts, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn join_returns_both_results() {
        let _g = relock(WIDTH_LOCK.lock());
        set_threads(2);
        let (a, b) = join(|| 6 * 7, || "right");
        assert_eq!((a, b), (42, "right"));
    }

    #[test]
    fn pool_workers_adopt_the_callers_trace_context() {
        let _g = relock(WIDTH_LOCK.lock());
        set_threads(8);
        let ctx = saccs_obs::trace::TraceContext::new(123);
        let _scope = saccs_obs::trace::install(Arc::clone(&ctx));
        // Tasks fan out across pool workers; each records into the
        // caller's context (installed for the task's duration) — all 64
        // probes land in the one per-request buffer.
        let out = parallel_map(64, 1, |i| {
            saccs_obs::trace::record(saccs_obs::trace::TraceEvent::Probe { exact: i % 2 == 0 });
            saccs_obs::trace::current().map(|c| c.id())
        });
        assert!(out.iter().all(|id| *id == Some(123)));
        let events = ctx.events();
        assert_eq!(events.len(), 64);
        // Worker threads must not keep the context after the task ends:
        // run an untraced fan-out and check nothing more is recorded.
        drop(_scope);
        parallel_map(16, 1, |_| {
            saccs_obs::trace::record(saccs_obs::trace::TraceEvent::Shed);
        });
        assert_eq!(ctx.events().len(), 64);
    }

    #[test]
    fn parallel_map_is_positional() {
        let _g = relock(WIDTH_LOCK.lock());
        set_threads(8);
        let out = parallel_map(100, 1, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn inline_when_single_threaded() {
        let _g = relock(WIDTH_LOCK.lock());
        set_threads(1);
        let caller = std::thread::current().id();
        let mut seen = Vec::new();
        scope(|s| {
            let seen = &mut seen;
            s.spawn(move || seen.push(std::thread::current().id()));
        });
        // With width 1 and no prior pool use the task runs inline; once
        // workers exist (other tests grow the pool) it may not, so only
        // assert the task ran exactly once.
        assert_eq!(seen.len(), 1);
        let _ = caller;
        set_threads(4);
    }

    #[test]
    fn chunk_results_cover_all_elements() {
        let _g = relock(WIDTH_LOCK.lock());
        set_threads(3);
        let mut data = vec![1u32; 1000];
        parallel_for_chunks(&mut data, 7, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v += ci as u32;
            }
        });
        let expect: Vec<u32> = (0..1000).map(|i| 1 + (i / 7) as u32).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn many_small_scopes_do_not_leak_pending() {
        let _g = relock(WIDTH_LOCK.lock());
        set_threads(4);
        let hits = AtomicU64::new(0);
        for _ in 0..200 {
            scope(|s| {
                for _ in 0..4 {
                    let hits = &hits;
                    s.spawn(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn pool_gauge_tracks_width() {
        let _g = relock(WIDTH_LOCK.lock());
        set_threads(5);
        let gauge = saccs_obs::registry().gauge("rt.pool.threads").get();
        assert_eq!(gauge, 5.0);
        set_threads(4);
    }
}

//! 8-thread stress tests for the pool: nested scopes, panic-in-task
//! propagation, and sustained mixed load. Runs in its own test binary so
//! the `set_threads(8)` override cannot race another crate's width
//! tests.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The override is process-global; every test in this binary serializes
/// on this lock and pins the width to 8.
static WIDTH: Mutex<()> = Mutex::new(());

fn at_eight_threads(f: impl FnOnce()) {
    let _g = WIDTH.lock().unwrap_or_else(|e| e.into_inner());
    saccs_rt::set_threads(8);
    f();
}

#[test]
fn nested_scopes_on_worker_threads() {
    at_eight_threads(|| {
        // Outer tasks each open an inner scope from (potentially) a
        // worker thread; the helping wait loop must keep both levels
        // progressing without deadlock.
        let total = AtomicUsize::new(0);
        saccs_rt::scope(|outer| {
            for _ in 0..16 {
                let total = &total;
                outer.spawn(move || {
                    let mut inner_parts = [0usize; 8];
                    saccs_rt::scope(|inner| {
                        for (i, p) in inner_parts.iter_mut().enumerate() {
                            inner.spawn(move || *p = i + 1);
                        }
                    });
                    total.fetch_add(inner_parts.iter().sum(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16 * 36);
    });
}

#[test]
fn panic_in_task_propagates_to_scope_caller() {
    at_eight_threads(|| {
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            saccs_rt::scope(|s| {
                for i in 0..8 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("boom from task {i}");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = result.expect_err("task panic must re-raise at the scope");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom from task 3"), "payload: {msg:?}");
        // The panicking task must not cancel its siblings.
        assert_eq!(finished.load(Ordering::Relaxed), 7);
    });
}

#[test]
fn pool_survives_a_panicked_scope() {
    at_eight_threads(|| {
        for round in 0..20 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                saccs_rt::scope(|s| {
                    s.spawn(move || panic!("round {round}"));
                });
            }));
            assert!(result.is_err());
            // Pool still functional right after the unwound scope.
            let sum: usize = saccs_rt::parallel_map(64, 1, |i| i).iter().sum();
            assert_eq!(sum, 64 * 63 / 2);
        }
    });
}

#[test]
fn join_nests_under_load() {
    at_eight_threads(|| {
        fn sum_range(lo: usize, hi: usize) -> usize {
            if hi - lo <= 64 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = saccs_rt::join(|| sum_range(lo, mid), || sum_range(mid, hi));
            a + b
        }
        let n = 10_000;
        assert_eq!(sum_range(0, n), n * (n - 1) / 2);
    });
}

#[test]
fn heavy_mixed_fanout() {
    at_eight_threads(|| {
        let mut data = vec![0u64; 100_000];
        saccs_rt::parallel_for_chunks(&mut data, 1024, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 1024 + j) as u64;
            }
        });
        let expect: u64 = (0..100_000u64).sum();
        assert_eq!(data.iter().sum::<u64>(), expect);
    });
}

//! Criterion benchmarks for the neural stack: MiniBert encoding, tagger
//! inference (Viterbi + beam), one clean and one FGSM training step, and
//! the pairing classifier.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saccs_data::{Dataset, DatasetId};
use saccs_embed::{build_vocab, MiniBert, MiniBertConfig};
use saccs_nn::{zero_grads, Matrix, Var};
use saccs_tagger::{Architecture, Crf, TaggerModel};
use saccs_text::{Domain, IobTag};
use std::rc::Rc;

fn bench_models(c: &mut Criterion) {
    let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
    let bert = Rc::new(MiniBert::new(
        vocab,
        MiniBertConfig {
            dim: 48,
            heads: 6,
            layers: 4,
            max_len: 48,
            seed: 1,
        },
    ));
    let data = Dataset::generate_scaled(DatasetId::S1, 0.01);
    let sentence = &data.train[0];

    c.bench_function("bert/encode_sentence", |b| {
        let ids = bert.ids(&sentence.tokens);
        b.iter(|| bert.encode_frozen(&ids))
    });

    let mut rng = StdRng::seed_from_u64(2);
    let model = TaggerModel::new(Architecture::BiLstmCrf, bert.dim(), 24, 0.0, &mut rng);
    let features = bert.features(&sentence.tokens);

    c.bench_function("tagger/predict_viterbi", |b| {
        b.iter(|| model.predict(&features))
    });

    c.bench_function("tagger/train_step_clean", |b| {
        let params = model.params();
        b.iter(|| {
            zero_grads(&params);
            let loss = model.loss(&Var::leaf(features.clone()), &sentence.tags, true, &mut rng);
            loss.backward();
            loss.scalar()
        })
    });

    c.bench_function("tagger/train_step_fgsm", |b| {
        let params = model.params();
        b.iter(|| {
            zero_grads(&params);
            let probe = Var::leaf(features.clone());
            model
                .loss(&probe, &sentence.tags, true, &mut rng)
                .backward();
            let delta = probe.grad().map(|g| 0.2 * g.signum());
            zero_grads(&params);
            let clean = model.loss(&Var::leaf(features.clone()), &sentence.tags, true, &mut rng);
            let adv = model.loss(
                &Var::leaf(features.add(&delta)),
                &sentence.tags,
                true,
                &mut rng,
            );
            let total = clean.scale(0.5).add(&adv.scale(0.5));
            total.backward();
            total.scalar()
        })
    });

    let crf = Crf::new(&mut rng);
    let emissions = Matrix::uniform(20, IobTag::COUNT, 2.0, &mut rng);
    c.bench_function("crf/viterbi_t20", |b| b.iter(|| crf.viterbi(&emissions)));
    c.bench_function("crf/beam5_t20", |b| {
        b.iter(|| crf.beam_decode(&emissions, 5))
    });
    let targets = vec![IobTag::O; 20];
    c.bench_function("crf/nll_forward_backward_t20", |b| {
        b.iter(|| {
            let loss = crf.nll(&Var::leaf(emissions.clone()), &targets);
            loss.backward();
            loss.scalar()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_models
}
criterion_main!(benches);

//! Criterion benchmarks for the retrieval layer: BM25 search with query
//! expansion, the SIM attribute oracle, conceptual similarity, NDCG, and
//! the end-to-end Algorithm-1 ranking path.

use criterion::{criterion_group, criterion_main, Criterion};
use saccs_bench::{gold_index, query_gains, table2_corpus};
use saccs_core::{RankRequest, SaccsConfig, SaccsService, SearchApi};
use saccs_data::queries::query_sets;
use saccs_data::CrowdSimulator;
use saccs_eval::ndcg::ndcg;
use saccs_index::index::IndexConfig;
use saccs_ir::{Bm25Config, Bm25Index, SimBaseline};
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};

fn bench_retrieval(c: &mut Criterion) {
    let corpus = table2_corpus(0.25);
    let docs_owned: Vec<(usize, Vec<String>)> = (0..corpus.entities.len())
        .map(|e| {
            (
                e,
                corpus
                    .reviews_of(e)
                    .iter()
                    .map(|&ri| corpus.reviews[ri].text())
                    .collect(),
            )
        })
        .collect();
    let docs: Vec<(usize, Vec<&str>)> = docs_owned
        .iter()
        .map(|(e, t)| (*e, t.iter().map(|x| x.as_str()).collect()))
        .collect();
    let bm25 = Bm25Index::build(
        docs,
        corpus.entities.len(),
        Lexicon::new(Domain::Restaurants),
        Bm25Config::default(),
    );
    c.bench_function("ir/bm25_two_tag_query", |b| {
        b.iter(|| bm25.search("delicious food friendly waiters"))
    });

    let sim = SimBaseline::new(&corpus.entities);
    let crowd = CrowdSimulator::default();
    let sets = query_sets(5, 1);
    let query = &sets[1].1[0]; // a medium query
    let gains = query_gains(query, &crowd, &corpus);
    c.bench_function("ir/sim_oracle_2_attributes", |b| {
        b.iter(|| sim.best_ndcg(&gains, 10, 2))
    });

    let similarity = ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants));
    let t1 = SubjectiveTag::new("delicious", "food");
    let t2 = SubjectiveTag::new("creative", "cooking");
    c.bench_function("similarity/tag_pair", |b| {
        b.iter(|| similarity.tag_similarity(&t1, &t2))
    });

    c.bench_function("eval/ndcg_at_10_over_70_entities", |b| {
        let ranked: Vec<f32> = gains.iter().copied().take(10).collect();
        b.iter(|| ndcg(&ranked, &gains, 10))
    });

    let index = gold_index(&corpus, IndexConfig::default(), 18);
    // §7 search automaton vs the BTreeMap-backed inverted index.
    let automaton = index.to_automaton();
    let known = SubjectiveTag::new("delicious", "food");
    c.bench_function("index/exact_lookup_btreemap", |b| {
        b.iter(|| index.lookup(&known))
    });
    c.bench_function("index/exact_lookup_automaton", |b| {
        b.iter(|| automaton.get(&known))
    });
    let typo = SubjectiveTag::new("delicous", "food");
    c.bench_function("index/fuzzy_lookup_automaton", |b| {
        b.iter(|| automaton.fuzzy_get(&typo))
    });
    let service = SaccsService::index_only(index, SaccsConfig::default());
    let api = SearchApi::new(&corpus.entities);
    let tags: Vec<SubjectiveTag> = query.tags.iter().map(|t| t.tag()).collect();
    let request = RankRequest::tags(tags);
    c.bench_function("saccs/algorithm1_rank_medium_query", |b| {
        b.iter(|| service.rank_request(&request, &api))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_retrieval
}
criterion_main!(benches);

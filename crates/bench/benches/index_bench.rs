//! Criterion benchmarks for the subjective-tag index: construction
//! (Equation 1 over a quarter-scale corpus), exact probes, similarity-
//! fallback probes, and the re-indexing round.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use saccs_bench::{gold_index, table2_corpus};
use saccs_index::index::IndexConfig;
use saccs_text::SubjectiveTag;

fn bench_index(c: &mut Criterion) {
    // A quarter-scale corpus keeps construction benches fast while
    // preserving realistic posting-list sizes.
    let corpus = table2_corpus(0.25);

    c.bench_function("index/build_18_tags", |b| {
        b.iter(|| gold_index(&corpus, IndexConfig::default(), 18))
    });

    let index = gold_index(&corpus, IndexConfig::default(), 18);
    let known = SubjectiveTag::new("delicious", "food");
    c.bench_function("index/probe_known_tag", |b| {
        b.iter(|| index.probe_readonly(&known))
    });

    let unknown = SubjectiveTag::new("scrumptious", "lasagna");
    c.bench_function("index/probe_unknown_tag_similarity_fallback", |b| {
        b.iter(|| index.probe_readonly(&unknown))
    });

    c.bench_function("index/reindex_round_one_new_tag", |b| {
        b.iter_batched(
            || {
                let idx = gold_index(&corpus, IndexConfig::default(), 18);
                let _ = idx.probe(&SubjectiveTag::new("dreamy", "vibe"));
                idx
            },
            |mut idx| idx.reindex_from_history(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_index
}
criterion_main!(benches);

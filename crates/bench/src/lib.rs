//! Shared setup code for the table/figure regeneration binaries.
//!
//! Every binary accepts two environment variables:
//!
//! * `SACCS_SCALE` — fractional scale of the paper's dataset sizes
//!   (default varies per binary; `1.0` = exact paper sizes);
//! * `SACCS_EPOCHS` — training epochs for the tagger sweeps (default 15,
//!   the paper's setting);
//! * `SACCS_OBS` — observability mode: `json` writes a
//!   `BENCH_<bin>.json` registry snapshot (and enables span timing),
//!   `stderr` prints the live span tree, anything else (or unset) leaves
//!   instrumentation on its zero-cost path.
//!
//! All runs are seeded; identical settings regenerate identical tables.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saccs_data::yelp::{YelpConfig, YelpCorpus};
use saccs_data::{canonical_tags, CrowdSimulator, Query};
use saccs_embed::{
    build_vocab, finetune_tagging, general_corpus, train_mlm, MiniBert, MiniBertConfig, MlmConfig,
};
use saccs_eval::ndcg::ndcg;
use saccs_index::index::{EntityEvidence, IndexConfig};
use saccs_index::SubjectiveIndex;
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};
use std::rc::Rc;

/// Install the exporter selected by `SACCS_OBS` (see the crate docs).
/// Call at the top of every bench `main`; pair with [`obs_finish`].
pub fn obs_init() {
    match std::env::var("SACCS_OBS").as_deref() {
        Ok("json") => {
            // The snapshot is cut from the metrics registry at
            // obs_finish; installing any exporter turns span timing on.
            // Span events themselves go to the in-memory collector (the
            // tree is not re-read, but event streaming must stay cheap).
            saccs_obs::install(std::sync::Arc::new(saccs_obs::InMemoryCollector::new()));
        }
        Ok("stderr") => {
            saccs_obs::install(std::sync::Arc::new(saccs_obs::StderrTree));
        }
        _ => {}
    }
}

/// If `SACCS_OBS=json`, write `BENCH_<bin>.json` into the current
/// directory: the full metrics registry (counters, gauges, span-duration
/// histograms) plus the bin's headline quality numbers. Returns the path
/// written, if any.
pub fn obs_finish(bin: &str, headline: &[(&str, f64)]) -> Option<String> {
    saccs_obs::flush();
    if std::env::var("SACCS_OBS").as_deref() != Ok("json") {
        return None;
    }
    let path = format!("BENCH_{bin}.json");
    let doc = saccs_obs::json::bench_snapshot(bin, headline);
    match std::fs::write(&path, doc) {
        Ok(()) => {
            println!("wrote {path}");
            Some(path)
        }
        Err(e) => {
            println!("failed to write {path}: {e}");
            None
        }
    }
}

/// Parse `SACCS_SCALE` with a per-binary default.
pub fn scale(default: f64) -> f64 {
    std::env::var("SACCS_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .clamp(0.01, 1.0)
}

/// Parse `SACCS_EPOCHS` (default 15, the paper's §6.3 setting).
pub fn epochs(default: usize) -> usize {
    std::env::var("SACCS_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The bench-grade MiniBert: larger grid, heavier MLM, with optional
/// domain post-training and tagging fine-tuning. Deterministic.
pub struct BenchBert;

impl BenchBert {
    pub fn config() -> MiniBertConfig {
        MiniBertConfig {
            dim: 48,
            heads: 6,
            layers: 4,
            max_len: 48,
            seed: 0xBE,
        }
    }

    /// General-pretrained encoder (the "BERT" of the OpineDB baseline).
    pub fn general(mlm_sentences: usize) -> MiniBert {
        let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
        let bert = MiniBert::new(vocab, Self::config());
        train_mlm(
            &bert,
            &general_corpus(mlm_sentences, 0x6E),
            &MlmConfig {
                epochs: 4,
                ..Default::default()
            },
        );
        bert
    }

    /// Continue MLM on in-domain full-vocabulary text (the +DK step).
    pub fn add_domain_knowledge(bert: &MiniBert, domain: Domain, sentences: usize) {
        use saccs_data::{GeneratorConfig, SentenceGenerator};
        let gen = SentenceGenerator::new(
            Lexicon::new(domain),
            GeneratorConfig {
                train_vocabulary_only: false,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(0xD0);
        let corpus: Vec<Vec<String>> = (0..sentences)
            .map(|_| gen.random_sentence(&mut rng).tokens)
            .collect();
        train_mlm(
            bert,
            &corpus,
            &MlmConfig {
                seed: 0xDD,
                ..Default::default()
            },
        );
    }
}

/// Fully trained pairing-grade encoder: general MLM + in-domain post-train
/// + tagging fine-tune (what §5.1's attention heuristic reads).
pub fn pairing_bert(scale: f64) -> Rc<MiniBert> {
    use saccs_data::{Dataset, DatasetId};
    let bert = BenchBert::general((6000.0 * scale) as usize + 200);
    BenchBert::add_domain_knowledge(&bert, Domain::Hotels, (2000.0 * scale) as usize + 100);
    let hotels = Dataset::generate_scaled(DatasetId::S4, scale.max(0.2));
    finetune_tagging(
        &bert,
        &hotels.train,
        (12.0 * scale).ceil() as usize,
        1e-3,
        0xF7,
    );
    Rc::new(bert)
}

/// Gold evidence for every entity: review tags taken from the generator's
/// gold pairs instead of the neural extractor.
pub fn gold_evidence(corpus: &YelpCorpus) -> Vec<EntityEvidence> {
    corpus
        .entities
        .iter()
        .map(|entity| {
            let review_ids = corpus.reviews_of(entity.id);
            let mut review_tags = Vec::new();
            for &ri in review_ids {
                for s in &corpus.reviews[ri].sentences {
                    for (a, o) in &s.pairs {
                        review_tags
                            .push(SubjectiveTag::new(&o.text(&s.tokens), &a.text(&s.tokens)));
                    }
                }
            }
            EntityEvidence {
                entity_id: entity.id,
                review_count: review_ids.len(),
                review_tags,
            }
        })
        .collect()
}

/// Per-review gold tag profiles for one entity (the fraud-robustness
/// experiments need review granularity rather than a flat bag).
pub fn gold_review_profiles(corpus: &YelpCorpus, entity: usize) -> Vec<saccs_index::ReviewProfile> {
    corpus
        .reviews_of(entity)
        .iter()
        .map(|&ri| {
            let mut tags = Vec::new();
            for s in &corpus.reviews[ri].sentences {
                for (a, o) in &s.pairs {
                    tags.push(SubjectiveTag::new(&o.text(&s.tokens), &a.text(&s.tokens)));
                }
            }
            saccs_index::ReviewProfile::new(tags)
        })
        .collect()
}

/// Gold-extraction index: [`gold_evidence`] registered and the first
/// `n_tags` canonical tags indexed. Used by the index/ranking ablation
/// bins, which isolate Equation-1 / Algorithm-1 behaviour from extraction
/// quality.
pub fn gold_index(corpus: &YelpCorpus, config: IndexConfig, n_tags: usize) -> SubjectiveIndex {
    let mut index = SubjectiveIndex::new(
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
        config,
    );
    for evidence in gold_evidence(corpus) {
        index.register_entity(evidence);
    }
    let tags: Vec<SubjectiveTag> = canonical_tags()
        .iter()
        .take(n_tags)
        .map(|t| t.tag())
        .collect();
    index.index_tags(&tags);
    index
}

/// Mean NDCG@10 per difficulty level of a ranking function over query
/// sets — the evaluation loop every Table-2-family bin shares. `rank`
/// receives the query and its per-entity gains and must return ranked
/// entity ids.
pub fn mean_ndcg_by_level(
    sets: &[(saccs_data::Difficulty, Vec<Query>)],
    corpus: &YelpCorpus,
    crowd: &CrowdSimulator,
    mut rank: impl FnMut(&Query, &[f32]) -> Vec<usize>,
) -> Vec<f32> {
    sets.iter()
        .map(|(_, queries)| {
            let mut total = 0.0;
            for q in queries {
                let gains = query_gains(q, crowd, corpus);
                let ranked = rank(q, &gains);
                total += ndcg_of_ranking(&ranked, &gains, 10);
            }
            total / queries.len().max(1) as f32
        })
        .collect()
}

/// The Table-2 corpus at a given scale of the paper's 280/7061.
pub fn table2_corpus(scale: f64) -> YelpCorpus {
    let n_entities = ((280.0 * scale) as usize).max(20);
    let n_reviews = ((7061.0 * scale) as usize).max(n_entities * 4);
    YelpCorpus::generate(
        Lexicon::new(Domain::Restaurants),
        &YelpConfig {
            n_entities,
            n_reviews,
            ..Default::default()
        },
    )
}

/// Per-query mean-sat gains for every entity.
pub fn query_gains(query: &Query, crowd: &CrowdSimulator, corpus: &YelpCorpus) -> Vec<f32> {
    (0..corpus.entities.len())
        .map(|e| {
            query
                .tags
                .iter()
                .map(|t| crowd.sat(t, corpus, e))
                .sum::<f32>()
                / query.tags.len() as f32
        })
        .collect()
}

/// NDCG@k of a ranked id list against per-entity gains.
pub fn ndcg_of_ranking(ranked: &[usize], gains: &[f32], k: usize) -> f32 {
    let ranked_gains: Vec<f32> = ranked.iter().map(|&e| gains[e]).collect();
    ndcg(&ranked_gains, gains, k)
}

/// Render one row of a fixed-width results table.
pub fn row(label: &str, values: &[f32]) -> String {
    let mut s = format!("{label:<18}");
    for v in values {
        s.push_str(&format!(" {v:>7.3}"));
    }
    s
}

/// Render a percentage row (Table 4/5 style).
pub fn row_pct(label: &str, values: &[f32]) -> String {
    let mut s = format!("{label:<22}");
    for v in values {
        s.push_str(&format!(" {:>6.2}", v * 100.0));
    }
    s
}

//! Chaos/resilience bench: hardening-overhead A/B plus a deterministic
//! fault-schedule export.
//!
//! Phase 1 (faults disarmed): interleaved best-of-N timing of
//! `SaccsService::rank_unguarded` vs `rank_request` on the same
//! utterance batch — the hardening-overhead headline quoted in
//! EXPERIMENTS.md.
//!
//! Phase 2 (chaos export): arm the seeded scenario and drive a fixed
//! request batch through `rank_request`, writing one JSON line per
//! request (ranking with score *bits*, degradation events) plus a final
//! `fault.*` counter-delta line. With an error-only scenario the file is
//! a pure function of `(seed, scenario)`; `scripts/ci.sh` runs the bin
//! twice and diffs the two exports to prove it. Delay effects and
//! deadlines are wall-clock and would break the diff — keep them out of
//! the CI scenario. Without the `fault` feature the schedule is inert
//! and the export records a degradation-free run.
//!
//! `cargo run --release -p saccs-bench --features fault --bin chaos`
//!
//! Environment: `SACCS_CHAOS_SEED` (default 2024),
//! `SACCS_CHAOS_SCENARIO` (default `algo1.probe=err@p=0.9`),
//! `SACCS_CHAOS_OUT` (default `CHAOS_report.jsonl`),
//! `SACCS_CHAOS_REPS` (timing repetitions, default 200),
//! `SACCS_OBS=json` to emit `BENCH_chaos.json`.

use saccs_core::{RankRequest, SaccsBuilder, SearchApi, TrainedSaccs};
use saccs_data::yelp::{YelpConfig, YelpCorpus};
use saccs_fault::{arm_guard, Scenario};
use saccs_text::{Domain, Lexicon};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const UTTERANCES: [&str; 3] = [
    "I want a restaurant with delicious food and a nice staff",
    "somewhere with friendly staff and tasty food",
    "find me a cozy place with a great atmosphere",
];

/// Requests in the chaos export (the utterances, cycled).
const CHAOS_REQUESTS: usize = 8;

fn env_or(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

fn build() -> (YelpCorpus, TrainedSaccs) {
    let corpus = YelpCorpus::generate(
        Lexicon::new(Domain::Restaurants),
        &YelpConfig {
            n_entities: 24,
            n_reviews: 420,
            seed: 42,
            ..Default::default()
        },
    );
    let trained = SaccsBuilder::quick().build(&corpus);
    (corpus, trained)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fault_counters() -> BTreeMap<String, u64> {
    saccs_obs::registry()
        .counter_values()
        .into_iter()
        .filter(|(name, _)| name.starts_with("fault."))
        .collect()
}

fn main() {
    saccs_bench::obs_init();
    let seed: u64 = env_or("SACCS_CHAOS_SEED", "2024").parse().unwrap_or(2024);
    let scenario_text = env_or("SACCS_CHAOS_SCENARIO", "algo1.probe=err@p=0.9");
    let scenario = match Scenario::parse(&scenario_text) {
        Ok(s) => s,
        Err(e) => {
            println!("bad SACCS_CHAOS_SCENARIO: {e}");
            std::process::exit(2);
        }
    };
    // Per-call cost is ~100µs; fewer reps than this and the best-of-N
    // minimum has not converged, which reads as phantom overhead.
    let reps: usize = env_or("SACCS_CHAOS_REPS", "200").parse().unwrap_or(200);
    let out_path = env_or("SACCS_CHAOS_OUT", "CHAOS_report.jsonl");

    println!("Chaos bench: rank_unguarded vs rank_request, then seeded fault replay");
    println!("  (seed={seed} scenario={scenario} requests={CHAOS_REQUESTS})\n");
    let (corpus, trained) = build();
    let api = SearchApi::new(&corpus.entities);
    let requests: Vec<RankRequest> = UTTERANCES
        .iter()
        .map(|u| RankRequest::utterance(*u))
        .collect();

    // Phase 1: hardening overhead with no faults armed. Interleaved
    // best-of-N over the whole batch so host noise cannot bias a side.
    let mut t_plain = f64::INFINITY;
    let mut t_resilient = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for r in &requests {
            black_box(trained.service.rank_unguarded(r, &api).ok());
        }
        t_plain = t_plain.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for r in &requests {
            black_box(trained.service.rank_request(r, &api));
        }
        t_resilient = t_resilient.min(t0.elapsed().as_secs_f64());
    }
    let overhead_pct = (t_resilient / t_plain - 1.0) * 100.0;
    println!(
        "{:<16} {:>12} {:>16} {:>10}",
        "batch", "rank ms", "resilient ms", "overhead"
    );
    println!(
        "{:<16} {:>12.3} {:>16.3} {:>9.2}%",
        format!("{} utterances", UTTERANCES.len()),
        t_plain * 1e3,
        t_resilient * 1e3,
        overhead_pct
    );

    // Phase 2: the deterministic export under an armed schedule.
    let before = fault_counters();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "{{\"seed\":{seed},\"scenario\":\"{}\"}}",
        json_escape(&scenario.to_string())
    );
    {
        let _faults = arm_guard(&scenario, seed);
        for (i, r) in requests.iter().cycle().take(CHAOS_REQUESTS).enumerate() {
            let outcome = trained.service.rank_request(r, &api);
            let ranking: Vec<String> = outcome
                .results
                .iter()
                .map(|&(e, s)| format!("[{e},{}]", s.to_bits()))
                .collect();
            let events: Vec<String> = outcome
                .degradation
                .events
                .iter()
                .map(|ev| {
                    format!(
                        "\"{}\"",
                        json_escape(&format!("{}:{}:{}", ev.stage, ev.action.label(), ev.error))
                    )
                })
                .collect();
            let _ = writeln!(
                report,
                "{{\"request\":{i},\"ranking\":[{}],\"degradation\":[{}]}}",
                ranking.join(","),
                events.join(",")
            );
        }
    }
    let after = fault_counters();
    let deltas: Vec<String> = after
        .iter()
        .map(|(name, v)| {
            let d = v - before.get(name).copied().unwrap_or(0);
            format!("\"{}\":{d}", json_escape(name))
        })
        .collect();
    let _ = writeln!(report, "{{\"counters\":{{{}}}}}", deltas.join(","));
    let degraded = after.get("fault.degraded_requests").copied().unwrap_or(0)
        - before.get("fault.degraded_requests").copied().unwrap_or(0);
    match std::fs::write(&out_path, &report) {
        Ok(()) => println!("\nwrote {out_path} ({CHAOS_REQUESTS} requests, {degraded} degraded)"),
        Err(e) => {
            println!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    saccs_bench::obs_finish(
        "chaos",
        &[
            ("overhead_pct", overhead_pct),
            ("chaos_requests", CHAOS_REQUESTS as f64),
            ("degraded_requests", degraded as f64),
        ],
    );
}

//! **Threshold sweep**: the similarity thresholds θ_index (Equation 1)
//! and θ_filter (Algorithm 1). The paper's conclusion flags them as
//! important and proposes adjusting them dynamically as future work; this
//! sweep maps the sensitivity surface.
//!
//! `cargo run --release -p saccs-bench --bin threshold_sweep`

use saccs_bench::{gold_index, mean_ndcg_by_level, scale, table2_corpus};
use saccs_core::{RankRequest, SaccsConfig, SaccsService, SearchApi};
use saccs_data::queries::query_sets;
use saccs_data::{CrowdSimulator, Difficulty};
use saccs_index::index::IndexConfig;
use saccs_index::DegreeFormula;
use saccs_text::SubjectiveTag;

fn main() {
    let scale = scale(1.0);
    println!(
        "Similarity-threshold sweep (Short query set, NDCG@10, gold extraction, scale={scale})\n"
    );
    let corpus = table2_corpus(scale);
    let crowd = CrowdSimulator::default();
    let sets = query_sets(100, 0x7557);
    let (_, queries) = sets
        .iter()
        .find(|(d, _)| *d == Difficulty::Short)
        .expect("short set");
    let api = SearchApi::new(&corpus.entities);

    let thetas = [0.30f32, 0.40, 0.45, 0.55, 0.70, 0.85];
    print!("{:>14}", "θ_index \\ θ_f");
    for tf in thetas {
        print!(" {tf:>6.2}");
    }
    println!();
    for ti in thetas {
        print!("{ti:>14.2}");
        for tf in thetas {
            let index = gold_index(
                &corpus,
                IndexConfig {
                    theta_index: ti,
                    theta_filter: tf,
                    degree_formula: DegreeFormula::PureRate,
                    ..Default::default()
                },
                18,
            );
            let service = SaccsService::index_only(index, SaccsConfig::default());
            let short_set = [(Difficulty::Short, queries.clone())];
            let values = mean_ndcg_by_level(&short_set, &corpus, &crowd, |q, _| {
                let tags: Vec<SubjectiveTag> = q.tags.iter().map(|t| t.tag()).collect();
                service
                    .rank_request(&RankRequest::tags(tags), &api)
                    .results
                    .into_iter()
                    .map(|(e, _)| e)
                    .collect()
            });
            print!(" {:>6.3}", values[0]);
        }
        println!();
    }
    println!("\n(θ_filter only matters for tags absent from the index; the canonical");
    println!(" query tags are all indexed here, so sensitivity concentrates in θ_index.)");
}

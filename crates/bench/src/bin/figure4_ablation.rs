//! **Figure 4 ablation**: the adversarial-training architecture in
//! numbers. Sweeps the clean/adversarial mixing weight α (the paper fixes
//! α = 0.5) at ε = 0.2 on the smallest dataset (S4), reporting test F1 and
//! the robustness gap (perturbed-loss − clean-loss at eval time).
//!
//! `cargo run --release -p saccs-bench --bin figure4_ablation`
//! Environment: `SACCS_SCALE` (default 0.5), `SACCS_EPOCHS` (default 15).

use saccs_bench::{epochs, scale, BenchBert};
use saccs_data::{Dataset, DatasetId};
use saccs_tagger::{Adversarial, Architecture, Tagger, TrainConfig};
use saccs_text::Domain;
use std::rc::Rc;

fn main() {
    let scale = scale(0.5);
    let epochs = epochs(15);
    let eps = 0.2f32;
    println!(
        "Figure 4 ablation: alpha sweep at eps={eps} on S4 (scale={scale}, epochs={epochs})\n"
    );

    let bert = BenchBert::general((4000.0 * scale) as usize + 400);
    BenchBert::add_domain_knowledge(&bert, Domain::Hotels, (2000.0 * scale) as usize + 200);
    let bert = Rc::new(bert);
    let data = Dataset::generate_scaled(DatasetId::S4, scale);

    println!(
        "{:>6} {:>9} {:>11} {:>11} {:>11}",
        "alpha", "test F1", "clean loss", "gap@e=0.2", "gap@e=1.0"
    );
    for alpha in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
        let cfg = TrainConfig {
            architecture: Architecture::BiLstmCrf,
            // alpha = 1.0 is pure clean training (the adversarial term has
            // zero weight) — trained without the FGSM machinery entirely.
            adversarial: if alpha >= 1.0 {
                None
            } else {
                Some(Adversarial {
                    epsilon: eps,
                    alpha,
                })
            },
            epochs,
            ..Default::default()
        };
        let tagger = Tagger::train(bert.clone(), &data.train, &cfg);
        let f1 = tagger.evaluate(&data.test).f1();
        let clean = tagger.mean_loss(&data.test, None);
        let gap_small = tagger.mean_loss(&data.test, Some(eps)) - clean;
        let gap_large = tagger.mean_loss(&data.test, Some(1.0)) - clean;
        println!(
            "{alpha:>6.2} {:>8.2}% {clean:>11.3} {gap_small:>11.3} {gap_large:>11.3}",
            f1 * 100.0
        );
    }
    println!("\n(The paper fixes alpha = 0.5; the sweep shows the clean/robust trade-off");
    println!(" Figure 4's architecture controls. alpha = 1.0 is the no-adversary baseline.)");
}

//! Regenerate **Table 4**: aspect/opinion tagger F1 on S1–S4.
//!
//! Rows: the OpineDB baseline (per-token classifier on general BERT), the
//! domain-knowledge variant (+DK, same head on the post-trained encoder),
//! and the SACCS adversarial BiLSTM-CRF at ε ∈ {0.1, 0.2, 0.5, 1.0, 2.0}
//! with α = 0.5 fixed, 15 training epochs (§6.3).
//!
//! `cargo run --release -p saccs-bench --bin table4`
//! Environment: `SACCS_SCALE` (default 0.35 of the paper's dataset sizes),
//! `SACCS_EPOCHS` (default 15).

use saccs_bench::{epochs, row_pct, scale, BenchBert};
use saccs_data::{Dataset, DatasetId};
use saccs_tagger::{Adversarial, Architecture, Tagger, TrainConfig};
use std::rc::Rc;

fn main() {
    saccs_bench::obs_init();
    let scale = scale(0.35);
    let epochs = epochs(15);
    println!("Table 4: Evaluation of aspect/opinion tagger (span F1, %)");
    println!("scale={scale} epochs={epochs} alpha=0.5\n");
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}",
        "Model", "S1", "S2", "S3", "S4"
    );

    let datasets: Vec<Dataset> = DatasetId::ALL
        .iter()
        .map(|&id| Dataset::generate_scaled(id, scale))
        .collect();

    let mut rows: Vec<(String, Vec<f32>)> = Vec::new();

    // OpineDB: general-pretrained encoder, per-token classifier.
    let general = Rc::new(BenchBert::general((4000.0 * scale) as usize + 400));
    let opine_cfg = TrainConfig {
        architecture: Architecture::TokenSoftmax,
        epochs,
        lr: 1e-3,
        ..Default::default()
    };
    let f1s: Vec<f32> = datasets
        .iter()
        .map(|d| {
            Tagger::train(general.clone(), &d.train, &opine_cfg)
                .evaluate(&d.test)
                .f1()
        })
        .collect();
    rows.push(("OpineDB".to_string(), f1s));

    // Domain-adapted encoders: one per dataset domain (the [58] recipe).
    let dk_berts: Vec<Rc<saccs_embed::MiniBert>> = datasets
        .iter()
        .map(|d| {
            let bert = BenchBert::general((4000.0 * scale) as usize + 400);
            BenchBert::add_domain_knowledge(&bert, d.id.domain(), (2000.0 * scale) as usize + 200);
            Rc::new(bert)
        })
        .collect();

    let f1s: Vec<f32> = datasets
        .iter()
        .zip(&dk_berts)
        .map(|(d, b)| {
            Tagger::train(b.clone(), &d.train, &opine_cfg)
                .evaluate(&d.test)
                .f1()
        })
        .collect();
    rows.push(("OpineDB + DK".to_string(), f1s));

    // Adversarial BiLSTM-CRF sweeps (on the domain-adapted encoders).
    for eps in [0.1f32, 0.2, 0.5, 1.0, 2.0] {
        let cfg = TrainConfig {
            architecture: Architecture::BiLstmCrf,
            adversarial: Some(Adversarial {
                epsilon: eps,
                alpha: 0.5,
            }),
            epochs,
            ..Default::default()
        };
        let f1s: Vec<f32> = datasets
            .iter()
            .zip(&dk_berts)
            .map(|(d, b)| {
                Tagger::train(b.clone(), &d.train, &cfg)
                    .evaluate(&d.test)
                    .f1()
            })
            .collect();
        rows.push((format!("Adversarial (eps={eps})"), f1s));
        eprintln!("  [done eps={eps}]");
    }

    for (label, values) in &rows {
        println!("{}", row_pct(label, values));
    }

    saccs_bench::obs_finish(
        "table4",
        &[
            ("f1_opinedb_s1", f64::from(rows[0].1[0])),
            ("f1_opinedb_dk_s1", f64::from(rows[1].1[0])),
            ("f1_adversarial_eps02_s1", f64::from(rows[3].1[0])),
        ],
    );

    println!("\nPaper reference (their BERT/testbed; shape, not absolutes, is the target):");
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}",
        "OpineDB", 81.82, 75.44, 72.30, 67.41
    );
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}",
        "OpineDB + DK", 83.06, 75.42, 73.86, 69.64
    );
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}",
        "Adversarial (eps=0.1)", 81.23, 76.56, 74.63, 70.16
    );
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}",
        "Adversarial (eps=0.2)", 83.46, 76.97, 73.64, 72.34
    );
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}",
        "Adversarial (eps=0.5)", 84.43, 75.36, 72.28, 70.32
    );
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}",
        "Adversarial (eps=1.0)", 82.80, 67.50, 73.47, 70.38
    );
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6}",
        "Adversarial (eps=2.0)", 82.93, 71.39, 73.27, 68.42
    );
}

//! Serving bench: bitwise-equality sweep, deterministic export, batched
//! extraction A/B, and the multi-worker QPS headline.
//!
//! Phase 1 (equality): every `(workers, batch)` combination in
//! {1,2,8}×{1,4,16} must reproduce the serial `rank_request` rankings
//! bit for bit — the server is a throughput layer, never a semantics
//! layer. Any divergence exits non-zero.
//!
//! Phase 2 (export): one width-8 server run writes one JSON line per
//! request (ranking with score *bits*) plus the server counters to
//! `SACCS_SERVE_OUT`. The file is a pure function of the build;
//! `scripts/ci.sh` runs the bin twice and diffs the exports.
//!
//! Phase 3 (A/B): width-1 serving with batch=1 vs batch=N over a
//! pre-filled queue — the micro-batched feature warm-up headline quoted
//! in EXPERIMENTS.md.
//!
//! Phase 4 (QPS): arms `algo1.search_api=delay(..)` — the in-memory
//! search API stand-in answers instantly, the simulated remote one
//! doesn't — and measures requests/second at widths 1, 2 and 8. Workers
//! blocked in the API sleep overlap, so multi-worker throughput scales
//! even on a single core; delays change timing only, never values.
//! Without the `fault` feature the schedule is inert and the phase
//! reports flat QPS.
//!
//! Phase 5 (recorder): the same request stream with the flight recorder
//! off and on (serial width so scheduler noise cannot swamp the signal)
//! — replies must stay bitwise identical, the overhead headline
//! targets <2% — then one recorded run dumps its *normalized*
//! `ObsReport` (timestamps stripped) for CI to byte-diff across two
//! invocations and validate with `xtask check-report`.
//!
//! `cargo run --release -p saccs-bench --features fault --bin serve`
//!
//! Environment: `SACCS_SERVE_OUT` (default `SERVE_report.jsonl`),
//! `SACCS_SERVE_REPORT` (default `SERVE_obsreport.json`),
//! `SACCS_SERVE_REQUESTS` (QPS-phase requests per width, default 64),
//! `SACCS_SERVE_DELAY_MS` (simulated API latency, default 5),
//! `SACCS_OBS=json` to emit `BENCH_serve.json`.

use saccs_core::{RankRequest, SaccsBuilder, SaccsService, SearchApi};
use saccs_data::yelp::{YelpConfig, YelpCorpus};
use saccs_data::Entity;
use saccs_fault::{arm_guard, Scenario};
use saccs_serve::{RecorderConfig, SaccsServer, ServeConfig};
use saccs_text::{Domain, Lexicon};
use std::fmt::Write as _;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

const UTTERANCES: [&str; 3] = [
    "I want a restaurant with delicious food and a nice staff",
    "somewhere with friendly staff and tasty food",
    "find me a cozy place with a great atmosphere",
];

/// Requests in the equality sweep, the export and the A/B phase.
const EQ_REQUESTS: usize = 12;

/// Distinct utterances for the A/B phase: with no repeats, the
/// per-replica feature memo cannot hide the per-sentence encoder cost,
/// so the measurement isolates batched vs per-call encoding.
const AB_UTTERANCES: [&str; EQ_REQUESTS] = [
    "I want a restaurant with delicious food and a nice staff",
    "somewhere with friendly staff and tasty food",
    "find me a cozy place with a great atmosphere",
    "a quiet spot with generous portions and fast service",
    "show me a clean place with a friendly waiter",
    "I need somewhere cheap with fresh ingredients",
    "a romantic restaurant with attentive service",
    "any place with a great view and good coffee",
    "somewhere lively with authentic dishes",
    "a family spot with a patient staff and big tables",
    "find a bakery with warm bread and kind people",
    "a diner with quick service and hearty meals",
];

const WIDTHS: [usize; 3] = [1, 2, 8];
const BATCHES: [usize; 3] = [1, 4, 16];

fn env_or(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

/// Request `i`, carrying `i` as its explicit trace id: the utterances
/// cycle, so content-derived ids would collide and the recorder report
/// would depend on completion order. Explicit ids keep the normalized
/// report a pure function of the request stream.
fn request(i: usize) -> RankRequest {
    RankRequest::utterance(UTTERANCES[i % UTTERANCES.len()]).with_trace_id(i as u64)
}

fn bits(ranked: &[(usize, f32)]) -> Vec<(usize, u32)> {
    ranked.iter().map(|&(e, s)| (e, s.to_bits())).collect()
}

fn build() -> (YelpCorpus, Arc<SaccsService>) {
    let corpus = YelpCorpus::generate(
        Lexicon::new(Domain::Restaurants),
        &YelpConfig {
            n_entities: 24,
            n_reviews: 420,
            seed: 42,
            ..Default::default()
        },
    );
    let mut builder = SaccsBuilder::quick();
    // SACCS_SERVE_ANN=1 serves every fallback probe through the ANN
    // index; the double-run byte-diff in ci.sh then checks the whole
    // front end stays deterministic — and the report stays byte-equal to
    // the scan's because the rescore is exact.
    if env_or("SACCS_SERVE_ANN", "0") == "1" {
        builder.index.ann_enabled = true;
    }
    let trained = builder.build(&corpus);
    let service = Arc::new(trained.service);
    (corpus, service)
}

fn start_server(
    service: &Arc<SaccsService>,
    entities: &[Entity],
    workers: usize,
    batch: usize,
    recorder: Option<RecorderConfig>,
) -> Arc<SaccsServer> {
    Arc::new(SaccsServer::start(
        Arc::clone(service),
        entities.to_vec(),
        ServeConfig {
            workers,
            queue_depth: 256,
            batch,
            recorder,
        },
    ))
}

/// Submit requests `0..n` from `clients` concurrent threads (request
/// `i` goes to client `i % clients`); returns the replies in request
/// order, recording per-request latency into `histogram` if given.
fn drive(
    server: &Arc<SaccsServer>,
    n: usize,
    clients: usize,
    histogram: Option<&str>,
) -> Vec<Vec<(usize, u32)>> {
    let (tx, rx) = mpsc::channel();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let server = Arc::clone(server);
            let tx = tx.clone();
            let histogram = histogram.map(str::to_string);
            saccs_rt::spawn_worker(&format!("bench-client-{c}"), move || {
                let mut i = c;
                while i < n {
                    let t0 = Instant::now();
                    let response = server.submit(request(i)).expect("request admitted");
                    if let Some(name) = &histogram {
                        saccs_obs::registry()
                            .histogram(name)
                            .record(t0.elapsed().as_nanos() as u64);
                    }
                    tx.send((i, bits(&response.results))).expect("send reply");
                    i += clients;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    drop(tx);
    let mut replies = vec![Vec::new(); n];
    for (i, reply) in rx {
        replies[i] = reply;
    }
    replies
}

fn main() {
    saccs_bench::obs_init();
    let out_path = env_or("SACCS_SERVE_OUT", "SERVE_report.jsonl");
    let qps_requests: usize = env_or("SACCS_SERVE_REQUESTS", "64").parse().unwrap_or(64);
    let delay_ms: u64 = env_or("SACCS_SERVE_DELAY_MS", "5").parse().unwrap_or(5);

    println!("Serve bench: equality sweep, export, batch A/B, QPS scaling\n");
    let (corpus, service) = build();
    let entities = corpus.entities.clone();

    // Phase 1: the bitwise-equality sweep.
    let reference: Vec<Vec<(usize, u32)>> = {
        let api = SearchApi::new(&entities);
        (0..EQ_REQUESTS)
            .map(|i| bits(&service.rank_request(&request(i), &api).results))
            .collect()
    };
    for workers in WIDTHS {
        for batch in BATCHES {
            let server = start_server(&service, &entities, workers, batch, None);
            let replies = drive(&server, EQ_REQUESTS, workers * 2, None);
            for (i, reply) in replies.iter().enumerate() {
                if reply != &reference[i] {
                    println!(
                        "DIVERGENCE: request {i} at workers={workers} batch={batch}\n  \
                         served {reply:?}\n  serial {:?}",
                        reference[i]
                    );
                    std::process::exit(1);
                }
            }
        }
    }
    println!(
        "equality: {}x{} (workers x batch) configs, {EQ_REQUESTS} requests each — all bitwise \
         identical to serial rank_request",
        WIDTHS.len(),
        BATCHES.len()
    );

    // Phase 2: the deterministic export. Counters come from a fresh
    // server, so they are absolute, not deltas.
    let mut report = String::new();
    {
        let server = start_server(&service, &entities, 8, 4, None);
        let replies = drive(&server, EQ_REQUESTS, 8, None);
        for (i, reply) in replies.iter().enumerate() {
            let ranking: Vec<String> = reply.iter().map(|(e, b)| format!("[{e},{b}]")).collect();
            let _ = writeln!(
                report,
                "{{\"request\":{i},\"ranking\":[{}]}}",
                ranking.join(",")
            );
        }
        let stats = server.stats();
        let _ = writeln!(
            report,
            "{{\"counters\":{{\"serve.submitted\":{},\"serve.served\":{},\"serve.shed\":{}}}}}",
            stats.submitted, stats.served, stats.shed
        );
    }
    match std::fs::write(&out_path, &report) {
        Ok(()) => println!("wrote {out_path} ({EQ_REQUESTS} requests)"),
        Err(e) => {
            println!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    // Phase 3: batched vs unbatched extraction over a pre-filled queue
    // (pause → enqueue all → resume), best-of-N wall clock, 12 distinct
    // utterances. Per-call encoder latency is simulated on both seams —
    // `embed.features` fires once per cache-missed sentence on the
    // serial path, `embed.features_batch` once per batch — so the
    // batched warm-up pays one round trip where the unbatched path pays
    // twelve. Delays never change values; the replies from both arms
    // are asserted bitwise identical below.
    let ab_delay_ms = 2u64;
    let ab_scenario = Scenario::parse(&format!(
        "embed.features=delay({ab_delay_ms}ms);embed.features_batch=delay({ab_delay_ms}ms)"
    ))
    .expect("static scenario parses");
    let ab = |batch: usize| -> (f64, Vec<Vec<(usize, u32)>>) {
        let mut best = f64::INFINITY;
        let mut replies = Vec::new();
        for _ in 0..5 {
            let _faults = arm_guard(&ab_scenario, 1);
            let server = start_server(&service, &entities, 1, batch, None);
            server.pause();
            let (tx, rx) = mpsc::channel();
            let handles: Vec<_> = (0..EQ_REQUESTS)
                .map(|i| {
                    let server = Arc::clone(&server);
                    let tx = tx.clone();
                    saccs_rt::spawn_worker(&format!("bench-ab-{i}"), move || {
                        let response = server
                            .submit(RankRequest::utterance(AB_UTTERANCES[i]))
                            .expect("request admitted");
                        tx.send((i, bits(&response.results))).expect("send reply");
                    })
                })
                .collect();
            while server.queue_len() < EQ_REQUESTS {
                std::thread::yield_now();
            }
            let t0 = Instant::now();
            server.resume();
            for h in handles {
                h.join().expect("A/B client");
            }
            best = best.min(t0.elapsed().as_secs_f64());
            drop(tx);
            replies = vec![Vec::new(); EQ_REQUESTS];
            for (i, reply) in rx {
                replies[i] = reply;
            }
        }
        (best, replies)
    };
    let (t_unbatched, unbatched_replies) = ab(1);
    let (t_batched, batched_replies) = ab(EQ_REQUESTS);
    if unbatched_replies != batched_replies {
        println!("DIVERGENCE: batched A/B replies differ from unbatched");
        std::process::exit(1);
    }
    let batched_speedup = t_unbatched / t_batched;
    println!(
        "\nbatched extraction A/B (width 1, {EQ_REQUESTS} distinct queued requests, \
         {ab_delay_ms}ms simulated encoder round trip):\n  \
         batch=1  {:.2} ms\n  batch={EQ_REQUESTS} {:.2} ms   ({batched_speedup:.2}x)",
        t_unbatched * 1e3,
        t_batched * 1e3
    );

    // Phase 4: QPS scaling under simulated API latency. The scenario
    // only delays `algo1.search_api`; values are unaffected (phase 1
    // proved equality with the schedule disarmed, and delay effects
    // cannot change data). Inert without the `fault` feature.
    let scenario_text = format!("algo1.search_api=delay({delay_ms}ms)");
    let scenario = Scenario::parse(&scenario_text).expect("static scenario parses");
    println!("\nQPS at simulated API latency {delay_ms}ms ({qps_requests} requests per width):");
    println!("{:<10} {:>10} {:>10}", "workers", "QPS", "speedup");
    let mut qps = Vec::new();
    {
        let _faults = arm_guard(&scenario, 1);
        for workers in WIDTHS {
            let server = start_server(&service, &entities, workers, 4, None);
            let name = format!("serve.latency.w{workers}");
            let t0 = Instant::now();
            let _ = drive(&server, qps_requests, workers * 2, Some(&name));
            let wall = t0.elapsed().as_secs_f64();
            qps.push(qps_requests as f64 / wall);
        }
    }
    for (i, workers) in WIDTHS.iter().enumerate() {
        println!("{workers:<10} {:>10.1} {:>9.2}x", qps[i], qps[i] / qps[0]);
    }
    let speedup = qps[2] / qps[0];
    if cfg!(feature = "fault") && speedup < 2.0 {
        println!("WARNING: width-8 speedup {speedup:.2}x below the 2x acceptance bar");
    }

    // Phase 5: flight-recorder overhead A/B and the deterministic report
    // dump. The A/B runs the same request stream with the recorder off
    // and on (no simulated latency, so the measurement is pure tracing
    // overhead) and asserts the replies bitwise identical —
    // the recorder observes the rank path, it never participates in it.
    // The dump renders the recorder's *normalized* report (per-stage
    // counts and event sequences, timestamps stripped) to
    // `SACCS_SERVE_REPORT`; `scripts/ci.sh` runs the bin twice and
    // byte-diffs the two dumps, then validates one with
    // `xtask check-report`.
    let report_path = env_or("SACCS_SERVE_REPORT", "SERVE_obsreport.json");
    let rec_config = RecorderConfig {
        ring: 256,
        ..RecorderConfig::default()
    };
    // Enough requests that per-request tracing cost dominates clock
    // granularity. The overhead is measured at width 1 with a single
    // client thread (oversubscribing one visible core with 8 workers +
    // 16 clients puts ±10% of scheduler noise on the wall clock, which
    // would swamp a 2% target) and the statistic is the **median of
    // per-pair ratios**: the arms are interleaved (off, on, off, on, …)
    // so each back-to-back pair sees the same ambient machine state and
    // its ratio cancels drift; the median then rejects pairs a steal
    // burst landed on. Recorder-on bitwise identity at widths 1/2/8 is
    // pinned separately by `tests/trace.rs`.
    let ab_requests = qps_requests.max(256);
    let run_once = |recorder: Option<RecorderConfig>| -> (f64, Vec<Vec<(usize, u32)>>) {
        let server = start_server(&service, &entities, 1, 1, recorder);
        let t0 = Instant::now();
        let replies = drive(&server, ab_requests, 1, None);
        (t0.elapsed().as_secs_f64(), replies)
    };
    const AB_PAIRS: usize = 9;
    let (mut t_off, mut t_on) = (f64::INFINITY, f64::INFINITY);
    let (mut replies_off, mut replies_on) = (Vec::new(), Vec::new());
    let mut ratios = Vec::with_capacity(AB_PAIRS);
    for _ in 0..AB_PAIRS {
        let (off, replies) = run_once(None);
        t_off = t_off.min(off);
        replies_off = replies;
        let (on, replies) = run_once(Some(rec_config));
        t_on = t_on.min(on);
        replies_on = replies;
        ratios.push(on / off);
    }
    if replies_off != replies_on {
        println!("DIVERGENCE: recorder-on replies differ from recorder-off");
        std::process::exit(1);
    }
    ratios.sort_by(f64::total_cmp);
    let recorder_overhead_pct = (ratios[AB_PAIRS / 2] - 1.0) * 100.0;
    println!(
        "\nflight-recorder A/B (width 1, {ab_requests} requests, median of {AB_PAIRS} \
         interleaved pairs):\n  \
         recorder off {:.2} ms\n  recorder on  {:.2} ms   ({recorder_overhead_pct:+.2}% — replies \
         bitwise identical)",
        t_off * 1e3,
        t_on * 1e3
    );
    if recorder_overhead_pct > 2.0 {
        println!("WARNING: recorder overhead {recorder_overhead_pct:.2}% above the 2% target");
    }
    {
        let server = start_server(&service, &entities, 8, 4, Some(rec_config));
        let _ = drive(&server, EQ_REQUESTS, 8, None);
        let rendered = server
            .obs_report()
            .expect("recorder installed")
            .render(true);
        match std::fs::write(&report_path, rendered) {
            Ok(()) => println!("wrote {report_path} (normalized, {EQ_REQUESTS} traces)"),
            Err(e) => {
                println!("failed to write {report_path}: {e}");
                std::process::exit(1);
            }
        }
    }

    saccs_bench::obs_finish(
        "serve",
        &[
            ("qps_w1", qps[0]),
            ("qps_w2", qps[1]),
            ("qps_w8", qps[2]),
            ("speedup_w8_over_w1", speedup),
            ("batched_extraction_speedup", batched_speedup),
            ("recorder_overhead_pct", recorder_overhead_pct),
            ("equality_requests", EQ_REQUESTS as f64),
        ],
    );
}

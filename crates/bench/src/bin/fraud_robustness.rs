//! **§7 extension experiment**: robustness to fake reviews.
//!
//! Injects astroturf campaigns (bursts of near-identical praise for paid
//! entities) into the corpus and measures how far each campaign drags the
//! naive index's ranking away from the honest ground truth — and how much
//! of that damage the duplicate-burst [`FraudFilter`] repairs. Gold
//! extraction isolates the index layer.
//!
//! `cargo run --release -p saccs-bench --bin fraud_robustness`

use saccs_bench::{ndcg_of_ranking, scale, table2_corpus};
use saccs_core::{RankRequest, SaccsConfig, SaccsService, SearchApi};
use saccs_data::fraud::{inject_fraud, FraudCampaign};
use saccs_data::yelp::YelpCorpus;
use saccs_data::{canonical_tags, CrowdSimulator};
use saccs_index::index::IndexConfig;
use saccs_index::{DegreeFormula, FraudFilter, SubjectiveIndex};
use saccs_text::lexicon::Polarity;
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};

fn build_service(corpus: &YelpCorpus, filter: Option<&FraudFilter>) -> SaccsService {
    let mut index = SubjectiveIndex::new(
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
        IndexConfig {
            degree_formula: DegreeFormula::PureRate,
            ..Default::default()
        },
    );
    for e in 0..corpus.entities.len() {
        let profiles = saccs_bench::gold_review_profiles(corpus, e);
        let evidence = match filter {
            Some(f) => f.evidence(e, &profiles),
            None => saccs_index::naive_evidence(e, &profiles),
        };
        index.register_entity(evidence);
    }
    let tags: Vec<SubjectiveTag> = canonical_tags().iter().map(|t| t.tag()).collect();
    index.index_tags(&tags);
    SaccsService::index_only(index, SaccsConfig::default())
}

fn main() {
    saccs_bench::obs_init();
    let scale = scale(0.5);
    println!("Fraud robustness (Section 7 extension): astroturf campaigns vs the FraudFilter");
    println!("gold extraction, scale={scale}\n");

    let clean_corpus = table2_corpus(scale);
    let crowd = CrowdSimulator::default();
    let tag = canonical_tags()
        .into_iter()
        .find(|t| t.phrase() == "delicious food")
        .unwrap();
    let gains: Vec<f32> = (0..clean_corpus.entities.len())
        .map(|e| crowd.sat(&tag, &clean_corpus, e))
        .collect();
    let api = SearchApi::new(&clean_corpus.entities);

    // Campaign targets: the entities with the WORST true quality on the
    // pushed dimension (the ones that would pay for reviews).
    let mut worst: Vec<usize> = (0..clean_corpus.entities.len()).collect();
    worst.sort_by(|&a, &b| gains[a].partial_cmp(&gains[b]).unwrap());
    let targets: Vec<usize> = worst.into_iter().take(4).collect();

    println!("Campaign: 4 low-quality entities each buy fake 'delicious food' reviews.\n");
    println!(
        "{:<26} {:>10} {:>12} {:>14}",
        "condition", "NDCG@10", "targets@10", "target rank"
    );

    let report = |label: &str, service: &SaccsService| {
        let ranked: Vec<usize> = service
            .rank_request(&RankRequest::tags(vec![tag.tag()]), &api)
            .results
            .into_iter()
            .map(|(e, _)| e)
            .collect();
        let ndcg = ndcg_of_ranking(&ranked, &gains, 10);
        let in_top = ranked
            .iter()
            .take(10)
            .filter(|e| targets.contains(e))
            .count();
        let best_rank = targets
            .iter()
            .filter_map(|t| ranked.iter().position(|e| e == t))
            .min()
            .map(|r| (r + 1).to_string())
            .unwrap_or_else(|| "-".to_string());
        println!("{label:<26} {ndcg:>10.3} {in_top:>12} {best_rank:>14}");
        ndcg
    };

    let baseline = report("clean corpus", &build_service(&clean_corpus, None));

    for n_fake in [10usize, 30, 60] {
        let mut corrupted = clean_corpus.clone();
        let campaigns: Vec<FraudCampaign> = targets
            .iter()
            .map(|&entity_id| FraudCampaign {
                entity_id,
                n_reviews: n_fake,
                concept: "food",
                group: "delicious",
                polarity: Polarity::Positive,
            })
            .collect();
        inject_fraud(&mut corrupted, &campaigns, 0xFA + n_fake as u64);

        let naive = report(
            &format!("+{n_fake} fakes, naive"),
            &build_service(&corrupted, None),
        );
        let filtered = report(
            &format!("+{n_fake} fakes, FraudFilter"),
            &build_service(&corrupted, Some(&FraudFilter::default())),
        );
        println!(
            "  -> damage {:.3}, repaired {:.0}%\n",
            baseline - naive,
            100.0 * (filtered - naive).max(0.0) / (baseline - naive).max(1e-6)
        );
    }
    println!("(naive = Equation-1 evidence straight from all reviews; FraudFilter =");
    println!(" duplicate-burst suppression, no access to fake/real labels)");
    saccs_bench::obs_finish(
        "fraud_robustness",
        &[("ndcg_clean_baseline", f64::from(baseline))],
    );
}

//! Regenerate **Table 5**: evaluation of the pairing models on the
//! 397-example balanced benchmark — every labeling function, both
//! generative label models, and the weakly-supervised discriminative
//! classifier.
//!
//! `cargo run --release -p saccs-bench --bin table5`
//! Environment: `SACCS_SCALE` (default 1.0 — the full S4/benchmark sizes;
//! this table is cheap enough to always run at paper scale).

use saccs_bench::{pairing_bert, scale};
use saccs_data::{Dataset, DatasetId};
use saccs_eval::BinaryConfusion;
use saccs_pairing::generative::{majority_vote, ProbabilisticModel};
use saccs_pairing::heuristics::SentenceContext;
use saccs_pairing::pipeline::LabelModel;
use saccs_pairing::testset::{build_test_set, evaluate_voter};
use saccs_pairing::{PairingPipeline, PipelineConfig};
use saccs_text::Domain;

fn print_row(label: &str, c: &BinaryConfusion) {
    println!(
        "{:<16} {:>8.2} {:>9.2} {:>7.2} {:>7.2}",
        label,
        100.0 * c.accuracy(),
        100.0 * c.precision(),
        100.0 * c.recall(),
        100.0 * c.f1()
    );
}

fn main() {
    saccs_bench::obs_init();
    let scale = scale(1.0);
    println!("Table 5: Evaluation of the pairing models (scale={scale})\n");
    eprintln!("Training encoder (MLM + domain post-training + tagging fine-tune)...");
    let bert = pairing_bert(scale);

    // §6.4: "We train the model with Booking.com dataset for hotels."
    let hotels = Dataset::generate_scaled(DatasetId::S4, scale);
    let dev = Dataset::generate_scaled(DatasetId::S1, 0.05 * scale.max(0.5));
    eprintln!("Fitting the pairing pipeline...");
    let pipeline = PairingPipeline::fit(
        bert.clone(),
        &hotels.train,
        &dev.train,
        PipelineConfig::default(),
    );

    let n = ((397.0 * scale) as usize).max(60);
    let test = build_test_set(n, Domain::Hotels, 0x397);
    println!(
        "Benchmark: {} balanced examples, hotels domain\n",
        test.len()
    );
    println!(
        "{:<16} {:>8} {:>9} {:>7} {:>7}",
        "Model", "Accuracy", "Precision", "Recall", "F1"
    );

    // Per-LF rows, and the vote matrix for the generative rows. Examples
    // sharing a sentence are voted together (one heuristic evaluation per
    // sentence per LF instead of one per candidate).
    let mut by_sentence: std::collections::BTreeMap<Vec<String>, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, e) in test.iter().enumerate() {
        by_sentence.entry(e.tokens.clone()).or_default().push(i);
    }
    let mut votes: Vec<Vec<bool>> = vec![Vec::new(); test.len()];
    for lf in pipeline.labeling_functions() {
        let mut conf = BinaryConfusion::new();
        for idxs in by_sentence.values() {
            let first = &test[idxs[0]];
            let ctx = SentenceContext {
                tokens: &first.tokens,
                aspects: &first.aspects,
                opinions: &first.opinions,
            };
            let candidates: Vec<_> = idxs.iter().map(|&i| test[i].candidate).collect();
            for (vote, &i) in lf.label_all(&ctx, &candidates).into_iter().zip(idxs) {
                votes[i].push(vote);
                conf.observe(vote, test[i].label);
            }
        }
        print_row(&lf.name(), &conf);
    }

    // Generative rows.
    let mut mv = BinaryConfusion::new();
    for (v, e) in votes.iter().zip(&test) {
        mv.observe(majority_vote(v), e.label);
    }
    print_row("Majority Vote", &mv);

    let pm_model = ProbabilisticModel::fit(&votes, 25);
    let mut pm = BinaryConfusion::new();
    for (v, e) in votes.iter().zip(&test) {
        pm.observe(pm_model.predict(v), e.label);
    }
    print_row("Probabilistic", &pm);

    // Discriminative rows: trained on majority-vote weak labels (the
    // paper's choice) and on probabilistic-model weak labels (better in
    // our regime, where LF accuracies are unequal — see EXPERIMENTS.md).
    let disc = evaluate_voter(
        |e| pipeline.classify(&e.tokens, &e.candidate.0, &e.candidate.1),
        &test,
    );
    print_row("Discrim. (MV)", &disc);
    let pm_pipeline = PairingPipeline::fit(
        bert,
        &hotels.train,
        &dev.train,
        PipelineConfig {
            label_model: LabelModel::Probabilistic,
            ..Default::default()
        },
    );
    let disc_pm = evaluate_voter(
        |e| pm_pipeline.classify(&e.tokens, &e.candidate.0, &e.candidate.1),
        &test,
    );
    print_row("Discrim. (PM)", &disc_pm);

    saccs_bench::obs_finish(
        "table5",
        &[
            ("acc_majority_vote", f64::from(mv.accuracy())),
            ("acc_probabilistic", f64::from(pm.accuracy())),
            ("acc_discriminative_mv", f64::from(disc.accuracy())),
            ("acc_discriminative_pm", f64::from(disc_pm.accuracy())),
        ],
    );

    println!("\nPaper reference (their BERT heads and benchmark):");
    println!("  OpineDB 83.87 acc | lf_bert_7:10 82.62/95.02/78.36/85.89");
    println!("  lf_tree_op 74.06/92.31/67.16/77.75 | lf_tree_as 76.07/91.00/71.64/80.17");
    println!("  MajorityVote 84.10/97.20/78.70/87.00 | Probabilistic 82.40/98.10/75.40/85.20");
    println!("  Discriminative 86.90/92.52/87.69/90.04");
    println!(
        "\nLearned LF accuracies (EM): {:?}",
        pipeline
            .probabilistic_model()
            .accuracies
            .iter()
            .map(|a| (a * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
}

//! Regenerate **Table 3**: dataset descriptions with train/test sizes.
//!
//! `cargo run --release -p saccs-bench --bin table3`

use saccs_data::DatasetId;

fn main() {
    saccs_bench::obs_init();
    println!("Table 3: Dataset Descriptions with number of sentences for train and test");
    println!();
    println!(
        "{:<9} {:<26} {:>6} {:>6} {:>6}",
        "Dataset", "Description", "Train", "Test", "Total"
    );
    let mut total_sentences = 0usize;
    for id in DatasetId::ALL {
        let (train, test) = id.sizes();
        saccs_obs::counter!("table3.datasets").inc();
        total_sentences += train + test;
        println!(
            "{:<9} {:<26} {:>6} {:>6} {:>6}",
            id.label(),
            id.description(),
            train,
            test,
            train + test
        );
    }
    saccs_bench::obs_finish("table3", &[("total_sentences", total_sentences as f64)]);
    println!();
    println!("(Synthetic substitutes are generated at exactly these sizes;");
    println!(" see DESIGN.md §1 for the substitution rationale.)");
}

//! Matmul microbenchmark: the seed's zero-skip `i-k-j` kernel vs the
//! blocked SIMD kernel (`saccs-nn::kernel`), interleaved best-of-N so
//! noisy shared-vCPU hosts cannot bias one side.
//!
//! `cargo run --release -p saccs-bench --bin matmul`
//! Environment: `SACCS_THREADS` (pool width for the blocked kernel),
//! `SACCS_MM_REPS` (timed repetitions per shape, default 7),
//! `SACCS_OBS=json` to emit `BENCH_matmul.json` (validated by
//! `xtask check-bench`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use saccs_nn::Matrix;
use std::hint::black_box;
use std::time::Instant;

/// `(m, k, n)` shapes: the 256³ headline plus two pipeline-sized shapes
/// (a MiniBert block forward and a tagger feature projection).
const SHAPES: [(usize, usize, usize); 3] = [(256, 256, 256), (40, 48, 96), (192, 64, 48)];

fn main() {
    saccs_bench::obs_init();
    let reps: usize = std::env::var("SACCS_MM_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let threads = saccs_rt::threads();
    println!(
        "Matmul kernels: naive zero-skip vs blocked `{}` (best of {reps}, {threads} thread(s))\n",
        saccs_nn::kernel_name()
    );
    println!(
        "{:<16} {:>12} {:>12} {:>9} {:>9}",
        "shape", "naive ms", "blocked ms", "GFLOP/s", "speedup"
    );

    let mut headline_gflops = 0.0f64;
    let mut headline_speedup = 0.0f64;
    for (m, k, n) in SHAPES {
        let mut rng = StdRng::seed_from_u64(0xB14C);
        let a = Matrix::uniform(m, k, 1.0, &mut rng);
        let b = Matrix::uniform(k, n, 1.0, &mut rng);
        // Warm both paths (page in, populate the kernel dispatch cache).
        black_box(a.matmul_naive(&b));
        black_box(a.matmul(&b));

        let mut t_naive = f64::INFINITY;
        let mut t_blocked = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            black_box(a.matmul_naive(&b));
            t_naive = t_naive.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            black_box(a.matmul(&b));
            t_blocked = t_blocked.min(t0.elapsed().as_secs_f64());
        }
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let gflops = flops / t_blocked / 1e9;
        let speedup = t_naive / t_blocked;
        if (m, k, n) == SHAPES[0] {
            headline_gflops = gflops;
            headline_speedup = speedup;
        }
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>9.2} {:>8.2}x",
            format!("{m}x{k}.{k}x{n}"),
            t_naive * 1e3,
            t_blocked * 1e3,
            gflops,
            speedup
        );
    }

    saccs_bench::obs_finish(
        "matmul",
        &[
            ("gflops", headline_gflops),
            ("speedup_vs_serial", headline_speedup),
            ("threads", threads as f64),
        ],
    );
}

//! Regenerate **Figure 5**: a BERT attention head pairing aspects with
//! opinions — rendered as an ASCII heatmap on the figure's sentence — plus
//! the headline number of §5.1: the best head's accuracy on the pairing
//! test set (paper: 82.62%).
//!
//! `cargo run --release -p saccs-bench --bin figure5`

use saccs_bench::{pairing_bert, scale};
use saccs_data::{Dataset, DatasetId};
use saccs_pairing::heuristics::{AttentionHeuristic, PairingHeuristic, SentenceContext};
use saccs_pairing::labeling::select_attention_heads;
use saccs_pairing::testset::{build_test_set, evaluate_voter};
use saccs_text::{tokenize_lower, Domain};

fn shade(v: f32, max: f32) -> char {
    let levels = [' ', '.', ':', '+', '*', '#', '@'];
    let idx = ((v / max.max(1e-6)) * (levels.len() - 1) as f32).round() as usize;
    levels[idx.min(levels.len() - 1)]
}

fn main() {
    let scale = scale(1.0);
    eprintln!("Training encoder...");
    let bert = pairing_bert(scale);

    // Pick the best head the way §5.2's "qualitative analysis" did.
    let dev = Dataset::generate_scaled(DatasetId::S1, 0.05);
    let heads = select_attention_heads(&bert, &dev.train, 5);
    let (layer, head, dev_acc) = heads[0];
    println!(
        "Figure 5: attention head {layer}:{head} (dev pairing accuracy {:.1}%)\n",
        dev_acc * 100.0
    );

    // The figure's sentence.
    let sentence = "the food is delicious . the staff and decor are amazing";
    let tokens: Vec<String> = tokenize_lower(sentence)
        .into_iter()
        .map(|t| t.text)
        .collect();
    let ids = bert.ids(&tokens);
    let _ = bert.encode(&ids);
    let att = bert.attention(layer, head);

    // Rows/cols 1.. are the tokens ([CLS] at 0).
    let max = (1..att.rows())
        .flat_map(|r| (1..att.cols()).map(move |c| (r, c)))
        .map(|(r, c)| att.get(r, c))
        .fold(0.0f32, f32::max);
    print!("{:>10} ", "");
    for j in 0..tokens.len() {
        print!("{j:>3} ");
    }
    println!();
    for (i, t) in tokens.iter().enumerate() {
        print!("{t:>10} ");
        for j in 0..tokens.len() {
            let v = att.get(i + 1, j + 1);
            print!("  {} ", shade(v, max));
        }
        println!();
    }
    println!();
    for (j, t) in tokens.iter().enumerate() {
        print!("{j}={t}  ");
    }
    println!();
    println!("\n(darker = higher attention; the paper's figure shows food→delicious");
    println!(" and staff/decor→amazing as the dark cells)");

    // Key aspect→opinion attention values.
    let idx = |w: &str| tokens.iter().position(|t| t == w).unwrap() + 1;
    for (a, o) in [
        ("food", "delicious"),
        ("staff", "amazing"),
        ("decor", "amazing"),
    ] {
        println!("  attention({a} → {o}) = {:.3}", att.get(idx(a), idx(o)));
    }

    // §5.1's headline: best-head accuracy on the pairing benchmark.
    let n = ((397.0 * scale) as usize).max(60);
    let test = build_test_set(n, Domain::Hotels, 0x397);
    let heuristic = AttentionHeuristic::new(bert.clone(), layer, head);
    let pairs_of = |e: &saccs_pairing::testset::PairingExample| {
        let ctx = SentenceContext {
            tokens: &e.tokens,
            aspects: &e.aspects,
            opinions: &e.opinions,
        };
        heuristic.pairs(&ctx).contains(&e.candidate)
    };
    let conf = evaluate_voter(pairs_of, &test);
    println!(
        "\nBest head accuracy on the {}-example pairing benchmark: {:.2}%",
        test.len(),
        100.0 * conf.accuracy()
    );
    println!("Paper reference: 82.62% (their 12-layer/12-head BERT; see EXPERIMENTS.md)");
}

//! Query-planner bench: the cost-based filter planner A/B.
//!
//! Phase 1 (corpus): synthetic posting lists over 1k / 10k / 100k
//! entities — a mixed-selectivity vocabulary (dense, medium and rare
//! tags) installed straight into a `SubjectiveIndex`, plus a synthetic
//! objective catalog whose attributes are pure functions of entity id.
//!
//! Phase 2 (equality): for every query shape and corpus size, the
//! rarest-first plan, the left-to-right plan and the naive per-entity
//! evaluator must produce the *same match set* — any divergence exits
//! non-zero. The match sets are the deterministic export.
//!
//! Phase 3 (speedup): wall-clock A/B of compiled plans vs the naive
//! evaluator, best-of-N per (size, query). The ≥3x headline at 100k
//! quoted in EXPERIMENTS.md, plus rarest-first vs left-to-right.
//!
//! Phase 4 (export): match counts and entity sets go to
//! `SACCS_QUERY_OUT` as JSON lines; the file is a pure function of the
//! build and `scripts/ci.sh` byte-diffs two runs. `SACCS_OBS=json`
//! emits `BENCH_query.json`.

use saccs_index::index::{IndexConfig, SubjectiveIndex};
use saccs_query::{compile, naive_matches, Filter, JoinOrder, ObjectiveCatalog};
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};
use std::fmt::Write as _;
use std::time::Instant;

const TIMING_REPS: usize = 3;
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// `(opinion, aspect, one-in-k selectivity)` — mixed so rarest-first
/// actually has an ordering decision to make.
const VOCAB: [(&str, &str, usize); 5] = [
    ("delicious", "food", 3),
    ("friendly", "staff", 4),
    ("quiet", "room", 20),
    ("romantic", "vibe", 400),
    ("expensive", "menu", 50),
];

/// The benched query shapes: a mixed-selectivity AND chain, a nested
/// boolean with negation and an objective predicate folded in, an
/// objective-heavy conjunction, and an adversarial source order that
/// puts the universe-wide objective scans *before* the rare tag —
/// the case rarest-first exists to repair.
const QUERIES: [(&str, &str); 4] = [
    (
        "and_chain",
        "delicious food AND quiet room AND romantic vibe",
    ),
    (
        "nested",
        "delicious food AND (quiet room OR romantic vibe) AND NOT expensive menu, price<=2",
    ),
    ("objective", "friendly staff AND price<=2 AND rating>=2.5"),
    ("obj_first", "price<=2 AND rating>=2.5 AND romantic vibe"),
];

fn env_or(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

/// Objective attributes as pure functions of entity id — the bench
/// never allocates 100k entities, it answers from arithmetic.
struct SynthCatalog {
    universe: usize,
}

impl ObjectiveCatalog for SynthCatalog {
    fn universe(&self) -> usize {
        self.universe
    }

    fn attribute(&self, id: usize, name: &str) -> Option<&str> {
        match name {
            "PriceRange" => Some(match id % 4 {
                0 => "1",
                1 => "2",
                2 => "3",
                _ => "4",
            }),
            "NoiseLevel" => Some(match id % 3 {
                0 => "quiet",
                1 => "average",
                _ => "loud",
            }),
            "Ambience" => Some(match id % 5 {
                0 => "romantic",
                1 | 2 => "casual",
                _ => "classy",
            }),
            _ => None,
        }
    }

    fn stars(&self, id: usize) -> Option<f32> {
        Some((id % 11) as f32 / 2.0)
    }

    fn has_attribute(&self, name: &str) -> bool {
        matches!(name, "PriceRange" | "NoiseLevel" | "Ambience")
    }
}

/// Synthetic postings: tag `t` covers every `k`-th entity (all lists
/// aligned at id 0 so conjunctions intersect at common multiples),
/// degrees a pure function of `(tag, id)`.
fn build_index(universe: usize) -> SubjectiveIndex {
    let mut idx = SubjectiveIndex::new(
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
        IndexConfig::default(),
    );
    for (t, (opinion, aspect, k)) in VOCAB.iter().enumerate() {
        let raw: Vec<(usize, f32)> = (0..universe)
            .filter(|id| id % k == 0)
            .map(|id| (id, 0.05 + ((id * 7 + t * 13) % 90) as f32 / 100.0))
            .collect();
        idx.install_postings(SubjectiveTag::new(*opinion, *aspect), raw);
    }
    idx
}

/// Best-of-N wall clock, recording per-evaluation latency.
fn best_of<T>(histogram: &str, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..TIMING_REPS {
        let t0 = Instant::now();
        let v = f();
        let wall = t0.elapsed().as_secs_f64();
        saccs_obs::registry()
            .histogram(histogram)
            .record(t0.elapsed().as_nanos() as u64);
        best = best.min(wall);
        out = Some(v);
    }
    (out.expect("TIMING_REPS > 0"), best)
}

fn main() {
    saccs_bench::obs_init();
    let out_path = env_or("SACCS_QUERY_OUT", "QUERY_report.jsonl");
    let mut report = String::new();
    let mut headline: Vec<(String, f64)> = Vec::new();

    println!(
        "Query planner bench: {} queries over {SIZES:?} entities\n",
        QUERIES.len()
    );
    for universe in SIZES {
        let idx = build_index(universe);
        let catalog = SynthCatalog { universe };
        let mut t_plan = 0.0;
        let mut t_ltr = 0.0;
        let mut t_naive = 0.0;
        for (name, dsl) in QUERIES {
            let filter = Filter::parse(dsl).expect("bench DSL parses");
            let (rare, wall_rare) = best_of(&format!("query.plan.{universe}"), || {
                compile(&filter, &idx, &catalog, JoinOrder::RarestFirst).expect("compiles")
            });
            let (ltr, wall_ltr) = best_of(&format!("query.ltr.{universe}"), || {
                compile(&filter, &idx, &catalog, JoinOrder::LeftToRight).expect("compiles")
            });
            let (naive, wall_naive) = best_of(&format!("query.naive.{universe}"), || {
                naive_matches(&filter, &idx, &catalog).expect("evaluates")
            });
            if rare.bitmap().to_vec() != naive || ltr.bitmap().to_vec() != naive {
                println!("DIVERGENCE: `{dsl}` plans disagree at {universe} entities");
                std::process::exit(1);
            }
            t_plan += wall_rare;
            t_ltr += wall_ltr;
            t_naive += wall_naive;
            let ids: Vec<String> = naive.iter().take(20).map(|e| e.to_string()).collect();
            let _ = writeln!(
                report,
                "{{\"universe\":{universe},\"query\":\"{name}\",\"matched\":{},\"first\":[{}]}}",
                naive.len(),
                ids.join(",")
            );
        }
        let speedup = t_naive / t_plan;
        let order_gain = t_ltr / t_plan;
        println!(
            "{universe} entities: plans == naive on every query\n  \
             planner {:.3} ms   naive {:.3} ms   ({speedup:.1}x, best of {TIMING_REPS})\n  \
             left-to-right {:.3} ms   (rarest-first {order_gain:.2}x over source order)",
            t_plan * 1e3,
            t_naive * 1e3,
            t_ltr * 1e3
        );
        headline.push((format!("speedup_{}k", universe / 1000), speedup));
        if universe == 100_000 {
            headline.push(("rarest_vs_ltr_100k".to_string(), order_gain));
            if speedup < 3.0 {
                println!("WARNING: planner speedup {speedup:.1}x below the 3x acceptance bar");
            }
        }
    }

    match std::fs::write(&out_path, &report) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            println!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    let metrics: Vec<(&str, f64)> = headline.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    saccs_bench::obs_finish("query", &metrics);
}

//! Regenerate **Table 2**: NDCG@10 of SACCS vs. the IR and SIM baselines
//! on Short/Medium/Long subjective query sets.
//!
//! The full §6.2 protocol: generate the Yelp-style corpus, train the
//! complete extraction pipeline, index the canonical tags, simulate the
//! three-worker crowd ground truth, and evaluate 100 queries per
//! difficulty level against Okapi-BM25-with-expansion (IR), the Yelp
//! attribute oracle (SIM, 1 and 2 attributes), and SACCS with 6-, 12- and
//! 18-tag index states.
//!
//! `cargo run --release -p saccs-bench --bin table2`
//! Environment: `SACCS_SCALE` (default 0.5 of 280 entities / 7061 reviews;
//! `SACCS_SCALE=1` is the paper-size corpus), `SACCS_QUERIES` (default
//! 100 per level).

use saccs_bench::{ndcg_of_ranking, query_gains, scale, table2_corpus};
use saccs_core::{RankRequest, SaccsBuilder, SearchApi};
use saccs_data::queries::query_sets;
use saccs_data::CrowdSimulator;
use saccs_index::DegreeFormula;
use saccs_ir::{Bm25Config, Bm25Index, SimBaseline};
use saccs_text::{Domain, Lexicon, SubjectiveTag};

const K: usize = 10;

fn main() {
    saccs_bench::obs_init();
    let scale = scale(0.5);
    let per_level: usize = std::env::var("SACCS_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    println!("Table 2: Comparing SACCS to baselines (NDCG@{K}, scale={scale}, {per_level} queries/level)\n");

    eprintln!("Generating corpus...");
    let corpus = table2_corpus(scale);
    eprintln!(
        "  {} entities, {} reviews",
        corpus.entities.len(),
        corpus.reviews.len()
    );

    eprintln!("Simulating crowd ground truth...");
    let crowd = CrowdSimulator::default();
    let sets = query_sets(per_level, 0x7AB2);

    // --- IR baseline: BM25 over per-entity review documents. -----------
    eprintln!("Building BM25 index...");
    let docs_owned: Vec<(usize, Vec<String>)> = (0..corpus.entities.len())
        .map(|e| {
            (
                e,
                corpus
                    .reviews_of(e)
                    .iter()
                    .map(|&ri| corpus.reviews[ri].text())
                    .collect(),
            )
        })
        .collect();
    let docs: Vec<(usize, Vec<&str>)> = docs_owned
        .iter()
        .map(|(e, texts)| (*e, texts.iter().map(|t| t.as_str()).collect()))
        .collect();
    let bm25 = Bm25Index::build(
        docs,
        corpus.entities.len(),
        Lexicon::new(Domain::Restaurants),
        Bm25Config::default(),
    );

    // --- SIM baseline. ---------------------------------------------------
    let sim = SimBaseline::new(&corpus.entities);

    // --- SACCS: full pipeline + index. -----------------------------------
    eprintln!("Training the SACCS pipeline (this is the long step)...");
    let t0 = std::time::Instant::now();
    let mut builder = if scale >= 0.75 {
        SaccsBuilder::paper()
    } else {
        let mut b = SaccsBuilder::paper();
        b.mlm_sentences = (b.mlm_sentences as f64 * scale) as usize + 300;
        b.post_train_sentences = (b.post_train_sentences as f64 * scale) as usize + 200;
        b.tagger_data_scale *= scale.max(0.3);
        b
    };
    // SACCS rows use the rate reading of Equation 1 (see EXPERIMENTS.md
    // and the degree_of_truth_ablation bench); the literal-Eq1 row below
    // documents the difference.
    builder.index.degree_formula = DegreeFormula::PureRate;
    let mut saccs = builder.build(&corpus);
    eprintln!("  trained + indexed in {:.1?}", t0.elapsed());

    // Evaluate every system on every difficulty level.
    let mut results: Vec<(String, Vec<f32>)> = vec![
        ("IR".into(), Vec::new()),
        ("SIM - 1 att".into(), Vec::new()),
        ("SIM - 2 atts".into(), Vec::new()),
        ("SACCS - 6 tags".into(), Vec::new()),
        ("SACCS - 12 tags".into(), Vec::new()),
        ("SACCS - 18 tags".into(), Vec::new()),
        ("SACCS-18 (Eq1 lit.)".into(), Vec::new()),
    ];

    let api = SearchApi::new(&corpus.entities);
    for (row_idx, n_tags) in [(3usize, 6usize), (4, 12), (5, 18)] {
        eprintln!("Evaluating SACCS with {n_tags} index tags...");
        saccs.reindex_canonical(n_tags);
        for (_, queries) in &sets {
            let mut total = 0.0;
            for q in queries {
                let gains = query_gains(q, &crowd, &corpus);
                let tags: Vec<SubjectiveTag> = q.tags.iter().map(|t| t.tag()).collect();
                let ranked: Vec<usize> = saccs
                    .service
                    .rank_request(&RankRequest::tags(tags), &api)
                    .results
                    .into_iter()
                    .map(|(e, _)| e)
                    .collect();
                total += ndcg_of_ranking(&ranked, &gains, K);
            }
            results[row_idx].1.push(total / queries.len() as f32);
        }
    }

    eprintln!("Evaluating SACCS-18 with the literal Equation-1 degrees...");
    saccs
        .service
        .index_mut()
        .set_degree_formula(DegreeFormula::Equation1);
    saccs.reindex_canonical(18);
    for (_, queries) in &sets {
        let mut total = 0.0;
        for q in queries {
            let gains = query_gains(q, &crowd, &corpus);
            let tags: Vec<SubjectiveTag> = q.tags.iter().map(|t| t.tag()).collect();
            let ranked: Vec<usize> = saccs
                .service
                .rank_request(&RankRequest::tags(tags), &api)
                .results
                .into_iter()
                .map(|(e, _)| e)
                .collect();
            total += ndcg_of_ranking(&ranked, &gains, K);
        }
        results[6].1.push(total / queries.len() as f32);
    }

    eprintln!("Evaluating IR and SIM baselines...");
    for (_, queries) in &sets {
        let mut ir_total = 0.0;
        let mut sim1_total = 0.0;
        let mut sim2_total = 0.0;
        for q in queries {
            let gains = query_gains(q, &crowd, &corpus);
            let phrases: Vec<String> = q.tags.iter().map(|t| t.phrase()).collect();
            let ranked: Vec<usize> = bm25
                .search_tags(&phrases)
                .into_iter()
                .map(|(e, _)| e)
                .collect();
            ir_total += ndcg_of_ranking(&ranked, &gains, K);
            sim1_total += sim.best_ndcg(&gains, K, 1).0;
            sim2_total += sim.best_ndcg(&gains, K, 2).0;
        }
        let n = queries.len() as f32;
        results[0].1.push(ir_total / n);
        results[1].1.push(sim1_total / n);
        results[2].1.push(sim2_total / n);
    }

    println!(
        "\n{:<18} {:>7} {:>7} {:>7}",
        "System", "Short", "Medium", "Long"
    );
    for (label, values) in &results {
        println!("{}", saccs_bench::row(label, values));
    }

    // Resampling uncertainty on the headline comparison (SACCS-18 vs IR),
    // Short level: 95% percentile-bootstrap CIs over per-query NDCGs.
    {
        use saccs_eval::bootstrap::bootstrap_ci;
        saccs
            .service
            .index_mut()
            .set_degree_formula(DegreeFormula::PureRate);
        saccs.reindex_canonical(18);
        let (_, short_queries) = &sets[0];
        let mut saccs18 = Vec::new();
        let mut ir_scores = Vec::new();
        for q in short_queries {
            let gains = query_gains(q, &crowd, &corpus);
            let tags: Vec<SubjectiveTag> = q.tags.iter().map(|t| t.tag()).collect();
            let ranked: Vec<usize> = saccs
                .service
                .rank_request(&RankRequest::tags(tags), &api)
                .results
                .into_iter()
                .map(|(e, _)| e)
                .collect();
            saccs18.push(ndcg_of_ranking(&ranked, &gains, K));
            let phrases: Vec<String> = q.tags.iter().map(|t| t.phrase()).collect();
            let r: Vec<usize> = bm25
                .search_tags(&phrases)
                .into_iter()
                .map(|(e, _)| e)
                .collect();
            ir_scores.push(ndcg_of_ranking(&r, &gains, K));
        }
        let (sl, sh) = bootstrap_ci(&saccs18, 0.95, 2000, 0xB007);
        let (il, ih) = bootstrap_ci(&ir_scores, 0.95, 2000, 0xB007);
        println!("\n95% bootstrap CIs (Short): SACCS-18 [{sl:.3}, {sh:.3}]  IR [{il:.3}, {ih:.3}]");
        if sl > ih {
            println!("  -> disjoint intervals: SACCS-18 > IR is outside resampling noise");
        }
    }

    // Observability pass: drive the complete Algorithm-1 entry point
    // (search_api → extract → probe → aggregate → pad) over the Short
    // queries so the exported snapshot carries per-stage latency for all
    // five stages. Skipped entirely on the zero-cost path; the scored
    // tables above come from tag-input requests and are unaffected.
    if saccs_obs::enabled() {
        let (_, short_queries) = &sets[0];
        for q in short_queries {
            let _ = saccs
                .service
                .rank_unguarded(&RankRequest::utterance(q.utterance()), &api);
        }
    }
    saccs_bench::obs_finish(
        "table2",
        &[
            ("ndcg_saccs18_short", f64::from(results[5].1[0])),
            ("ndcg_saccs18_medium", f64::from(results[5].1[1])),
            ("ndcg_saccs18_long", f64::from(results[5].1[2])),
            ("ndcg_ir_short", f64::from(results[0].1[0])),
        ],
    );

    println!("\nPaper reference:");
    println!("{:<18} {:>7} {:>7} {:>7}", "IR", 0.829, 0.896, 0.916);
    println!(
        "{:<18} {:>7} {:>7} {:>7}",
        "SIM - 1 att", 0.828, 0.886, 0.907
    );
    println!(
        "{:<18} {:>7} {:>7} {:>7}",
        "SIM - 2 atts", 0.837, 0.891, 0.909
    );
    println!(
        "{:<18} {:>7} {:>7} {:>7}",
        "SACCS - 6 tags", 0.815, 0.874, 0.896
    );
    println!(
        "{:<18} {:>7} {:>7} {:>7}",
        "SACCS - 12 tags", 0.825, 0.882, 0.902
    );
    println!(
        "{:<18} {:>7} {:>7} {:>7}",
        "SACCS - 18 tags", 0.854, 0.911, 0.928
    );
}

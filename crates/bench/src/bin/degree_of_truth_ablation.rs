//! **Equation 1 ablation**: the volume weight in the degree of truth.
//!
//! The paper multiplies the mean tag similarity by `log(|R_e| + 1)`
//! (review volume) "because the more reviews there are, the more
//! statistically significant the degrees of truth become". This ablation
//! compares that against weighting by the *matching-mention* count and
//! against no volume factor at all — a reproduction finding discussed in
//! EXPERIMENTS.md: when the ground truth is a per-review mean (as the
//! paper's crowdsourced sat() is), review-volume weighting buries the
//! mention-rate signal.
//!
//! `cargo run --release -p saccs-bench --bin degree_of_truth_ablation`

use saccs_bench::{gold_index, mean_ndcg_by_level, scale, table2_corpus};
use saccs_core::{RankRequest, SaccsConfig, SaccsService, SearchApi};
use saccs_data::queries::query_sets;
use saccs_data::CrowdSimulator;
use saccs_index::index::IndexConfig;
use saccs_index::DegreeFormula;
use saccs_text::SubjectiveTag;

fn main() {
    let scale = scale(1.0);
    println!("Degree-of-truth volume-weight ablation (Equation 1)");
    println!("gold extraction, scale={scale}\n");
    let corpus = table2_corpus(scale);
    let crowd = CrowdSimulator::default();
    let sets = query_sets(100, 0xDE6);
    let api = SearchApi::new(&corpus.entities);

    println!(
        "{:<18} {:>7} {:>7} {:>7}",
        "Volume weight", "Short", "Medium", "Long"
    );
    for (label, formula) in [
        ("Eq1 (literal)", DegreeFormula::Equation1),
        ("match volume", DegreeFormula::MatchVolume),
        ("mention rate", DegreeFormula::MentionRate),
        ("pure rate", DegreeFormula::PureRate),
        ("pure mean", DegreeFormula::PureMean),
    ] {
        let index = gold_index(
            &corpus,
            IndexConfig {
                degree_formula: formula,
                ..Default::default()
            },
            18,
        );
        let service = SaccsService::index_only(index, SaccsConfig::default());
        let values = mean_ndcg_by_level(&sets, &corpus, &crowd, |q, _| {
            let tags: Vec<SubjectiveTag> = q.tags.iter().map(|t| t.tag()).collect();
            service
                .rank_request(&RankRequest::tags(tags), &api)
                .results
                .into_iter()
                .map(|(e, _)| e)
                .collect()
        });
        println!("{}", saccs_bench::row(label, &values));
    }
}

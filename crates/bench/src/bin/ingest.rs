//! Ingest-scaling bench: the segmented live index under a seeded review
//! stream.
//!
//! Phase 1 (equivalence checkpoints): a persistent [`LiveIndex`] —
//! sealing, compacting and committing under `SACCS_INGEST_DIR` — ingests
//! a seeded stream; at fixed checkpoints every probe must come back
//! bitwise identical to a `SubjectiveIndex` rebuilt from scratch over
//! the same review log, and any divergence exits non-zero. The store is
//! then checkpointed, reopened, and the recovered index must reproduce
//! the same bits. Rankings (score bits) and segment counts go to
//! `SACCS_INGEST_OUT` as JSON lines; the file is a pure function of the
//! build and `scripts/ci.sh` byte-diffs two runs.
//!
//! Phase 2 (throughput A/B): reviews/sec and pinned-probe latency as the
//! seal cadence sweeps `{16, 64, 256}` with compaction off — three
//! different sealed-segment counts over the same stream, isolating the
//! cost of probing across more (smaller) segments. Timings are printed
//! and land in the `BENCH_ingest.json` headline, never in the export.
//!
//! Environment: `SACCS_INGEST_REVIEWS` (phase-2 stream length, default
//! 3000), `SACCS_INGEST_OUT` (default `INGEST_report.jsonl`),
//! `SACCS_INGEST_DIR` (default `target/ingest-bench`, wiped at start),
//! `SACCS_OBS=json` to emit `BENCH_ingest.json`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saccs_data::synthetic_tags;
use saccs_index::index::{EntityEvidence, IndexConfig};
use saccs_index::{LiveConfig, LiveIndex, ReviewRecord, SubjectiveIndex};
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};
use std::fmt::Write as _;
use std::time::Instant;

const N_ENTITIES: usize = 100;
const EQ_REVIEWS: usize = 256;
const EQ_CHECK_EVERY: usize = 64;
const TIMING_REPS: usize = 3;
const SEED: u64 = 0x1A6E57;

fn env_or(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

fn sim() -> ConceptualSimilarity {
    ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants))
}

fn bits(ranked: &[(usize, f32)]) -> Vec<(usize, u32)> {
    ranked.iter().map(|&(e, s)| (e, s.to_bits())).collect()
}

/// The seeded review stream: `n` reviews over [`N_ENTITIES`] entities,
/// 1–3 tags each, drawn from the synthetic vocabulary.
fn stream(vocab: &[SubjectiveTag], n: usize, rng: &mut StdRng) -> Vec<(usize, Vec<SubjectiveTag>)> {
    (0..n)
        .map(|_| {
            let entity = rng.gen_range(0..N_ENTITIES);
            let k = 1 + rng.gen_range(0..3);
            let tags = (0..k)
                .map(|_| vocab[rng.gen_range(0..vocab.len())].clone())
                .collect();
            (entity, tags)
        })
        .collect()
}

/// From-scratch comparator over a review log, identical to the one the
/// ingest test suites use.
fn rebuild(log: &[ReviewRecord], tags: &[SubjectiveTag]) -> SubjectiveIndex {
    let mut idx = SubjectiveIndex::new(sim(), IndexConfig::default());
    let mut evidence: Vec<EntityEvidence> = Vec::new();
    for record in log {
        match evidence
            .iter_mut()
            .find(|e| e.entity_id == record.entity_id)
        {
            Some(ev) => {
                ev.review_count += 1;
                ev.review_tags.extend(record.tags.iter().cloned());
            }
            None => evidence.push(EntityEvidence {
                entity_id: record.entity_id,
                review_count: 1,
                review_tags: record.tags.clone(),
            }),
        }
    }
    for ev in evidence {
        idx.register_entity(ev);
    }
    idx.index_tags(tags);
    idx
}

/// Compare every probe on the live index against the rebuild, appending
/// deterministic report lines; exits non-zero on the first divergence.
fn check_equivalence(
    label: &str,
    live: &LiveIndex,
    log: &[ReviewRecord],
    index_tags: &[SubjectiveTag],
    probes: &[SubjectiveTag],
    report: &mut String,
) {
    let frozen = rebuild(log, index_tags);
    let snapshot = live.pin();
    for probe in probes {
        let got = bits(&live.probe_pinned(&snapshot, probe));
        let want = bits(&frozen.probe_readonly(probe));
        if got != want {
            println!(
                "DIVERGENCE: live probe for {probe:?} differs from rebuild at {label} \
                 ({} reviews, {} segments)",
                log.len(),
                live.segment_count()
            );
            std::process::exit(1);
        }
        let ranking: Vec<String> = got
            .iter()
            .take(20)
            .map(|&(e, b)| format!("[{e},{b}]"))
            .collect();
        let _ = writeln!(
            report,
            "{{\"checkpoint\":\"{label}\",\"reviews\":{},\"segments\":{},\"probe\":\"{}\",\"ranking\":[{}]}}",
            log.len(),
            live.segment_count(),
            probe.phrase(),
            ranking.join(",")
        );
    }
}

fn main() {
    saccs_bench::obs_init();
    let n_perf: usize = env_or("SACCS_INGEST_REVIEWS", "3000")
        .parse()
        .unwrap_or(3000);
    let out_path = env_or("SACCS_INGEST_OUT", "INGEST_report.jsonl");
    let dir = env_or("SACCS_INGEST_DIR", "target/ingest-bench");
    let lexicon = Lexicon::new(Domain::Restaurants);

    // The shared vocabulary: review tags are drawn from all of it, the
    // index covers a 32-tag prefix, and the probe set mixes indexed
    // tags with out-of-vocabulary ones (the fallback path).
    let vocab = synthetic_tags(&lexicon, 400, 0x5EED);
    let index_tags: Vec<SubjectiveTag> = vocab.iter().take(32).cloned().collect();
    let mut probes: Vec<SubjectiveTag> = vocab.iter().take(4).cloned().collect();
    probes.extend(vocab.iter().rev().take(4).cloned());

    // Phase 1: equivalence checkpoints on the persistent path.
    let _ = std::fs::remove_dir_all(&dir);
    let mut rng = StdRng::seed_from_u64(SEED);
    let eq_stream = stream(&vocab, EQ_REVIEWS, &mut rng);
    let mut report = String::new();
    let live = match LiveIndex::open(
        &dir,
        sim(),
        IndexConfig::default(),
        LiveConfig {
            seal_every: 16,
            max_segments: 4,
            background_compaction: false,
        },
    ) {
        Ok(live) => live,
        Err(e) => {
            println!("failed to open {dir}: {e:?}");
            std::process::exit(1);
        }
    };
    live.add_tags(&index_tags);
    let t0 = Instant::now();
    let mut log: Vec<ReviewRecord> = Vec::new();
    for (i, (entity_id, tags)) in eq_stream.iter().enumerate() {
        let receipt = live.add_review(*entity_id, tags);
        log.push(ReviewRecord {
            seq: receipt.seq,
            entity_id: *entity_id,
            tags: tags.clone(),
        });
        if (i + 1) % EQ_CHECK_EVERY == 0 {
            check_equivalence("live", &live, &log, &index_tags, &probes, &mut report);
        }
    }
    println!(
        "Phase 1: {EQ_REVIEWS} reviews persisted+checked in {:.2}s \
         ({} segments after compaction)",
        t0.elapsed().as_secs_f64(),
        live.segment_count()
    );
    if let Err(e) = live.checkpoint() {
        println!("checkpoint failed: {e:?}");
        std::process::exit(1);
    }
    drop(live);
    let recovered = match LiveIndex::open(
        &dir,
        sim(),
        IndexConfig::default(),
        LiveConfig {
            seal_every: 16,
            max_segments: 4,
            background_compaction: false,
        },
    ) {
        Ok(live) => live,
        Err(e) => {
            println!("recovery failed: {e:?}");
            std::process::exit(1);
        }
    };
    if recovered.review_log() != log {
        println!("DIVERGENCE: recovered review log differs from the ingested stream");
        std::process::exit(1);
    }
    check_equivalence(
        "recovered",
        &recovered,
        &log,
        &index_tags,
        &probes,
        &mut report,
    );
    println!("Phase 1: recovery round trip bitwise identical\n");
    drop(recovered);

    // Phase 2: seal-cadence sweep, compaction off — three segment
    // counts over the same stream.
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xB0B);
    let perf_stream = stream(&vocab, n_perf, &mut rng);
    let mut headline: Vec<(String, f64)> = vec![("reviews".into(), n_perf as f64)];
    println!("Phase 2: {n_perf} reviews per cadence, probe latency best of {TIMING_REPS}");
    for seal_every in [16usize, 64, 256] {
        let live = LiveIndex::new(
            sim(),
            IndexConfig::default(),
            LiveConfig {
                seal_every,
                max_segments: 0,
                background_compaction: false,
            },
        );
        live.add_tags(&index_tags);
        let t0 = Instant::now();
        for (entity_id, tags) in &perf_stream {
            live.add_review(*entity_id, tags);
        }
        let ingest_wall = t0.elapsed().as_secs_f64();
        let rps = n_perf as f64 / ingest_wall;
        let segments = live.segment_count();

        let snapshot = live.pin();
        let histogram = format!("ingest.probe.s{seal_every}");
        let mut best = f64::INFINITY;
        for _ in 0..TIMING_REPS {
            let mut sink = 0usize;
            let t0 = Instant::now();
            for probe in &probes {
                let t1 = Instant::now();
                sink += live.probe_pinned(&snapshot, probe).len();
                saccs_obs::registry()
                    .histogram(&histogram)
                    .record(t1.elapsed().as_nanos() as u64);
            }
            best = best.min(t0.elapsed().as_secs_f64());
            assert!(sink > 0, "probes all came back empty");
        }
        println!(
            "  seal_every={seal_every:>3}: {segments:>3} segments, \
             {rps:>9.0} reviews/s, probes {:.3} ms",
            best * 1e3
        );
        headline.push((format!("rps_s{seal_every}"), rps));
        headline.push((format!("probe_ms_s{seal_every}"), best * 1e3));
        headline.push((format!("segments_s{seal_every}"), segments as f64));
    }

    match std::fs::write(&out_path, &report) {
        Ok(()) => println!("\nwrote {out_path} ({} probes)", probes.len()),
        Err(e) => {
            println!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    let headline_refs: Vec<(&str, f64)> = headline.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    saccs_bench::obs_finish("ingest", &headline_refs);
}

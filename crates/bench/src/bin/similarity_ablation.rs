//! **Footnote-2 ablation**: conceptual similarity vs. embedding cosine.
//!
//! §3.1 (footnote 2): "Conceptual similarity has been shown to work better
//! on short phrases such as subjective tags than cosine similarity." This
//! bin tests the claim head to head: the same gold-extraction index is
//! built twice — once with the lexicon-backed conceptual measure, once
//! with MiniBert mean-pooled phrase embeddings compared by cosine — and
//! both answer the Table-2 query sets.
//!
//! `cargo run --release -p saccs-bench --bin similarity_ablation`

use saccs_bench::{ndcg_of_ranking, query_gains, scale, table2_corpus, BenchBert};
use saccs_core::{EmbeddingSimilarity, RankRequest, SaccsConfig, SaccsService, SearchApi};
use saccs_data::queries::query_sets;
use saccs_data::{canonical_tags, CrowdSimulator};
use saccs_index::index::IndexConfig;
use saccs_index::{DegreeFormula, SubjectiveIndex};
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};

fn main() {
    let scale = scale(0.5);
    println!("Similarity ablation (footnote 2): conceptual vs embedding cosine");
    println!("gold extraction, scale={scale}\n");
    let corpus = table2_corpus(scale);
    let crowd = CrowdSimulator::default();
    let sets = query_sets(100, 0x5141);
    let api = SearchApi::new(&corpus.entities);

    // Collect every entity's gold review tags once.
    let evidence = saccs_bench::gold_evidence(&corpus);
    let index_tags: Vec<SubjectiveTag> = canonical_tags().iter().map(|t| t.tag()).collect();

    eprintln!("Training MiniBert for the embedding measure...");
    let bert = BenchBert::general((4000.0 * scale) as usize + 400);
    BenchBert::add_domain_knowledge(&bert, Domain::Restaurants, (2000.0 * scale) as usize + 200);
    let universe: Vec<&SubjectiveTag> = index_tags
        .iter()
        .chain(evidence.iter().flat_map(|ev| ev.review_tags.iter()))
        .collect();
    let embedding = EmbeddingSimilarity::precompute(&bert, universe);
    eprintln!("  {} phrases embedded", embedding.len());

    let config = IndexConfig {
        degree_formula: DegreeFormula::PureRate,
        ..Default::default()
    };
    let build = |custom: Option<EmbeddingSimilarity>| -> SaccsService {
        let mut index = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            config.clone(),
        );
        if let Some(c) = custom {
            index = index.with_custom_similarity(c);
        }
        for ev in &evidence {
            index.register_entity(ev.clone());
        }
        index.index_tags(&index_tags);
        SaccsService::index_only(index, SaccsConfig::default())
    };

    println!(
        "{:<22} {:>7} {:>7} {:>7}",
        "Similarity", "Short", "Medium", "Long"
    );
    for (label, custom) in [
        ("conceptual (paper)", None),
        ("embedding cosine", Some(embedding)),
    ] {
        let service = build(custom);
        let mut values = Vec::new();
        for (_, queries) in &sets {
            let mut total = 0.0;
            for q in queries {
                let gains = query_gains(q, &crowd, &corpus);
                let tags: Vec<SubjectiveTag> = q.tags.iter().map(|t| t.tag()).collect();
                let ranked: Vec<usize> = service
                    .rank_request(&RankRequest::tags(tags), &api)
                    .results
                    .into_iter()
                    .map(|(e, _)| e)
                    .collect();
                total += ndcg_of_ranking(&ranked, &gains, 10);
            }
            values.push(total / queries.len() as f32);
        }
        println!("{}", saccs_bench::row(label, &values));
    }
    println!("\n(The paper's footnote 2 predicts the conceptual row wins on these");
    println!(" short phrases; the embedding row shares the same index and queries.)");
}

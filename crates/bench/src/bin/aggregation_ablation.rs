//! **§3.3 ablation**: score aggregation across tags — arithmetic mean vs.
//! product vs. min. The paper: "we also experimented with other
//! aggregation methods such as the product or min operators, but the
//! arithmetic mean works better in practice."
//!
//! Uses gold extraction (the ablation isolates Algorithm 1's ranking math
//! from extractor quality), paper-size corpus.
//!
//! `cargo run --release -p saccs-bench --bin aggregation_ablation`

use saccs_bench::{gold_index, mean_ndcg_by_level, scale, table2_corpus};
use saccs_core::{Aggregation, RankRequest, SaccsConfig, SaccsService, SearchApi};
use saccs_data::queries::query_sets;
use saccs_data::CrowdSimulator;
use saccs_index::index::IndexConfig;
use saccs_index::DegreeFormula;
use saccs_text::SubjectiveTag;

fn main() {
    let scale = scale(1.0);
    println!("Aggregation ablation (Section 3.3): mean vs product vs min");
    println!("gold extraction, scale={scale}\n");
    let corpus = table2_corpus(scale);
    let crowd = CrowdSimulator::default();
    let sets = query_sets(100, 0xA66);
    let api = SearchApi::new(&corpus.entities);

    println!(
        "{:<18} {:>7} {:>7} {:>7}",
        "Aggregation", "Short", "Medium", "Long"
    );
    for agg in Aggregation::ALL {
        let index = gold_index(
            &corpus,
            IndexConfig {
                degree_formula: DegreeFormula::PureRate,
                ..Default::default()
            },
            18,
        );
        let service = SaccsService::index_only(
            index,
            SaccsConfig {
                aggregation: agg,
                ..Default::default()
            },
        );
        let values = mean_ndcg_by_level(&sets, &corpus, &crowd, |q, _| {
            let tags: Vec<SubjectiveTag> = q.tags.iter().map(|t| t.tag()).collect();
            service
                .rank_request(&RankRequest::tags(tags), &api)
                .results
                .into_iter()
                .map(|(e, _)| e)
                .collect()
        });
        println!("{}", saccs_bench::row(agg.label(), &values));
    }
    println!("\n(The paper reports the mean winning; Table 2 uses mean throughout.)");
}

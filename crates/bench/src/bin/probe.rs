//! Probe-scaling bench: the sublinear fallback probe A/B.
//!
//! Phase 1 (corpus): a deterministic 100k-tag synthetic corpus
//! (`saccs_data::synthetic_tags` — lexicon pairs plus fuzzy-resolvable
//! typo variants) is loaded through the snapshot `restore` path into two
//! indexes that differ only in `ann_enabled`.
//!
//! Phase 2 (equality + recall): every fallback probe must come back from
//! the ANN index bitwise identical to the exhaustive scan — the semantic
//! candidate cells prune with sound upper bounds and rescore with the
//! exact similarity, so recall@10 is 1.0 by construction and any
//! divergence exits non-zero.
//!
//! Phase 3 (speedup): wall-clock A/B of the same probes, scan vs ANN,
//! best-of-N. The ≥10x headline quoted in EXPERIMENTS.md.
//!
//! Phase 4 (rank-hits micro): the probe accumulator — stable-sorted Vec
//! fold vs the old per-entity BTreeMap — on a synthetic hit stream; both
//! must produce bit-identical rankings (same per-entity addition order).
//!
//! Phase 5 (embedding path): f32-vs-int8 MiniBert phrase embeddings on a
//! scaled-down corpus (throughput + max cosine error), then the graph
//! ANN A/B under the embedding similarity — *approximate*, so its
//! recall@10 is measured, not asserted.
//!
//! Phase 6 (export): probe rankings (score bits) and corpus stats go to
//! `SACCS_PROBE_OUT` as JSON lines; the file is a pure function of the
//! build and `scripts/ci.sh` byte-diffs two runs.
//!
//! Environment: `SACCS_PROBE_TAGS` (corpus size, default 100000),
//! `SACCS_PROBE_OUT` (default `PROBE_report.jsonl`), `SACCS_OBS=json`
//! to emit `BENCH_probe.json`.

use saccs_core::EmbeddingSimilarity;
use saccs_data::synthetic_tags;
use saccs_embed::{build_vocab, EncoderPrecision, MiniBert, MiniBertConfig};
use saccs_index::index::{IndexConfig, SubjectiveIndex};
use saccs_text::metrics::cosine;
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

const N_ENTITIES: usize = 200;
const TIMING_REPS: usize = 3;

fn env_or(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

fn bits(ranked: &[(usize, f32)]) -> Vec<(usize, u32)> {
    ranked.iter().map(|&(e, s)| (e, s.to_bits())).collect()
}

/// Top-10 entity-overlap recall of `got` against `want`.
fn recall_at_10(got: &[(usize, f32)], want: &[(usize, f32)]) -> f64 {
    let top: Vec<usize> = want.iter().take(10).map(|&(e, _)| e).collect();
    if top.is_empty() {
        return 1.0;
    }
    let hit = got.iter().take(10).filter(|(e, _)| top.contains(e)).count();
    hit as f64 / top.len() as f64
}

/// Deterministic snapshot image: one posting line per tag, entities and
/// degrees a pure function of the tag's position.
fn synthetic_snapshot(tags: &[SubjectiveTag]) -> String {
    let mut snap = String::new();
    for (i, tag) in tags.iter().enumerate() {
        let _ = write!(snap, "{}|{}\t", tag.opinion, tag.aspect);
        for p in 0..1 + i % 3 {
            if p > 0 {
                snap.push(',');
            }
            let e = (i * 7 + p * 31) % N_ENTITIES;
            let d = 0.05 + ((i + p * 13) % 97) as f32 / 100.0;
            let _ = write!(snap, "{e}:{d}:{d}");
        }
        snap.push('\n');
    }
    snap
}

fn restore_index(snap: &str, config: IndexConfig) -> SubjectiveIndex {
    let mut idx = SubjectiveIndex::new(
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
        config,
    );
    let n = idx
        .restore(snap.as_bytes())
        .expect("synthetic snapshot restores");
    assert_eq!(n, snap.lines().count());
    idx
}

/// Unknown cross-domain probes: one per opinion group, pairing its first
/// variant with an aspect the group does *not* naturally apply to, so
/// every probe misses the exact lookup and exercises the θ_filter
/// fallback (matching through same-concept aspects of other groups).
fn fallback_probes(lexicon: &Lexicon, index: &SubjectiveIndex, n: usize) -> Vec<SubjectiveTag> {
    let mut probes = Vec::new();
    for group in lexicon.opinion_groups() {
        if let Some(aspect) = lexicon
            .aspects()
            .iter()
            .find(|a| !group.aspects.contains(&a.canonical))
        {
            let tag = SubjectiveTag::new(group.variants[0], aspect.members[0]);
            if index.lookup(&tag).is_none() && !probes.contains(&tag) {
                probes.push(tag);
            }
        }
        if probes.len() == n {
            break;
        }
    }
    assert!(probes.len() >= 4, "not enough fallback probes");
    probes
}

/// Best-of-N wall clock for probing every tag in `probes`, recording
/// per-probe latency into `histogram`.
fn time_probes(idx: &SubjectiveIndex, probes: &[SubjectiveTag], histogram: &str) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TIMING_REPS {
        let mut sink = 0usize;
        let t0 = Instant::now();
        for p in probes {
            let t1 = Instant::now();
            sink += idx.probe_readonly(p).len();
            saccs_obs::registry()
                .histogram(histogram)
                .record(t1.elapsed().as_nanos() as u64);
        }
        let wall = t0.elapsed().as_secs_f64();
        assert!(sink > 0, "fallback probes all came back empty");
        best = best.min(wall);
    }
    best
}

/// The index's probe accumulator: stable sort by entity, then one
/// left-to-right fold per run (see `SubjectiveIndex::rank_hits`).
fn rank_vec(mut hits: Vec<(usize, f32)>) -> Vec<(usize, f32)> {
    hits.sort_by_key(|&(e, _)| e);
    let mut ranked: Vec<(usize, f32)> = Vec::new();
    for (e, s) in hits {
        match ranked.last_mut() {
            Some((le, ls)) if *le == e => *ls += s,
            _ => ranked.push((e, s)),
        }
    }
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    ranked
}

/// The pre-refactor accumulator: per-entity BTreeMap, same addition
/// order per entity (grouped encounter order), so bit-identical output.
fn rank_btree(hits: &[(usize, f32)]) -> Vec<(usize, f32)> {
    let mut scores: BTreeMap<usize, f32> = BTreeMap::new();
    for &(e, s) in hits {
        *scores.entry(e).or_insert(0.0) += s;
    }
    let mut ranked: Vec<(usize, f32)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    ranked
}

fn main() {
    saccs_bench::obs_init();
    let n_tags: usize = env_or("SACCS_PROBE_TAGS", "100000")
        .parse()
        .unwrap_or(100_000);
    let out_path = env_or("SACCS_PROBE_OUT", "PROBE_report.jsonl");
    let lexicon = Lexicon::new(Domain::Restaurants);

    // Phase 1: the synthetic corpus through the snapshot path.
    let t0 = Instant::now();
    let tags = synthetic_tags(&lexicon, n_tags, 0x5EED);
    let snap = synthetic_snapshot(&tags);
    println!(
        "Probe bench: {} tags, {N_ENTITIES} entities (generated in {:.2}s)\n",
        tags.len(),
        t0.elapsed().as_secs_f64()
    );

    // Phases 2+3, per θ_filter: bitwise equality (and therefore exact
    // recall), then the scan-vs-ANN wall clock. θ=0.45 is the paper
    // default: shared-applicability cells (upper bound exactly 0.45)
    // survive the strict `> θ` filter, a probe matches a sizeable slice
    // of the corpus, and the achievable speedup is bounded by output
    // size. θ=0.55 prunes those cells and is the selective regime the
    // sublinear structure targets — that speedup is the headline.
    let mut report = String::new();
    let mut semantic_recall = 1.0;
    let mut semantic_speedup = 0.0;
    let mut default_speedup = 0.0;
    let probes = {
        let probe_idx = restore_index(&snap, IndexConfig::default());
        fallback_probes(&lexicon, &probe_idx, 8)
    };
    for theta in [0.45f32, 0.55] {
        let config = IndexConfig {
            theta_filter: theta,
            ..IndexConfig::default()
        };
        let scan_idx = restore_index(&snap, config.clone());
        let ann_idx = restore_index(
            &snap,
            IndexConfig {
                ann_enabled: true,
                ..config
            },
        );
        let mut recall = 0.0;
        for probe in &probes {
            let scan = scan_idx.probe_readonly(probe);
            let ann = ann_idx.probe_readonly(probe);
            if bits(&ann) != bits(&scan) {
                println!("DIVERGENCE: ANN probe for {probe:?} differs from scan at θ={theta}");
                std::process::exit(1);
            }
            recall += recall_at_10(&ann, &scan);
            let ranking: Vec<String> = ann
                .iter()
                .take(20)
                .map(|&(e, s)| format!("[{e},{}]", s.to_bits()))
                .collect();
            let _ = writeln!(
                report,
                "{{\"theta\":\"{theta}\",\"probe\":\"{}\",\"matches\":{},\"ranking\":[{}]}}",
                probe.phrase(),
                ann.len(),
                ranking.join(",")
            );
        }
        recall /= probes.len() as f64;
        let t_scan = time_probes(
            &scan_idx,
            &probes,
            &format!("probe.scan.t{}", theta * 100.0),
        );
        let t_ann = time_probes(&ann_idx, &probes, &format!("probe.ann.t{}", theta * 100.0));
        let speedup = t_scan / t_ann;
        println!(
            "θ={theta}: {} fallback probes bitwise identical to scan (recall@10 = {recall:.3})\n  \
             scan {:.2} ms\n  ann  {:.2} ms   ({speedup:.1}x, best of {TIMING_REPS})",
            probes.len(),
            t_scan * 1e3,
            t_ann * 1e3
        );
        if theta == 0.45 {
            default_speedup = speedup;
        } else {
            semantic_speedup = speedup;
            semantic_recall = recall;
            if speedup < 10.0 {
                println!("WARNING: ANN speedup {speedup:.1}x below the 10x acceptance bar");
            }
        }
    }

    // Phase 4: rank-hits accumulator micro-benchmark, on two hit
    // shapes: *dense* (this bench's 200-entity corpus — few keys, the
    // BTreeMap's best case) and *sparse* (100k entities — the scaling
    // regime this PR targets, where per-key tree nodes lose to one
    // contiguous sort). Both accumulators must agree bit for bit.
    let micro = |entities: usize| -> (f64, f64) {
        let hits: Vec<(usize, f32)> = (0..200_000)
            .map(|i| ((i * 31) % entities, 0.4 + (i % 13) as f32 / 20.0))
            .collect();
        let want = rank_btree(&hits);
        if bits(&rank_vec(hits.clone())) != bits(&want) {
            println!("DIVERGENCE: Vec accumulator differs from BTreeMap accumulator");
            std::process::exit(1);
        }
        let mut t_vec = f64::INFINITY;
        let mut t_btree = f64::INFINITY;
        for _ in 0..5 {
            let input = hits.clone();
            let t0 = Instant::now();
            let r = rank_vec(input);
            t_vec = t_vec.min(t0.elapsed().as_secs_f64());
            assert_eq!(r.len(), want.len());
            let t0 = Instant::now();
            let r = rank_btree(&hits);
            t_btree = t_btree.min(t0.elapsed().as_secs_f64());
            assert_eq!(r.len(), want.len());
        }
        (t_btree, t_vec)
    };
    let (dense_btree, dense_vec) = micro(N_ENTITIES);
    let (sparse_btree, sparse_vec) = micro(100_000);
    let rankhits_speedup = sparse_btree / sparse_vec;
    println!(
        "\nrank-hits accumulator (200k hits, best of 5, outputs bit-identical):\n  \
         dense  ({N_ENTITIES} entities): btree {:.2} ms, vec {:.2} ms   ({:.2}x)\n  \
         sparse (100000 entities): btree {:.2} ms, vec {:.2} ms   ({rankhits_speedup:.2}x)",
        dense_btree * 1e3,
        dense_vec * 1e3,
        dense_btree / dense_vec,
        sparse_btree * 1e3,
        sparse_vec * 1e3
    );

    // Phase 5: the embedding path — int8 encoder A/B, then the graph ANN
    // under the embedding similarity. Cosine rescaled to [0,1] clusters
    // high, so the probe threshold is raised to keep the filter active.
    let g_n = tags.len().min(2000);
    let g_tags = &tags[..g_n];
    let mut universe: Vec<SubjectiveTag> = g_tags.to_vec();
    universe.extend(probes.iter().cloned());
    let bert = MiniBert::new(
        build_vocab(&[Domain::Restaurants]),
        MiniBertConfig::default(),
    );
    let t0 = Instant::now();
    let emb_f32 = EmbeddingSimilarity::precompute_with(&bert, &universe, EncoderPrecision::F32);
    let t_f32 = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let emb_int8 = EmbeddingSimilarity::precompute_with(&bert, &universe, EncoderPrecision::Int8);
    let t_int8 = t0.elapsed().as_secs_f64();
    let int8_embed_speedup = t_f32 / t_int8;
    let mut int8_max_cos_err = 0.0f64;
    for tag in &universe {
        let phrase = tag.phrase();
        let (a, b) = (
            emb_f32.phrase_vector(&phrase).expect("f32 vector"),
            emb_int8.phrase_vector(&phrase).expect("int8 vector"),
        );
        int8_max_cos_err = int8_max_cos_err.max(1.0 - f64::from(cosine(a, b)));
    }
    println!(
        "\nint8 encoder A/B ({} phrases, {} kernel):\n  \
         f32  {:.2} ms\n  int8 {:.2} ms   ({int8_embed_speedup:.2}x, max cosine error {int8_max_cos_err:.2e})",
        universe.len(),
        saccs_nn::quant_kernel_name(),
        t_f32 * 1e3,
        t_int8 * 1e3
    );

    let g_snap = synthetic_snapshot(g_tags);
    let g_config = IndexConfig {
        theta_filter: 0.8,
        // ~100 of the 2000 tags clear θ=0.8 per probe; a 256-wide beam
        // covers them with headroom, a 64-wide one truncates the
        // per-entity sums and recall collapses. Denser links (m=16) keep
        // the graph connected under the anisotropic untrained-encoder
        // embedding distribution.
        ann_ef: 256,
        ann_m: 16,
        ..IndexConfig::default()
    };
    let mk_graph = |ann: bool| {
        let mut idx = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig {
                ann_enabled: ann,
                ..g_config.clone()
            },
        )
        .with_custom_similarity(emb_f32.clone())
        .with_tag_vectors(emb_f32.clone());
        idx.restore(g_snap.as_bytes())
            .expect("graph snapshot restores");
        idx
    };
    let g_scan_idx = mk_graph(false);
    let g_ann_idx = mk_graph(true);
    let mut graph_recall = 0.0;
    for probe in &probes {
        let scan = g_scan_idx.probe_readonly(probe);
        let ann = g_ann_idx.probe_readonly(probe);
        graph_recall += recall_at_10(&ann, &scan);
        let ids: Vec<String> = ann.iter().take(10).map(|&(e, _)| e.to_string()).collect();
        let _ = writeln!(
            report,
            "{{\"graph_probe\":\"{}\",\"matches\":{},\"top\":[{}]}}",
            probe.phrase(),
            ann.len(),
            ids.join(",")
        );
    }
    graph_recall /= probes.len() as f64;
    let t_g_scan = time_probes(&g_scan_idx, &probes, "probe.graph.scan.latency");
    let t_g_ann = time_probes(&g_ann_idx, &probes, "probe.graph.ann.latency");
    let graph_speedup = t_g_scan / t_g_ann;
    println!(
        "\ngraph ANN under embedding similarity ({g_n} tags, θ=0.8, approximate):\n  \
         recall@10 {graph_recall:.3}\n  scan {:.2} ms, ann {:.2} ms   ({graph_speedup:.2}x)",
        t_g_scan * 1e3,
        t_g_ann * 1e3
    );

    // Phase 6: the deterministic export (timings excluded by design).
    let _ = writeln!(
        report,
        "{{\"corpus\":{{\"tags\":{},\"entities\":{N_ENTITIES},\"graph_tags\":{g_n}}}}}",
        tags.len()
    );
    match std::fs::write(&out_path, &report) {
        Ok(()) => println!("\nwrote {out_path} ({} probes)", probes.len()),
        Err(e) => {
            println!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    saccs_bench::obs_finish(
        "probe",
        &[
            ("tags", tags.len() as f64),
            ("semantic_recall_at10", semantic_recall),
            ("semantic_speedup", semantic_speedup),
            ("semantic_speedup_default_theta", default_speedup),
            ("rankhits_speedup", rankhits_speedup),
            ("int8_embed_speedup", int8_embed_speedup),
            ("int8_max_cosine_err", int8_max_cos_err),
            ("graph_recall_at10", graph_recall),
            ("graph_speedup", graph_speedup),
        ],
    );
}

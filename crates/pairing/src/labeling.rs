//! Labeling functions (§5.2).
//!
//! "A labeling function in SACCS's pairing module has the same interface
//! as the classifier, i.e. expects a sentence and a phrase as input, and
//! outputs a binary label telling whether the phrase is a legit extraction
//! from the sentence": each LF wraps one heuristic and votes 1 exactly
//! when the candidate pair belongs to the heuristic's proposed set. The
//! five attention LFs use heads "chosen after a qualitative analysis" —
//! reproduced here by [`select_attention_heads`], which ranks every
//! layer:head of MiniBert by pairing accuracy on a small development set.

use crate::heuristics::{
    AttentionHeuristic, PairingHeuristic, SentenceContext, TreeDirection, TreeHeuristic,
};
use saccs_data::LabeledSentence;
use saccs_embed::MiniBert;
use saccs_text::Span;
use std::rc::Rc;

/// A labeling function: a named binary voter over candidate pairs.
pub struct LabelingFunction {
    heuristic: Box<dyn PairingHeuristic>,
}

impl LabelingFunction {
    pub fn from_heuristic(heuristic: Box<dyn PairingHeuristic>) -> Self {
        LabelingFunction { heuristic }
    }

    pub fn name(&self) -> String {
        self.heuristic.name()
    }

    /// Vote on a candidate `(aspect, opinion)` pair within a sentence.
    pub fn label(&self, ctx: &SentenceContext<'_>, candidate: (Span, Span)) -> bool {
        self.heuristic.pairs(ctx).contains(&candidate)
    }

    /// Vote on every candidate at once (one heuristic evaluation).
    pub fn label_all(&self, ctx: &SentenceContext<'_>, candidates: &[(Span, Span)]) -> Vec<bool> {
        let pairs = self.heuristic.pairs(ctx);
        candidates.iter().map(|c| pairs.contains(c)).collect()
    }
}

/// Accuracy of one heuristic against gold pairs over labeled sentences,
/// evaluated on the full candidate grid (the Table 5 protocol).
pub fn heuristic_accuracy(h: &dyn PairingHeuristic, sentences: &[LabeledSentence]) -> f32 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for s in sentences {
        let aspects = s.aspect_spans();
        let opinions = s.opinion_spans();
        if aspects.is_empty() || opinions.is_empty() {
            continue;
        }
        let ctx = SentenceContext {
            tokens: &s.tokens,
            aspects: &aspects,
            opinions: &opinions,
        };
        let proposed = h.pairs(&ctx);
        let gold: std::collections::BTreeSet<(Span, Span)> = s.pairs.iter().copied().collect();
        for &a in &aspects {
            for &o in &opinions {
                let predicted = proposed.contains(&(a, o));
                let truth = gold.contains(&(a, o));
                if predicted == truth {
                    correct += 1;
                }
                total += 1;
            }
        }
    }
    if total == 0 {
        return 0.0;
    }
    correct as f32 / total as f32
}

/// Rank every attention head of `bert` by pairing accuracy on `dev` and
/// return the best `k` as `(layer, head, accuracy)`, best first. This is
/// the "qualitative analysis" that picked the paper's five `lf_bert_l:h`.
pub fn select_attention_heads(
    bert: &Rc<MiniBert>,
    dev: &[LabeledSentence],
    k: usize,
) -> Vec<(usize, usize, f32)> {
    use crate::heuristics::pairs_from_attention;
    let (layers, heads) = bert.attention_grid();
    // One encode per sentence serves every (layer, head) probe.
    let mut correct = vec![0usize; layers * heads];
    let mut total = vec![0usize; layers * heads];
    for s in dev {
        let aspects = s.aspect_spans();
        let opinions = s.opinion_spans();
        if aspects.is_empty() || opinions.is_empty() {
            continue;
        }
        let ctx = SentenceContext {
            tokens: &s.tokens,
            aspects: &aspects,
            opinions: &opinions,
        };
        let ids = bert.ids(&s.tokens);
        bert.ensure_attentions(&ids);
        let gold: std::collections::BTreeSet<(Span, Span)> = s.pairs.iter().copied().collect();
        for l in 1..=layers {
            for h in 0..heads {
                let att = bert.attention(l, h);
                let proposed = pairs_from_attention(&att, &ctx);
                let idx = (l - 1) * heads + h;
                for &a in &aspects {
                    for &o in &opinions {
                        if proposed.contains(&(a, o)) == gold.contains(&(a, o)) {
                            correct[idx] += 1;
                        }
                        total[idx] += 1;
                    }
                }
            }
        }
    }
    let mut scored: Vec<(usize, usize, f32)> = (1..=layers)
        .flat_map(|l| (0..heads).map(move |h| (l, h)))
        .map(|(l, h)| {
            let idx = (l - 1) * heads + h;
            let acc = if total[idx] == 0 {
                0.0
            } else {
                correct[idx] as f32 / total[idx] as f32
            };
            (l, h, acc)
        })
        .collect();
    scored.sort_by(|a, b| b.2.total_cmp(&a.2));
    scored.truncate(k);
    scored
}

/// Build the paper's seven labeling functions: the best five attention
/// heads (per `dev`) plus the two tree directions.
pub fn build_labeling_functions(
    bert: &Rc<MiniBert>,
    dev: &[LabeledSentence],
) -> Vec<LabelingFunction> {
    let mut lfs: Vec<LabelingFunction> = select_attention_heads(bert, dev, 5)
        .into_iter()
        .map(|(l, h, _)| {
            LabelingFunction::from_heuristic(Box::new(AttentionHeuristic::new(bert.clone(), l, h)))
        })
        .collect();
    lfs.push(LabelingFunction::from_heuristic(Box::new(
        TreeHeuristic::new(TreeDirection::OpinionToAspect),
    )));
    lfs.push(LabelingFunction::from_heuristic(Box::new(
        TreeHeuristic::new(TreeDirection::AspectToOpinion),
    )));
    lfs
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_data::{Dataset, DatasetId};
    use saccs_embed::{build_vocab, MiniBertConfig};
    use saccs_text::Domain;

    fn bert() -> Rc<MiniBert> {
        let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
        Rc::new(MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 48,
                seed: 4,
            },
        ))
    }

    #[test]
    fn tree_lf_votes_consistently_with_heuristic() {
        let data = Dataset::generate_scaled(DatasetId::S4, 0.05);
        let lf = LabelingFunction::from_heuristic(Box::new(TreeHeuristic::new(
            TreeDirection::OpinionToAspect,
        )));
        assert_eq!(lf.name(), "lf_tree_op");
        for s in &data.train {
            let aspects = s.aspect_spans();
            let opinions = s.opinion_spans();
            if aspects.is_empty() || opinions.is_empty() {
                continue;
            }
            let ctx = SentenceContext {
                tokens: &s.tokens,
                aspects: &aspects,
                opinions: &opinions,
            };
            let mut candidates = Vec::new();
            for &a in &aspects {
                for &o in &opinions {
                    candidates.push((a, o));
                }
            }
            let batch = lf.label_all(&ctx, &candidates);
            for (c, &b) in candidates.iter().zip(&batch) {
                assert_eq!(lf.label(&ctx, *c), b);
            }
            // Every opinion is claimed by exactly one aspect in this
            // direction, so positives == number of opinions.
            assert_eq!(batch.iter().filter(|&&v| v).count(), opinions.len());
        }
    }

    #[test]
    fn tree_heuristic_accuracy_is_strong_on_gold_spans() {
        let data = Dataset::generate_scaled(DatasetId::S1, 0.03);
        let h = TreeHeuristic::new(TreeDirection::OpinionToAspect);
        let acc = heuristic_accuracy(&h, &data.train);
        assert!(acc > 0.75, "tree heuristic accuracy {acc}");
    }

    #[test]
    fn head_selection_ranks_and_truncates() {
        let b = bert();
        let data = Dataset::generate_scaled(DatasetId::S1, 0.02);
        let heads = select_attention_heads(&b, &data.train, 3);
        assert_eq!(heads.len(), 3);
        // Sorted descending by accuracy.
        for w in heads.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn seven_labeling_functions_are_built() {
        let b = bert();
        let data = Dataset::generate_scaled(DatasetId::S4, 0.02);
        let lfs = build_labeling_functions(&b, &data.train);
        // 2 layers × 2 heads = only 4 attention heads available at test
        // scale, so 4 + 2 = 6 here; the bench uses a 3×4 grid for 5 + 2 = 7.
        assert_eq!(lfs.len(), 4 + 2);
        let names: Vec<String> = lfs.iter().map(|l| l.name()).collect();
        assert!(names.contains(&"lf_tree_as".to_string()));
        assert!(names.contains(&"lf_tree_op".to_string()));
        assert!(names.iter().any(|n| n.starts_with("lf_bert_")));
    }
}

//! Generative label models (§5.2): majority vote and the probabilistic
//! model.
//!
//! Snorkel \[48\] aggregates noisy labeling-function votes into training
//! labels two ways. The simple way is a majority vote. The probabilistic
//! way "incorporates statistical properties of labeling functions such as
//! accuracies" and trains "a probabilistic graphical model to generate the
//! true labels without access to ground truth" — for independent binary
//! LFs this is the classic one-coin Dawid-Skene model fitted with EM,
//! which is what [`ProbabilisticModel`] implements: a class prior `π` and
//! a per-LF accuracy `θ_j`, alternating posterior inference (E) with
//! parameter re-estimation (M).

/// Majority vote over binary votes (ties break negative, the conservative
/// choice for a high-precision pipeline).
pub fn majority_vote(votes: &[bool]) -> bool {
    let pos = votes.iter().filter(|&&v| v).count();
    2 * pos > votes.len()
}

/// One-coin Dawid-Skene label model fitted by EM.
#[derive(Debug, Clone)]
pub struct ProbabilisticModel {
    /// P(y = 1).
    pub prior: f64,
    /// Per-LF accuracy P(vote = y).
    pub accuracies: Vec<f64>,
    iterations: usize,
}

impl ProbabilisticModel {
    /// A flat-prior model with no labeling functions — the placeholder
    /// for serving-only pipelines, where `pair_spans` consults only the
    /// discriminative classifier and the generative stage never runs.
    pub(crate) fn uninformative() -> Self {
        ProbabilisticModel {
            prior: 0.5,
            accuracies: Vec::new(),
            iterations: 0,
        }
    }

    /// Fit on a vote matrix (`rows = datapoints`, `cols = LFs`) without any
    /// ground-truth labels.
    pub fn fit(votes: &[Vec<bool>], iterations: usize) -> Self {
        assert!(!votes.is_empty(), "no datapoints");
        let n_lfs = votes[0].len();
        assert!(votes.iter().all(|v| v.len() == n_lfs), "ragged vote matrix");

        // Init from majority vote.
        let mut posterior: Vec<f64> = votes
            .iter()
            .map(|v| if majority_vote(v) { 0.9 } else { 0.1 })
            .collect();
        let mut prior = 0.5;
        let mut accuracies = vec![0.7; n_lfs];

        for _ in 0..iterations {
            // M-step: re-estimate prior and accuracies from the posterior.
            prior = posterior.iter().sum::<f64>() / posterior.len() as f64;
            prior = prior.clamp(0.05, 0.95);
            for (j, acc) in accuracies.iter_mut().enumerate() {
                let mut agree = 0.0;
                for (v, &p) in votes.iter().zip(&posterior) {
                    // P(vote_j == y): p if vote is 1, (1-p) if vote is 0.
                    agree += if v[j] { p } else { 1.0 - p };
                }
                *acc = (agree / votes.len() as f64).clamp(0.05, 0.95);
            }
            // E-step: posterior over y given votes.
            for (v, p) in votes.iter().zip(posterior.iter_mut()) {
                let mut log_pos = prior.ln();
                let mut log_neg = (1.0 - prior).ln();
                for (j, &vote) in v.iter().enumerate() {
                    let a = accuracies[j];
                    if vote {
                        log_pos += a.ln();
                        log_neg += (1.0 - a).ln();
                    } else {
                        log_pos += (1.0 - a).ln();
                        log_neg += a.ln();
                    }
                }
                let m = log_pos.max(log_neg);
                let z = (log_pos - m).exp() + (log_neg - m).exp();
                *p = (log_pos - m).exp() / z;
            }
        }
        ProbabilisticModel {
            prior,
            accuracies,
            iterations,
        }
    }

    /// Posterior P(y = 1 | votes) for a new datapoint.
    pub fn posterior(&self, votes: &[bool]) -> f64 {
        assert_eq!(votes.len(), self.accuracies.len());
        let mut log_pos = self.prior.ln();
        let mut log_neg = (1.0 - self.prior).ln();
        for (j, &vote) in votes.iter().enumerate() {
            let a = self.accuracies[j];
            if vote {
                log_pos += a.ln();
                log_neg += (1.0 - a).ln();
            } else {
                log_pos += (1.0 - a).ln();
                log_neg += a.ln();
            }
        }
        let m = log_pos.max(log_neg);
        let z = (log_pos - m).exp() + (log_neg - m).exp();
        (log_pos - m).exp() / z
    }

    /// Hard label at the 0.5 threshold.
    pub fn predict(&self, votes: &[bool]) -> bool {
        self.posterior(votes) > 0.5
    }

    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn majority_vote_basics() {
        assert!(majority_vote(&[true, true, false]));
        assert!(!majority_vote(&[true, false, false]));
        assert!(!majority_vote(&[true, false])); // tie → negative
        assert!(!majority_vote(&[]));
    }

    /// Synthesize votes from LFs with known accuracies.
    fn synth(n: usize, accs: &[f64], prior: f64, seed: u64) -> (Vec<Vec<bool>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut votes = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.gen_bool(prior);
            truth.push(y);
            votes.push(
                accs.iter()
                    .map(|&a| if rng.gen_bool(a) { y } else { !y })
                    .collect(),
            );
        }
        (votes, truth)
    }

    #[test]
    fn em_recovers_lf_accuracies() {
        let accs = [0.9, 0.8, 0.65, 0.55];
        let (votes, _) = synth(2000, &accs, 0.5, 1);
        let model = ProbabilisticModel::fit(&votes, 30);
        for (est, &true_a) in model.accuracies.iter().zip(&accs) {
            assert!(
                (est - true_a).abs() < 0.07,
                "estimated {est} vs true {true_a}"
            );
        }
        assert!((model.prior - 0.5).abs() < 0.08);
    }

    #[test]
    fn probabilistic_beats_or_matches_majority_with_unequal_lfs() {
        // One excellent LF among mediocre ones: accuracy weighting should
        // recover labels better than one-LF-one-vote.
        let accs = [0.95, 0.6, 0.6, 0.55, 0.55];
        let (votes, truth) = synth(3000, &accs, 0.5, 2);
        let model = ProbabilisticModel::fit(&votes, 30);
        let mv_correct = votes
            .iter()
            .zip(&truth)
            .filter(|(v, &y)| majority_vote(v) == y)
            .count();
        let pm_correct = votes
            .iter()
            .zip(&truth)
            .filter(|(v, &y)| model.predict(v) == y)
            .count();
        assert!(
            pm_correct > mv_correct,
            "EM ({pm_correct}) should beat majority ({mv_correct}) with unequal LFs"
        );
    }

    #[test]
    fn posterior_is_probability() {
        let (votes, _) = synth(200, &[0.8, 0.7, 0.6], 0.4, 3);
        let model = ProbabilisticModel::fit(&votes, 10);
        for v in &votes {
            let p = model.posterior(v);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn unanimous_votes_dominate_posterior() {
        let (votes, _) = synth(500, &[0.8, 0.8, 0.8], 0.5, 4);
        let model = ProbabilisticModel::fit(&votes, 20);
        assert!(model.posterior(&[true, true, true]) > 0.8);
        assert!(model.posterior(&[false, false, false]) < 0.2);
    }

    mod props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(32))]

            /// Flipping one vote from negative to positive never lowers the
            /// posterior when every LF has accuracy > 0.5.
            #[test]
            fn prop_posterior_monotone_in_votes(seed in 0u64..200, idx in 0usize..4) {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let accs = [0.8, 0.7, 0.65, 0.6];
                let votes: Vec<Vec<bool>> = (0..300)
                    .map(|_| {
                        let y = rng.gen_bool(0.5);
                        accs.iter().map(|&a| if rng.gen_bool(a) { y } else { !y }).collect()
                    })
                    .collect();
                let model = ProbabilisticModel::fit(&votes, 15);
                // Learned accuracies should stay above chance for this data.
                prop_assume!(model.accuracies.iter().all(|&a| a > 0.5));
                let low = vec![false; 4];
                let mut high = vec![false; 4];
                high[idx] = true;
                prop_assert!(model.posterior(&high) >= model.posterior(&low) - 1e-9);
            }

            /// Majority vote flips under global negation (with odd voters).
            #[test]
            fn prop_majority_negation(v in proptest::collection::vec(prop::bool::ANY, 1..8)) {
                prop_assume!(v.len() % 2 == 1);
                let neg: Vec<bool> = v.iter().map(|&x| !x).collect();
                prop_assert_ne!(majority_vote(&v), majority_vote(&neg));
            }
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        ProbabilisticModel::fit(&[vec![true, false], vec![true]], 5);
    }
}

//! The supervised discriminative pairer (§5.2).
//!
//! "We train a simple two-layer neural network with a sigmoid activation
//! function. We encode s_i and p_i using BERT embeddings." Features for a
//! candidate `(aspect, opinion)` in sentence `s` are built from MiniBert's
//! *contextual* token embeddings: the mean vector of the aspect span, the
//! mean vector of the opinion span, and their elementwise product (the
//! phrase-in-context encoding of `p_i`). Contextual vectors carry the
//! syntactic neighborhood, which is what lets the classifier "generalize
//! beyond the scope of examples fed to the labeling functions" and recover
//! the recall the heuristics lack (Table 5).

use crate::testset::PairingExample;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use saccs_embed::MiniBert;
use saccs_nn::layers::{Layer, Linear};
use saccs_nn::optim::{zero_grads, Adam};
use saccs_nn::{Matrix, Var};
use saccs_parse::ParseTree;
use saccs_text::Span;
use std::rc::Rc;

/// Number of hand-rolled structural features appended to the embedding
/// features (see [`DiscriminativePairer`] docs).
const STRUCT_FEATURES: usize = 6;

/// Training knobs for the discriminative model.
#[derive(Debug, Clone)]
pub struct DiscriminativeConfig {
    pub hidden: usize,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for DiscriminativeConfig {
    fn default() -> Self {
        DiscriminativeConfig {
            hidden: 64,
            epochs: 25,
            lr: 5e-4,
            seed: 0xD15C,
        }
    }
}

/// The trained two-layer sigmoid classifier.
pub struct DiscriminativePairer {
    bert: Rc<MiniBert>,
    l1: Linear,
    l2: Linear,
}

impl DiscriminativePairer {
    /// Feature vector for a candidate pair: `[mean(aspect); mean(opinion);
    /// mean(aspect) ⊙ mean(opinion); structure]` over contextual
    /// embeddings. The six structural features (normalized word distance,
    /// parse-tree distance, same-clause and same-chunk flags, span order,
    /// grid size) stand in for the positional information a full-size
    /// BERT encodes in its embeddings and our MiniBert is too small to —
    /// a documented scale substitution (DESIGN.md §1), not an oracle: all
    /// six are computed from the raw sentence alone.
    fn features(bert: &MiniBert, tokens: &[String], aspect: &Span, opinion: &Span) -> Matrix {
        let ctx = bert.features(tokens);
        let tree = ParseTree::from_tokens(tokens);
        Self::features_with(&ctx, &tree, tokens, aspect, opinion)
    }

    /// Feature assembly from precomputed per-sentence context (encoder
    /// output + parse tree); see [`DiscriminativePairer::features`].
    fn features_with(
        ctx: &Matrix,
        tree: &ParseTree,
        tokens: &[String],
        aspect: &Span,
        opinion: &Span,
    ) -> Matrix {
        // Spans beyond the encoder's max_len truncation clamp onto the
        // last contextual row — a graceful degradation for the rare >47
        // token sentence rather than a panic.
        let span_mean = |s: &Span| -> Vec<f32> {
            let lo = s.start.min(ctx.rows().saturating_sub(1));
            let hi = s.end.min(ctx.rows()).max(lo + 1);
            let rows = ctx.slice_rows(lo, hi);
            rows.sum_rows()
                .scale(1.0 / (hi - lo) as f32)
                .data()
                .to_vec()
        };
        let a = span_mean(aspect);
        let o = span_mean(opinion);
        let mut feat = Vec::with_capacity(3 * a.len() + STRUCT_FEATURES);
        feat.extend_from_slice(&a);
        feat.extend_from_slice(&o);
        feat.extend(a.iter().zip(&o).map(|(x, y)| x * y));
        let (ah, oh) = (aspect.end - 1, opinion.end - 1);
        let word_dist = (ah.abs_diff(oh) as f32 / tokens.len().max(1) as f32).min(1.0);
        let tree_dist = tree.tree_distance(ah.min(tokens.len() - 1), oh.min(tokens.len() - 1));
        feat.push(word_dist);
        feat.push(tree_dist as f32 / 6.0);
        feat.push(f32::from(u8::from(tree_dist <= 4))); // same clause
        feat.push(f32::from(u8::from(tree_dist <= 2))); // same chunk
        feat.push(f32::from(u8::from(aspect.start < opinion.start)));
        feat.push((tokens.len() as f32 / 32.0).min(1.0));
        Matrix::row_vector(feat)
    }

    fn forward(&self, feat: &Matrix) -> Var {
        let x = Var::leaf(feat.clone());
        self.l2.forward(&self.l1.forward(&x).relu()).sigmoid()
    }

    /// An untrained same-shaped classifier for the serving-replica path:
    /// build with the `hidden` width the original was trained with, then
    /// `load_state` its serialized weights to get a bitwise-identical
    /// pairer on a fresh (e.g. per-thread) encoder.
    pub fn replica(bert: Rc<MiniBert>, hidden: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(0);
        let dim = 3 * bert.dim() + STRUCT_FEATURES;
        DiscriminativePairer {
            bert,
            l1: Linear::new(dim, hidden, &mut rng),
            l2: Linear::new(hidden, 1, &mut rng),
        }
    }

    /// Train on weakly-labeled examples `(example, label)` — labels come
    /// from the generative stage, not ground truth (Figure 6).
    pub fn train(
        bert: Rc<MiniBert>,
        examples: &[(PairingExample, bool)],
        config: &DiscriminativeConfig,
    ) -> Self {
        assert!(!examples.is_empty(), "no training examples");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let dim = 3 * bert.dim() + STRUCT_FEATURES;
        let model = DiscriminativePairer {
            bert: bert.clone(),
            l1: Linear::new(dim, config.hidden, &mut rng),
            l2: Linear::new(config.hidden, 1, &mut rng),
        };
        // Precompute features once; the encoder is frozen. Candidates of
        // one sentence share its (expensive) contextual encoding and parse
        // tree, so cache those per distinct token sequence — training sets
        // carry a full candidate grid per sentence.
        let mut ctx_cache: std::collections::HashMap<String, (Matrix, saccs_parse::ParseTree)> =
            std::collections::HashMap::new();
        let feats: Vec<Matrix> = examples
            .iter()
            .map(|(ex, _)| {
                let key = ex.tokens.join("\u{1}");
                let (ctx, tree) = ctx_cache.entry(key).or_insert_with(|| {
                    (
                        bert.features(&ex.tokens),
                        ParseTree::from_tokens(&ex.tokens),
                    )
                });
                Self::features_with(ctx, tree, &ex.tokens, &ex.candidate.0, &ex.candidate.1)
            })
            .collect();
        let mut params = model.l1.params();
        params.extend(model.l2.params());
        let mut opt = Adam::new(config.lr).with_clip(1.0);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                zero_grads(&params);
                let p = model.forward(&feats[i]);
                let label = if examples[i].1 { 1.0 } else { 0.0 };
                p.binary_cross_entropy(label).backward();
                opt.step(&params);
            }
        }
        model
    }

    /// Snapshot the classifier's parameters (persistence).
    pub fn state(&self) -> Vec<Matrix> {
        let mut params = self.l1.params();
        params.extend(self.l2.params());
        params.iter().map(|p| p.value_clone()).collect()
    }

    /// Restore parameters from a [`DiscriminativePairer::state`] snapshot.
    pub fn load_state(&self, state: &[Matrix]) {
        let mut params = self.l1.params();
        params.extend(self.l2.params());
        assert_eq!(params.len(), state.len(), "state tensor count mismatch");
        for (p, m) in params.iter().zip(state) {
            p.set_value(m.clone());
        }
    }

    /// P(correct extraction) for a candidate pair.
    pub fn probability(&self, tokens: &[String], aspect: &Span, opinion: &Span) -> f32 {
        let feat = Self::features(&self.bert, tokens, aspect, opinion);
        self.forward(&feat).scalar()
    }

    /// Hard decision at the 0.5 threshold (the classifier interface of
    /// §5.2: "consider it as a correct extraction if the classifier
    /// returns a positive label").
    pub fn classify(&self, tokens: &[String], aspect: &Span, opinion: &Span) -> bool {
        self.probability(tokens, aspect, opinion) > 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testset::build_test_set;
    use saccs_embed::{build_vocab, MiniBertConfig};
    use saccs_text::Domain;

    fn bert() -> Rc<MiniBert> {
        let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
        Rc::new(MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 48,
                seed: 6,
            },
        ))
    }

    #[test]
    fn learns_gold_pairing_from_true_labels() {
        // Upper-bound sanity: with *gold* labels (instead of weak ones) the
        // classifier must beat chance comfortably on held-out data.
        let b = bert();
        let train = build_test_set(240, Domain::Restaurants, 21);
        let test = build_test_set(120, Domain::Restaurants, 22);
        let labeled: Vec<(PairingExample, bool)> =
            train.iter().map(|e| (e.clone(), e.label)).collect();
        let model = DiscriminativePairer::train(
            b,
            &labeled,
            &DiscriminativeConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        let correct = test
            .iter()
            .filter(|e| model.classify(&e.tokens, &e.candidate.0, &e.candidate.1) == e.label)
            .count();
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.65, "discriminative accuracy {acc}");
    }

    #[test]
    fn probability_is_bounded() {
        let b = bert();
        let set = build_test_set(40, Domain::Restaurants, 23);
        let labeled: Vec<(PairingExample, bool)> =
            set.iter().map(|e| (e.clone(), e.label)).collect();
        let model = DiscriminativePairer::train(
            b,
            &labeled,
            &DiscriminativeConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        for e in set.iter().take(10) {
            let p = model.probability(&e.tokens, &e.candidate.0, &e.candidate.1);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_is_deterministic() {
        let b = bert();
        let set = build_test_set(40, Domain::Restaurants, 24);
        let labeled: Vec<(PairingExample, bool)> =
            set.iter().map(|e| (e.clone(), e.label)).collect();
        let cfg = DiscriminativeConfig {
            epochs: 2,
            ..Default::default()
        };
        let m1 = DiscriminativePairer::train(b.clone(), &labeled, &cfg);
        let m2 = DiscriminativePairer::train(b, &labeled, &cfg);
        let e = &set[0];
        assert_eq!(
            m1.probability(&e.tokens, &e.candidate.0, &e.candidate.1),
            m2.probability(&e.tokens, &e.candidate.0, &e.candidate.1)
        );
    }
}

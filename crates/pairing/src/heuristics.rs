//! The two unsupervised pairing heuristics of §5.1.

use saccs_embed::MiniBert;
use saccs_nn::Matrix;
use saccs_parse::ParseTree;
use saccs_text::Span;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Everything a heuristic may look at for one sentence.
pub struct SentenceContext<'a> {
    pub tokens: &'a [String],
    /// Tagged aspect spans (token positions).
    pub aspects: &'a [Span],
    /// Tagged opinion spans.
    pub opinions: &'a [Span],
}

/// A pairing heuristic: proposes a set of (aspect, opinion) span pairs.
pub trait PairingHeuristic {
    /// Stable display name (Table 5 row label, e.g. `lf_tree_as`).
    fn name(&self) -> String;

    /// The pairs this heuristic endorses for the sentence.
    fn pairs(&self, ctx: &SentenceContext<'_>) -> BTreeSet<(Span, Span)>;
}

/// Direction of the greedy tree walk (§5.1: "we use this heuristic twice:
/// from aspects to opinions and then from opinions to aspects").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeDirection {
    /// Each aspect claims its closest opinion (`lf_tree_as`).
    AspectToOpinion,
    /// Each opinion claims its closest aspect (`lf_tree_op`).
    OpinionToAspect,
}

/// Parse-tree distance heuristic: map every source term to the closest
/// target term in the parse tree, with word distance as tie-break.
pub struct TreeHeuristic {
    pub direction: TreeDirection,
}

/// Representative token of a span for distance computations (the head of
/// a noun/adjective phrase is its last word: "wine list" → "list").
fn head(span: &Span) -> usize {
    span.end - 1
}

impl TreeHeuristic {
    pub fn new(direction: TreeDirection) -> Self {
        TreeHeuristic { direction }
    }
}

impl PairingHeuristic for TreeHeuristic {
    fn name(&self) -> String {
        match self.direction {
            TreeDirection::AspectToOpinion => "lf_tree_as".to_string(),
            TreeDirection::OpinionToAspect => "lf_tree_op".to_string(),
        }
    }

    fn pairs(&self, ctx: &SentenceContext<'_>) -> BTreeSet<(Span, Span)> {
        let mut out = BTreeSet::new();
        if ctx.aspects.is_empty() || ctx.opinions.is_empty() {
            return out;
        }
        let tree = ParseTree::from_tokens(ctx.tokens);
        let closest = |from: &Span, candidates: &[Span]| -> Span {
            *candidates
                .iter()
                .min_by_key(|c| tree.pairing_distance(head(from), head(c)))
                // lint:allow(no-unwrap-in-lib): guarded by the is_empty check above
                .expect("non-empty candidates")
        };
        match self.direction {
            TreeDirection::AspectToOpinion => {
                for a in ctx.aspects {
                    out.insert((*a, closest(a, ctx.opinions)));
                }
            }
            TreeDirection::OpinionToAspect => {
                for o in ctx.opinions {
                    out.insert((closest(o, ctx.aspects), *o));
                }
            }
        }
        out
    }
}

/// BERT attention-head heuristic: "given an aspect, output the most
/// attended-to opinion" (§5.1, Figure 5). Attention between spans is the
/// mean of the token-to-token attention weights of head `layer:head`,
/// symmetrized (aspect→opinion plus opinion→aspect mass) for stability on
/// short sentences.
pub struct AttentionHeuristic {
    bert: Rc<MiniBert>,
    pub layer: usize,
    pub head: usize,
}

impl AttentionHeuristic {
    pub fn new(bert: Rc<MiniBert>, layer: usize, head: usize) -> Self {
        let (layers, heads) = bert.attention_grid();
        assert!(
            layer >= 1 && layer <= layers,
            "layer {layer} out of 1..={layers}"
        );
        assert!(head < heads, "head {head} out of 0..{heads}");
        AttentionHeuristic { bert, layer, head }
    }
}

/// Mean attention mass between two spans (symmetrized). `att` includes the
/// `[CLS]` row/col at 0, so token `i` lives at `i + 1`.
pub fn span_attention(att: &Matrix, a: &Span, b: &Span) -> f32 {
    let mut total = 0.0;
    let mut n = 0u32;
    for i in a.start..a.end {
        for j in b.start..b.end {
            let (r, c) = (i + 1, j + 1);
            if r < att.rows() && c < att.cols() {
                total += att.get(r, c) + att.get(c, r);
                n += 2;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f32
    }
}

/// Pair each aspect with its most-attended opinion under one head's
/// attention matrix; aspects whose spans carry no observable attention
/// (e.g. beyond the encoder's max_len truncation) are left unpaired.
pub fn pairs_from_attention(att: &Matrix, ctx: &SentenceContext<'_>) -> BTreeSet<(Span, Span)> {
    let mut out = BTreeSet::new();
    for a in ctx.aspects {
        let Some((best, score)) = ctx
            .opinions
            .iter()
            .map(|o| (o, span_attention(att, a, o)))
            .max_by(|x, y| x.1.total_cmp(&y.1))
        else {
            continue;
        };
        if score > 0.0 {
            out.insert((*a, *best));
        }
    }
    out
}

impl PairingHeuristic for AttentionHeuristic {
    fn name(&self) -> String {
        format!("lf_bert_{}:{}", self.layer, self.head)
    }

    fn pairs(&self, ctx: &SentenceContext<'_>) -> BTreeSet<(Span, Span)> {
        if ctx.aspects.is_empty() || ctx.opinions.is_empty() {
            return BTreeSet::new();
        }
        let ids = self.bert.ids(ctx.tokens);
        // One encode serves every (layer, head) probe of this sentence.
        self.bert.ensure_attentions(&ids);
        let att = self.bert.attention(self.layer, self.head);
        pairs_from_attention(&att, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_text::tokenize_lower;

    fn toks(s: &str) -> Vec<String> {
        tokenize_lower(s).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn tree_heuristic_solves_the_paper_trap() {
        // "The staff is friendly, helpful and professional. The decor is
        // beautiful" — word distance pairs professional↔decor; tree
        // distance must pair professional↔staff.
        let tokens =
            toks("the staff is friendly , helpful and professional . the decor is beautiful");
        let staff = Span::aspect(1, 2);
        let decor = Span::aspect(10, 11);
        let friendly = Span::opinion(3, 4);
        let helpful = Span::opinion(5, 6);
        let professional = Span::opinion(7, 8);
        let beautiful = Span::opinion(12, 13);
        let ctx = SentenceContext {
            tokens: &tokens,
            aspects: &[staff, decor],
            opinions: &[friendly, helpful, professional, beautiful],
        };
        let pairs = TreeHeuristic::new(TreeDirection::OpinionToAspect).pairs(&ctx);
        assert!(pairs.contains(&(staff, professional)), "{pairs:?}");
        assert!(pairs.contains(&(decor, beautiful)));
        assert!(!pairs.contains(&(decor, professional)));
    }

    #[test]
    fn tree_directions_differ_on_many_to_one() {
        // "The staff is friendly and professional": aspect→opinion gives
        // one pair (closest opinion only); opinion→aspect gives both.
        let tokens = toks("the staff is friendly and professional");
        let staff = Span::aspect(1, 2);
        let friendly = Span::opinion(3, 4);
        let professional = Span::opinion(5, 6);
        let ctx = SentenceContext {
            tokens: &tokens,
            aspects: &[staff],
            opinions: &[friendly, professional],
        };
        let as_to_op = TreeHeuristic::new(TreeDirection::AspectToOpinion).pairs(&ctx);
        let op_to_as = TreeHeuristic::new(TreeDirection::OpinionToAspect).pairs(&ctx);
        assert_eq!(as_to_op.len(), 1, "one pair per aspect: {as_to_op:?}");
        assert_eq!(op_to_as.len(), 2, "one pair per opinion: {op_to_as:?}");
        assert!(op_to_as.contains(&(staff, friendly)));
        assert!(op_to_as.contains(&(staff, professional)));
    }

    #[test]
    fn empty_inputs_produce_no_pairs() {
        let tokens = toks("nothing here");
        let ctx = SentenceContext {
            tokens: &tokens,
            aspects: &[],
            opinions: &[],
        };
        assert!(TreeHeuristic::new(TreeDirection::AspectToOpinion)
            .pairs(&ctx)
            .is_empty());
    }

    #[test]
    fn heuristic_names_match_table5() {
        assert_eq!(
            TreeHeuristic::new(TreeDirection::AspectToOpinion).name(),
            "lf_tree_as"
        );
        assert_eq!(
            TreeHeuristic::new(TreeDirection::OpinionToAspect).name(),
            "lf_tree_op"
        );
    }

    #[test]
    fn attention_heuristic_emits_one_pair_per_aspect() {
        use saccs_embed::{build_vocab, MiniBertConfig};
        let vocab = build_vocab(&[saccs_text::Domain::Restaurants]);
        let bert = Rc::new(MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 32,
                seed: 3,
            },
        ));
        let h = AttentionHeuristic::new(bert, 2, 1);
        assert_eq!(h.name(), "lf_bert_2:1");
        let tokens = toks("the food is delicious and the staff is friendly");
        let food = Span::aspect(1, 2);
        let staff = Span::aspect(6, 7);
        let delicious = Span::opinion(3, 4);
        let friendly = Span::opinion(8, 9);
        let ctx = SentenceContext {
            tokens: &tokens,
            aspects: &[food, staff],
            opinions: &[delicious, friendly],
        };
        let pairs = h.pairs(&ctx);
        assert_eq!(pairs.len(), 2);
        // Untrained attention may pair arbitrarily; structure only.
        for (a, o) in &pairs {
            assert!(*a == food || *a == staff);
            assert!(*o == delicious || *o == friendly);
        }
    }

    #[test]
    #[should_panic(expected = "layer")]
    fn attention_heuristic_validates_layer() {
        use saccs_embed::{build_vocab, MiniBertConfig};
        let vocab = build_vocab(&[saccs_text::Domain::Restaurants]);
        let bert = Rc::new(MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 32,
                seed: 3,
            },
        ));
        let _ = AttentionHeuristic::new(bert, 9, 0);
    }
}

//! The pairing benchmark (§6.4).
//!
//! "Each test example consists of a review sentence (e.g., 'The food is
//! delicious and the staff is helpful'), a tag ('delicious staff') and the
//! label is whether the tag is a correct extraction from the review
//! sentence. The test set contains 397 sentences with a fairly equal
//! amount of positive and negative examples." Positives come from the
//! generator's gold pairs; negatives are the remaining cells of the
//! aspect × opinion candidate grid (exactly the `P_all` construction of
//! §5.2).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use saccs_data::{GeneratorConfig, SentenceGenerator};
use saccs_eval::BinaryConfusion;
use saccs_text::lexicon::Lexicon;
use saccs_text::{Domain, Span};

/// One benchmark example: a sentence, a candidate (aspect, opinion) pair,
/// and whether the pair is a correct extraction.
#[derive(Debug, Clone)]
pub struct PairingExample {
    pub tokens: Vec<String>,
    pub aspects: Vec<Span>,
    pub opinions: Vec<Span>,
    pub candidate: (Span, Span),
    pub label: bool,
}

impl PairingExample {
    /// The candidate tag's surface phrase, opinion first ("delicious staff").
    pub fn phrase(&self) -> String {
        format!(
            "{} {}",
            self.candidate.1.text(&self.tokens),
            self.candidate.0.text(&self.tokens)
        )
    }
}

/// Build a balanced pairing benchmark of `n` examples (the paper's is 397).
/// Multi-facet sentences are required so negative candidates exist.
pub fn build_test_set(n: usize, domain: Domain, seed: u64) -> Vec<PairingExample> {
    let gen = SentenceGenerator::new(
        Lexicon::new(domain),
        GeneratorConfig {
            typo_rate: 0.0,
            noise_rate: 0.2,
            train_vocabulary_only: false,
            // The benchmark leans on the hard cases: traps and correlated
            // facets are what separate the pairing methods.
            trap_rate: 0.45,
            correlated_facets: 0.65,
        },
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positives = Vec::new();
    let mut negatives = Vec::new();
    while positives.len() < n / 2 + 1 || negatives.len() < n / 2 + 1 {
        let s = gen.random_sentence(&mut rng);
        let aspects = s.aspect_spans();
        let opinions = s.opinion_spans();
        if aspects.len() < 2 && opinions.len() < 2 {
            continue; // no negative cells in a 1×1 grid
        }
        let gold: std::collections::BTreeSet<(Span, Span)> = s.pairs.iter().copied().collect();
        for &a in &aspects {
            for &o in &opinions {
                let ex = PairingExample {
                    tokens: s.tokens.clone(),
                    aspects: aspects.clone(),
                    opinions: opinions.clone(),
                    candidate: (a, o),
                    label: gold.contains(&(a, o)),
                };
                if ex.label {
                    positives.push(ex);
                } else {
                    negatives.push(ex);
                }
            }
        }
    }
    positives.truncate(n / 2 + n % 2);
    negatives.truncate(n / 2);
    let mut out = positives;
    out.append(&mut negatives);
    out.shuffle(&mut rng);
    out
}

/// Evaluate any binary voter on the benchmark (Table 5 row computation).
pub fn evaluate_voter(
    mut voter: impl FnMut(&PairingExample) -> bool,
    examples: &[PairingExample],
) -> BinaryConfusion {
    let mut c = BinaryConfusion::new();
    for ex in examples {
        c.observe(voter(ex), ex.label);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_set_is_balanced_and_sized() {
        let set = build_test_set(397, Domain::Restaurants, 9);
        assert_eq!(set.len(), 397);
        let pos = set.iter().filter(|e| e.label).count();
        let neg = set.len() - pos;
        assert!((pos as i64 - neg as i64).abs() <= 1, "pos={pos} neg={neg}");
    }

    #[test]
    fn candidates_are_within_sentence_grids() {
        let set = build_test_set(100, Domain::Hotels, 10);
        for ex in &set {
            assert!(ex.aspects.contains(&ex.candidate.0));
            assert!(ex.opinions.contains(&ex.candidate.1));
            assert!(ex.candidate.0.end <= ex.tokens.len());
            assert!(ex.candidate.1.end <= ex.tokens.len());
        }
    }

    #[test]
    fn phrase_puts_opinion_first() {
        let set = build_test_set(50, Domain::Restaurants, 11);
        for ex in set.iter().take(10) {
            let p = ex.phrase();
            assert!(p.starts_with(&ex.candidate.1.text(&ex.tokens)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build_test_set(60, Domain::Restaurants, 12);
        let b = build_test_set(60, Domain::Restaurants, 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens, y.tokens);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn evaluate_voter_counts() {
        let set = build_test_set(80, Domain::Restaurants, 13);
        let all_yes = evaluate_voter(|_| true, &set);
        assert_eq!(all_yes.total(), 80);
        assert_eq!(all_yes.recall(), 1.0);
        let oracle = evaluate_voter(|e| e.label, &set);
        assert_eq!(oracle.accuracy(), 1.0);
    }
}

//! # saccs-pairing
//!
//! Aspect ↔ opinion pairing (SACCS Section 5). After the tagger has marked
//! aspect and opinion spans, every aspect must be paired with the opinion
//! that describes it to form subjective tags. This crate implements the
//! paper's full pairing stack:
//!
//! * [`heuristics`] — the two novel unsupervised heuristics of §5.1:
//!   parse-tree distance (run both directions, aspects→opinions and
//!   opinions→aspects) and BERT attention heads (each aspect attends to
//!   its rightful opinion, Figure 5);
//! * [`labeling`] — the seven labeling functions of §5.2 (five attention
//!   heads chosen by a dev-set analysis + the two tree directions), each
//!   mapping a `(sentence, candidate tag)` pair to a binary vote;
//! * [`generative`] — Snorkel's \[48\] two label models: majority vote and
//!   the probabilistic (Dawid-Skene-style EM) model that learns per-LF
//!   accuracies without ground truth;
//! * [`discriminative`] — the supervised two-layer sigmoid classifier
//!   trained on the weakly-labeled data (Figure 6), which "generalizes
//!   beyond the scope of examples fed to the labeling functions";
//! * [`testset`] — the 397-example balanced pairing benchmark mirroring
//!   the one \[31\] built (and §6.4 evaluates on).

/// Supervised pairing classifier over pair features.
pub mod discriminative;
/// Generative label model over noisy labeling functions.
pub mod generative;
/// Tree- and attention-based pairing heuristics.
pub mod heuristics;
/// Labeling functions and attention-head selection.
pub mod labeling;
/// The end-to-end pairing pipeline.
pub mod pipeline;
/// The balanced pairing benchmark set.
pub mod testset;

/// The trained pairing classifier.
pub use discriminative::{DiscriminativeConfig, DiscriminativePairer};
/// Label aggregation models.
pub use generative::{majority_vote, ProbabilisticModel};
/// Heuristic pairers and their shared sentence context.
pub use heuristics::{
    AttentionHeuristic, PairingHeuristic, SentenceContext, TreeDirection, TreeHeuristic,
};
/// Weak supervision sources.
pub use labeling::{select_attention_heads, LabelingFunction};
/// Pipeline assembly and configuration.
pub use pipeline::{PairingPipeline, PipelineConfig};
/// Benchmark construction.
pub use testset::{build_test_set, PairingExample};

//! The end-to-end data-programming pipeline (Figure 6).
//!
//! ```text
//! unlabeled sentences ──tagger──▶ candidate pairs P_all
//!        │                              │
//!        └──── 7 labeling functions ────┤ votes
//!                                       ▼
//!                        generative model (majority vote
//!                        or probabilistic) → weak labels
//!                                       ▼
//!                        discriminative classifier (§5.2)
//! ```
//!
//! Every stage is a working pairer on its own (the paper evaluates each in
//! Table 5); the pipeline trains them in sequence and exposes the final
//! discriminative model plus the intermediate stages for ablation.

use crate::discriminative::{DiscriminativeConfig, DiscriminativePairer};
use crate::generative::{majority_vote, ProbabilisticModel};
use crate::heuristics::SentenceContext;
use crate::labeling::{build_labeling_functions, LabelingFunction};
use crate::testset::PairingExample;
use saccs_data::LabeledSentence;
use saccs_embed::MiniBert;
use saccs_text::Span;
use std::rc::Rc;

/// Which generative stage produces the weak labels for the discriminative
/// model. The paper: "although the authors of Snorkel state that the
/// probabilistic generative model works better in practice than the
/// majority vote, we found the latter to be more accurate" — so majority
/// vote is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelModel {
    MajorityVote,
    Probabilistic,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub label_model: LabelModel,
    pub em_iterations: usize,
    pub discriminative: DiscriminativeConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            label_model: LabelModel::MajorityVote,
            em_iterations: 25,
            discriminative: DiscriminativeConfig::default(),
        }
    }
}

/// The fitted pipeline.
pub struct PairingPipeline {
    lfs: Vec<LabelingFunction>,
    probabilistic: ProbabilisticModel,
    discriminative: DiscriminativePairer,
    config: PipelineConfig,
}

/// The full aspect × opinion candidate grid.
fn candidate_grid(aspects: &[Span], opinions: &[Span]) -> Vec<(Span, Span)> {
    let mut out = Vec::with_capacity(aspects.len() * opinions.len());
    for &a in aspects {
        for &o in opinions {
            out.push((a, o));
        }
    }
    out
}

impl PairingPipeline {
    /// A serving-only pipeline around an already-trained discriminative
    /// classifier. [`PairingPipeline::pair_spans`] and
    /// [`PairingPipeline::classify`] consult only that classifier, so a
    /// replica pipeline needs no labeling functions and no generative
    /// model — both are inert placeholders here.
    pub fn serving(discriminative: DiscriminativePairer, config: PipelineConfig) -> Self {
        PairingPipeline {
            lfs: Vec::new(),
            probabilistic: ProbabilisticModel::uninformative(),
            discriminative,
            config,
        }
    }

    /// Fit the full pipeline: select heads on `dev`, vote over `train`,
    /// aggregate, and train the discriminative model on the weak labels.
    pub fn fit(
        bert: Rc<MiniBert>,
        train: &[LabeledSentence],
        dev: &[LabeledSentence],
        config: PipelineConfig,
    ) -> Self {
        let _fit = saccs_obs::span!("pairing.fit");
        let lfs = build_labeling_functions(&bert, dev);

        // Vote matrix over every candidate of every training sentence.
        let mut vote_rows: Vec<Vec<bool>> = Vec::new();
        let mut examples: Vec<PairingExample> = Vec::new();
        for s in train {
            let aspects = s.aspect_spans();
            let opinions = s.opinion_spans();
            if aspects.is_empty() || opinions.is_empty() {
                continue;
            }
            let ctx = SentenceContext {
                tokens: &s.tokens,
                aspects: &aspects,
                opinions: &opinions,
            };
            let candidates = candidate_grid(&aspects, &opinions);
            let per_lf: Vec<Vec<bool>> = lfs
                .iter()
                .map(|lf| lf.label_all(&ctx, &candidates))
                .collect();
            for (ci, &cand) in candidates.iter().enumerate() {
                vote_rows.push(per_lf.iter().map(|v| v[ci]).collect());
                examples.push(PairingExample {
                    tokens: s.tokens.clone(),
                    aspects: aspects.clone(),
                    opinions: opinions.clone(),
                    candidate: cand,
                    label: false, // filled below from the label model
                });
            }
        }
        assert!(
            !vote_rows.is_empty(),
            "no pairing candidates in training data"
        );
        saccs_obs::counter!("pairing.candidates").add(vote_rows.len() as u64);
        if saccs_obs::enabled() {
            // Per-LF diagnostics: how often each labeling function fires,
            // and how often it agrees with the majority vote it feeds.
            for (li, lf) in lfs.iter().enumerate() {
                let fired = vote_rows.iter().filter(|row| row[li]).count();
                let agree = vote_rows
                    .iter()
                    .filter(|row| row[li] == majority_vote(row))
                    .count();
                let n = vote_rows.len() as f64;
                let reg = saccs_obs::registry();
                // lint:allow(metric-name-literal): one series per labeling function — the LF set is static
                reg.gauge(&format!("pairing.lf.{}.fire_rate", lf.name()))
                    .set(fired as f64 / n);
                // lint:allow(metric-name-literal): one series per labeling function — the LF set is static
                reg.gauge(&format!("pairing.lf.{}.agreement", lf.name()))
                    .set(agree as f64 / n);
            }
        }

        let probabilistic = ProbabilisticModel::fit(&vote_rows, config.em_iterations);
        let weak: Vec<bool> = vote_rows
            .iter()
            .map(|v| match config.label_model {
                LabelModel::MajorityVote => majority_vote(v),
                LabelModel::Probabilistic => probabilistic.predict(v),
            })
            .collect();
        let labeled: Vec<(PairingExample, bool)> = examples.into_iter().zip(weak).collect();
        let discriminative = DiscriminativePairer::train(bert, &labeled, &config.discriminative);

        PairingPipeline {
            lfs,
            probabilistic,
            discriminative,
            config,
        }
    }

    pub fn labeling_functions(&self) -> &[LabelingFunction] {
        &self.lfs
    }

    pub fn probabilistic_model(&self) -> &ProbabilisticModel {
        &self.probabilistic
    }

    pub fn discriminative_model(&self) -> &DiscriminativePairer {
        &self.discriminative
    }

    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Votes of all LFs on one candidate.
    pub fn votes(&self, ctx: &SentenceContext<'_>, candidate: (Span, Span)) -> Vec<bool> {
        self.lfs.iter().map(|lf| lf.label(ctx, candidate)).collect()
    }

    /// Final (discriminative) decision for a candidate pair.
    pub fn classify(&self, tokens: &[String], aspect: &Span, opinion: &Span) -> bool {
        self.discriminative.classify(tokens, aspect, opinion)
    }

    /// Pair an extracted span set: run the classifier over the full
    /// candidate grid and keep the positives (the SACCS usage of §5.2).
    /// Falls back to the best-probability opinion per aspect when the
    /// classifier rejects everything, so tagged aspects are never dropped.
    pub fn pair_spans(
        &self,
        tokens: &[String],
        aspects: &[Span],
        opinions: &[Span],
    ) -> Vec<(Span, Span)> {
        let mut out = Vec::new();
        for &a in aspects {
            let mut best: Option<(f32, Span)> = None;
            for &o in opinions {
                let p = self.discriminative.probability(tokens, &a, &o);
                if p > 0.5 {
                    out.push((a, o));
                }
                if best.is_none_or(|(bp, _)| p > bp) {
                    best = Some((p, o));
                }
            }
            if !out.iter().any(|(pa, _)| *pa == a) {
                if let Some((_, o)) = best {
                    out.push((a, o));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testset::{build_test_set, evaluate_voter};
    use saccs_data::{Dataset, DatasetId};
    use saccs_embed::{build_vocab, general_corpus, train_mlm, MiniBertConfig, MlmConfig};
    use saccs_text::Domain;

    fn bert() -> Rc<MiniBert> {
        let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
        let b = MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 48,
                seed: 8,
            },
        );
        train_mlm(
            &b,
            &general_corpus(100, 9),
            &MlmConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        Rc::new(b)
    }

    fn fitted() -> PairingPipeline {
        let b = bert();
        // §6.4: "We train the model with Booking.com dataset for hotels."
        let hotels = Dataset::generate_scaled(DatasetId::S4, 0.15);
        let dev = Dataset::generate_scaled(DatasetId::S1, 0.01);
        PairingPipeline::fit(
            b,
            &hotels.train,
            &dev.train,
            PipelineConfig {
                discriminative: DiscriminativeConfig {
                    epochs: 4,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn pipeline_fits_and_classifies() {
        let p = fitted();
        assert_eq!(p.labeling_functions().len(), 6); // 4 heads + 2 tree at test scale
        let test = build_test_set(80, Domain::Restaurants, 31);
        let conf = evaluate_voter(
            |e| p.classify(&e.tokens, &e.candidate.0, &e.candidate.1),
            &test,
        );
        assert!(
            conf.accuracy() > 0.55,
            "weakly-supervised discriminative accuracy {}",
            conf.accuracy()
        );
    }

    #[test]
    fn discriminative_predictions_are_non_degenerate() {
        // At this test's miniature scale the discriminative model cannot
        // be expected to beat the tree LFs (the full-scale comparison is
        // the table5 bench); what must hold even here is that it learned a
        // real decision boundary: both classes predicted, and materially
        // better than chance on at least one of precision/recall.
        let p = fitted();
        let test = build_test_set(120, Domain::Restaurants, 32);
        let disc = evaluate_voter(
            |e| p.classify(&e.tokens, &e.candidate.0, &e.candidate.1),
            &test,
        );
        assert!(disc.tp + disc.fp > 0, "never predicts positive");
        assert!(disc.tn + disc.fn_ > 0, "never predicts negative");
        assert!(
            disc.precision() > 0.55 || disc.recall() > 0.55,
            "no better than chance: P={} R={}",
            disc.precision(),
            disc.recall()
        );
    }

    #[test]
    fn pair_spans_covers_every_aspect() {
        let p = fitted();
        let test = build_test_set(30, Domain::Restaurants, 33);
        for e in test.iter().take(10) {
            let pairs = p.pair_spans(&e.tokens, &e.aspects, &e.opinions);
            for a in &e.aspects {
                assert!(pairs.iter().any(|(pa, _)| pa == a), "aspect left unpaired");
            }
        }
    }

    #[test]
    fn votes_have_one_entry_per_lf() {
        let p = fitted();
        let test = build_test_set(10, Domain::Restaurants, 34);
        let e = &test[0];
        let ctx = SentenceContext {
            tokens: &e.tokens,
            aspects: &e.aspects,
            opinions: &e.opinions,
        };
        assert_eq!(
            p.votes(&ctx, e.candidate).len(),
            p.labeling_functions().len()
        );
    }
}

//! # saccs-eval
//!
//! Evaluation metrics for the SACCS reproduction:
//!
//! * [`mod@ndcg`] — Normalized Discounted Cumulative Gain exactly as defined in
//!   Equations 10–11 of the paper (Table 2's metric),
//! * [`span`] — exact-match span F1 for aspect/opinion tagging (Table 4's
//!   metric, following the NER convention the paper cites),
//! * [`classification`] — accuracy / precision / recall / F1 for the
//!   pairing classifiers (Table 5's metrics).

/// Bootstrap confidence intervals over metric samples.
pub mod bootstrap;
/// Binary confusion-matrix metrics.
pub mod classification;
/// Rank correlation (Spearman, Kendall tau).
pub mod correlation;
/// Discounted cumulative gain and NDCG@k.
pub mod ndcg;
/// Span-level F1 for IOB extraction.
pub mod span;

/// CI estimation and the sample mean.
pub use bootstrap::{bootstrap_ci, mean};
/// Precision/recall/F1 bookkeeping.
pub use classification::BinaryConfusion;
/// Rank correlation coefficients.
pub use correlation::{kendall_tau, spearman};
/// Ranking quality metrics.
pub use ndcg::{dcg, ndcg};
/// Span extraction scoring.
pub use span::SpanF1;

//! # saccs-eval
//!
//! Evaluation metrics for the SACCS reproduction:
//!
//! * [`mod@ndcg`] — Normalized Discounted Cumulative Gain exactly as defined in
//!   Equations 10–11 of the paper (Table 2's metric),
//! * [`span`] — exact-match span F1 for aspect/opinion tagging (Table 4's
//!   metric, following the NER convention the paper cites),
//! * [`classification`] — accuracy / precision / recall / F1 for the
//!   pairing classifiers (Table 5's metrics).

pub mod bootstrap;
pub mod classification;
pub mod correlation;
pub mod ndcg;
pub mod span;

pub use bootstrap::{bootstrap_ci, mean};
pub use classification::BinaryConfusion;
pub use correlation::{kendall_tau, spearman};
pub use ndcg::{dcg, ndcg};
pub use span::SpanF1;

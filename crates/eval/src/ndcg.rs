//! NDCG exactly as Equations 10–11 define it.
//!
//! For a query `Q = {q₁…q_m}` of subjective tags and a returned top-k list
//! `E = {e₁…e_k}`:
//!
//! ```text
//! DCG(Q, E)  = Σ_{j=1..k} (2^{ (1/m) Σ_i sat(q_i, e_j) } − 1) / log₂(j + 1)
//! NDCG(Q, E) = DCG(Q, E) / iDCG(Q)
//! ```
//!
//! where `sat(q, e) ∈ [0, 1]` is the crowd (here: simulated-crowd) ground
//! truth and `iDCG` is the DCG of the ideal ordering — entities sorted by
//! the sum of their `sat` scores (§6.2, "it is only a matter of sorting the
//! entities with respect to the sum of their sat scores").

/// DCG of a ranked list given each ranked entity's *mean* sat score over
/// the query tags. `gains[0]` is rank 1.
pub fn dcg(mean_sats: &[f32]) -> f32 {
    mean_sats
        .iter()
        .enumerate()
        .map(|(j, &g)| (2f32.powf(g) - 1.0) / ((j + 2) as f32).log2())
        .sum()
}

/// NDCG@k of a ranking.
///
/// * `ranked` — mean sat score of each returned entity, in rank order;
/// * `pool` — mean sat scores of *every* candidate entity (used to build
///   the ideal ordering);
/// * `k` — cutoff applied to both the ranking and the ideal list.
///
/// Returns a value in `[0, 1]`; 1.0 when the pool has no positive gain at
/// all (an empty ideal is trivially matched).
pub fn ndcg(ranked: &[f32], pool: &[f32], k: usize) -> f32 {
    let top: Vec<f32> = ranked.iter().copied().take(k).collect();
    let mut ideal: Vec<f32> = pool.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).unwrap());
    ideal.truncate(k);
    let idcg = dcg(&ideal);
    if idcg <= 0.0 {
        return 1.0;
    }
    (dcg(&top) / idcg).clamp(0.0, 1.0)
}

/// Mean of per-query NDCG scores (the paper reports "the arithmetic mean
/// over all queries", §6.2).
pub fn mean_ndcg(scores: &[f32]) -> f32 {
    if scores.is_empty() {
        return 0.0;
    }
    (scores.iter().map(|&s| f64::from(s)).sum::<f64>() / scores.len() as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let pool = [1.0, 0.8, 0.5, 0.1];
        assert!((ndcg(&pool, &pool, 4) - 1.0).abs() < 1e-6);
        assert!((ndcg(&pool[..2], &pool, 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn reversed_ranking_scores_below_one() {
        let pool = [1.0, 0.8, 0.5, 0.1];
        let rev = [0.1, 0.5, 0.8, 1.0];
        let v = ndcg(&rev, &pool, 4);
        assert!(v < 1.0 && v > 0.0);
    }

    #[test]
    fn better_ranking_scores_higher() {
        let pool = [1.0, 0.6, 0.3];
        let good = [1.0, 0.6, 0.3];
        let mediocre = [0.6, 1.0, 0.3];
        let bad = [0.3, 0.6, 1.0];
        let (g, m, b) = (
            ndcg(&good, &pool, 3),
            ndcg(&mediocre, &pool, 3),
            ndcg(&bad, &pool, 3),
        );
        assert!(g > m && m > b, "g={g} m={m} b={b}");
    }

    #[test]
    fn zero_gain_pool_is_trivially_ideal() {
        assert_eq!(ndcg(&[0.0, 0.0], &[0.0, 0.0, 0.0], 3), 1.0);
    }

    #[test]
    fn dcg_discounts_by_rank() {
        // Same gain later in the list contributes less.
        let early = dcg(&[1.0, 0.0]);
        let late = dcg(&[0.0, 1.0]);
        assert!(early > late);
        assert!((early - 1.0).abs() < 1e-6); // 2^1−1 / log2(2) = 1
    }

    #[test]
    fn shorter_ranking_is_allowed() {
        // A system may return fewer than k entities; missing slots earn 0.
        let pool = [1.0, 1.0, 1.0];
        let v = ndcg(&[1.0], &pool, 3);
        assert!(v < 1.0 && v > 0.0);
    }

    #[test]
    fn mean_ndcg_averages() {
        assert_eq!(mean_ndcg(&[1.0, 0.5]), 0.75);
        assert_eq!(mean_ndcg(&[]), 0.0);
    }

    proptest! {
        /// NDCG is always within [0, 1] for gains in [0, 1].
        #[test]
        fn prop_ndcg_bounded(
            ranked in proptest::collection::vec(0.0f32..=1.0, 0..10),
            extra in proptest::collection::vec(0.0f32..=1.0, 0..10),
            k in 1usize..12,
        ) {
            let mut pool = ranked.clone();
            pool.extend(extra);
            let v = ndcg(&ranked, &pool, k);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        /// The ideal ordering of the full pool always reaches exactly 1.
        #[test]
        fn prop_ideal_is_one(pool in proptest::collection::vec(0.0f32..=1.0, 1..12), k in 1usize..12) {
            let mut ideal = pool.clone();
            ideal.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let v = ndcg(&ideal, &pool, k);
            prop_assert!((v - 1.0).abs() < 1e-5);
        }

        /// Swapping two adjacently-ranked entities so the better one comes
        /// first never decreases NDCG.
        #[test]
        fn prop_swap_monotone(
            mut ranked in proptest::collection::vec(0.0f32..=1.0, 2..8),
            i in 0usize..6,
        ) {
            let i = i % (ranked.len() - 1);
            let pool = ranked.clone();
            let before = ndcg(&ranked, &pool, ranked.len());
            if ranked[i] < ranked[i + 1] {
                ranked.swap(i, i + 1);
            }
            let after = ndcg(&ranked, &pool, ranked.len());
            prop_assert!(after >= before - 1e-6);
        }
    }
}

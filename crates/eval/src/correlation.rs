//! Rank-correlation metrics.
//!
//! Complements NDCG for comparing a system ranking against the latent
//! ground truth (used in the integration tests and the fraud analysis):
//! Spearman's ρ over full rankings and Kendall's τ-a for small lists.

/// Average ranks of the values (ties share the mean rank), 1-based.
fn ranks(values: &[f32]) -> Vec<f32> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
    let mut out = vec![0.0f32; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f32 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation of two equal-length slices; 0 when either side is
/// constant.
fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f32;
    if n == 0.0 {
        return 0.0;
    }
    let ma = (a.iter().map(|&x| f64::from(x)).sum::<f64>() / f64::from(n)) as f32;
    let mb = (b.iter().map(|&y| f64::from(y)).sum::<f64>() / f64::from(n)) as f32;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Spearman's ρ between two paired samples (tie-aware, via rank Pearson).
pub fn spearman(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "spearman: length mismatch");
    pearson(&ranks(a), &ranks(b))
}

/// Kendall's τ-a between two paired samples (O(n²); fine for the ≤ 300
/// entity lists this crate evaluates).
pub fn kendall_tau(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "kendall: length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f32;
    (concordant - discordant) as f32 / pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_and_inverse_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-5);
        assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-5);
        let r: Vec<f32> = b.iter().rev().copied().collect();
        assert!((spearman(&a, &r) + 1.0).abs() < 1e-5);
        assert!((kendall_tau(&a, &r) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn constant_side_is_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(spearman(&a, &b), 0.0);
        assert_eq!(kendall_tau(&a, &b), 0.0);
    }

    #[test]
    fn ties_share_mean_rank() {
        let r = ranks(&[2.0, 1.0, 2.0]);
        assert_eq!(r, vec![2.5, 1.0, 2.5]);
    }

    #[test]
    fn monotone_transform_invariance_of_spearman() {
        let a: [f32; 4] = [0.1, 0.5, 0.9, 0.3];
        let b: Vec<f32> = a.iter().map(|x: &f32| x.powi(3) * 100.0).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-5);
    }

    proptest! {
        #[test]
        fn prop_bounded_and_symmetric(
            a in proptest::collection::vec(-10.0f32..10.0, 2..20),
            b in proptest::collection::vec(-10.0f32..10.0, 2..20),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            for f in [spearman, kendall_tau] {
                let v = f(a, b);
                prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&v));
                prop_assert!((v - f(b, a)).abs() < 1e-5);
            }
        }

        #[test]
        fn prop_self_correlation_is_one(a in proptest::collection::vec(-10.0f32..10.0, 2..20)) {
            // Skip all-constant draws where correlation is undefined (0).
            let distinct: std::collections::BTreeSet<_> =
                a.iter().map(|v| v.to_bits()).collect();
            prop_assume!(distinct.len() > 1);
            prop_assert!((spearman(&a, &a) - 1.0).abs() < 1e-4);
            prop_assert!((kendall_tau(&a, &a) - 1.0).abs() < 1e-4);
        }
    }
}

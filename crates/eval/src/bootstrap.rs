//! Bootstrap confidence intervals for per-query metrics.
//!
//! The paper reports point-estimate NDCG means (Table 2); with only 100
//! queries per difficulty level, differences of 1–2 points are within
//! resampling noise. The Table-2 bin therefore reports a percentile
//! bootstrap interval next to each mean so shape claims ("SACCS-18 beats
//! IR") can be checked against the uncertainty, not just the point.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Percentile-bootstrap confidence interval for the mean of `samples`.
///
/// Resamples with replacement `iters` times and returns the
/// `(lo, hi)` quantiles of the resampled means at the given confidence
/// level (e.g. `0.95` → 2.5th and 97.5th percentiles). Deterministic under
/// `seed`. Returns `(0.0, 0.0)` for empty input.
pub fn bootstrap_ci(samples: &[f32], confidence: f32, iters: usize, seed: u64) -> (f32, f32) {
    assert!((0.0..1.0).contains(&confidence) || confidence == 0.0 || confidence < 1.0);
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = samples.len();
    let mut means = Vec::with_capacity(iters);
    for _ in 0..iters {
        let mut sum = 0.0f32;
        for _ in 0..n {
            sum += samples[rng.gen_range(0..n)];
        }
        means.push(sum / n as f32);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((iters as f32 * alpha) as usize).min(iters - 1);
    let hi_idx = ((iters as f32 * (1.0 - alpha)) as usize).min(iters - 1);
    (means[lo_idx], means[hi_idx])
}

/// Mean of the samples (convenience, for printing alongside the CI).
pub fn mean(samples: &[f32]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    (samples.iter().map(|&s| f64::from(s)).sum::<f64>() / samples.len() as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interval_contains_the_mean_of_tight_data() {
        let samples = vec![0.5f32; 50];
        let (lo, hi) = bootstrap_ci(&samples, 0.95, 500, 1);
        assert_eq!((lo, hi), (0.5, 0.5));
    }

    #[test]
    fn wider_spread_gives_wider_interval() {
        let tight: Vec<f32> = (0..100).map(|i| 0.5 + 0.01 * (i % 2) as f32).collect();
        let wide: Vec<f32> = (0..100)
            .map(|i| if i % 2 == 0 { 0.1 } else { 0.9 })
            .collect();
        let (tl, th) = bootstrap_ci(&tight, 0.95, 500, 2);
        let (wl, wh) = bootstrap_ci(&wide, 0.95, 500, 2);
        assert!(wh - wl > th - tl);
    }

    #[test]
    fn deterministic_under_seed() {
        let samples: Vec<f32> = (0..60).map(|i| (i as f32) / 60.0).collect();
        assert_eq!(
            bootstrap_ci(&samples, 0.95, 300, 7),
            bootstrap_ci(&samples, 0.95, 300, 7)
        );
    }

    #[test]
    fn empty_input_is_zeroes() {
        assert_eq!(bootstrap_ci(&[], 0.95, 100, 1), (0.0, 0.0));
        assert_eq!(mean(&[]), 0.0);
    }

    proptest! {
        /// lo ≤ sample mean ≤ hi for any non-degenerate sample, and the
        /// interval lies within the sample range.
        #[test]
        fn prop_interval_brackets_mean(
            samples in proptest::collection::vec(0.0f32..=1.0, 5..60),
            seed in 0u64..100,
        ) {
            let (lo, hi) = bootstrap_ci(&samples, 0.9, 300, seed);
            let m = mean(&samples);
            prop_assert!(lo <= m + 1e-4, "lo={lo} mean={m}");
            prop_assert!(hi >= m - 1e-4, "hi={hi} mean={m}");
            let min = samples.iter().cloned().fold(f32::INFINITY, f32::min);
            let max = samples.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(lo >= min - 1e-6 && hi <= max + 1e-6);
        }
    }
}

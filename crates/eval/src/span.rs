//! Exact-match span F1 for aspect/opinion extraction (Table 4's metric).
//!
//! "For an aspect (or opinion) to be counted as correctly extracted, it
//! needs to match the exact terms present in the ground truth" (§6.3); like
//! the NER evaluation the paper cites \[51\], we micro-average over the whole
//! test corpus: precision = matched / predicted, recall = matched / gold.

use std::collections::HashSet;
use std::hash::Hash;

/// Micro-averaged span-level F1 accumulator. `S` is any hashable span
/// representation — typically `saccs_text::Span` or `(kind, start, end)`.
#[derive(Debug, Clone, Default)]
pub struct SpanF1 {
    matched: usize,
    predicted: usize,
    gold: usize,
}

impl SpanF1 {
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate one sentence's predicted and gold span sets.
    pub fn observe<S: Eq + Hash + Clone>(&mut self, predicted: &[S], gold: &[S]) {
        let pset: HashSet<S> = predicted.iter().cloned().collect();
        let gset: HashSet<S> = gold.iter().cloned().collect();
        self.matched += pset.intersection(&gset).count();
        self.predicted += pset.len();
        self.gold += gset.len();
    }

    pub fn precision(&self) -> f32 {
        if self.predicted == 0 {
            return 0.0;
        }
        self.matched as f32 / self.predicted as f32
    }

    pub fn recall(&self) -> f32 {
        if self.gold == 0 {
            return 0.0;
        }
        self.matched as f32 / self.gold as f32
    }

    pub fn f1(&self) -> f32 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// F1 in percent, matching the paper's reporting style (e.g. `84.43`).
    pub fn f1_percent(&self) -> f32 {
        100.0 * self.f1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_only() {
        let mut m = SpanF1::new();
        // One exact match, one boundary miss, one spurious prediction.
        m.observe(&[(0, 1, 2), (1, 4, 6), (0, 8, 9)], &[(0, 1, 2), (1, 4, 7)]);
        assert_eq!(m.matched, 1);
        assert!((m.precision() - 1.0 / 3.0).abs() < 1e-6);
        assert!((m.recall() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn perfect_prediction() {
        let mut m = SpanF1::new();
        m.observe(&[(0, 0, 1)], &[(0, 0, 1)]);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.f1_percent(), 100.0);
    }

    #[test]
    fn micro_average_accumulates_across_sentences() {
        let mut m = SpanF1::new();
        m.observe(&[(0, 0, 1)], &[(0, 0, 1)]); // perfect sentence
        m.observe::<(i32, i32, i32)>(&[], &[(0, 2, 3)]); // total miss
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 0.5);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_everything_is_zero() {
        let m = SpanF1::new();
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn duplicates_in_input_are_deduplicated() {
        let mut m = SpanF1::new();
        m.observe(&[(0, 0, 1), (0, 0, 1)], &[(0, 0, 1)]);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
    }
}

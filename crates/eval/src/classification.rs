//! Binary-classification metrics for the pairing evaluation (Table 5).

/// Accumulating confusion counts for a binary classifier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryConfusion {
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    pub fn_: usize,
}

impl BinaryConfusion {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one (predicted, gold) observation.
    pub fn observe(&mut self, predicted: bool, gold: bool) {
        match (predicted, gold) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct predictions; 0 on an empty confusion.
    pub fn accuracy(&self) -> f32 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f32 / t as f32
    }

    /// TP / (TP + FP); 0 when nothing was predicted positive.
    pub fn precision(&self) -> f32 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f32 / (self.tp + self.fp) as f32
    }

    /// TP / (TP + FN); 0 when there are no gold positives.
    pub fn recall(&self) -> f32 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f32 / (self.tp + self.fn_) as f32
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f32 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Merge counts from another confusion.
    pub fn merge(&mut self, other: &BinaryConfusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        let mut c = BinaryConfusion::new();
        // 3 TP, 1 FP, 4 TN, 2 FN
        for _ in 0..3 {
            c.observe(true, true);
        }
        c.observe(true, false);
        for _ in 0..4 {
            c.observe(false, false);
        }
        for _ in 0..2 {
            c.observe(false, true);
        }
        assert_eq!(c.total(), 10);
        assert!((c.accuracy() - 0.7).abs() < 1e-6);
        assert!((c.precision() - 0.75).abs() < 1e-6);
        assert!((c.recall() - 0.6).abs() < 1e-6);
        assert!((c.f1() - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-6);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let c = BinaryConfusion::new();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = BinaryConfusion {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        let b = BinaryConfusion {
            tp: 10,
            fp: 20,
            tn: 30,
            fn_: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            BinaryConfusion {
                tp: 11,
                fp: 22,
                tn: 33,
                fn_: 44
            }
        );
    }

    proptest! {
        /// All four metrics stay in [0, 1] and F1 lies between min and max
        /// of precision and recall.
        #[test]
        fn prop_bounds(tp in 0usize..50, fp in 0usize..50, tn in 0usize..50, fn_ in 0usize..50) {
            let c = BinaryConfusion { tp, fp, tn, fn_ };
            for m in [c.accuracy(), c.precision(), c.recall(), c.f1()] {
                prop_assert!((0.0..=1.0).contains(&m));
            }
            let (p, r) = (c.precision(), c.recall());
            if p > 0.0 && r > 0.0 {
                prop_assert!(c.f1() >= p.min(r) - 1e-6);
                prop_assert!(c.f1() <= p.max(r) + 1e-6);
            }
        }
    }
}

//! Bitwise thread-count invariance of batched tagger training.
//!
//! The `batch_size > 1` path computes per-example gradients on worker
//! replicas and merges them through a fixed-shard tree (see `train.rs`
//! and DESIGN.md §9); the trained weights must therefore be identical
//! bits at every `SACCS_THREADS`. One test function on purpose:
//! `saccs_rt::set_threads` is grow-only and process-global, so the
//! width-1 run must happen before any widening.

use saccs_data::{Dataset, DatasetId};
use saccs_embed::{build_vocab, MiniBert, MiniBertConfig};
use saccs_tagger::{Tagger, TrainConfig};
use saccs_text::Domain;
use std::rc::Rc;

fn bert() -> Rc<MiniBert> {
    Rc::new(MiniBert::new(
        build_vocab(&[Domain::Restaurants]),
        MiniBertConfig {
            dim: 16,
            heads: 2,
            layers: 2,
            max_len: 48,
            seed: 2,
        },
    ))
}

fn train_states(data: &Dataset, batch_size: usize) -> Vec<saccs_nn::Matrix> {
    let cfg = TrainConfig {
        epochs: 2,
        batch_size,
        ..Default::default()
    };
    Tagger::train(bert(), &data.train, &cfg).model().state()
}

#[test]
fn batched_training_bitwise_identical_across_widths() {
    let data = Dataset::generate_scaled(DatasetId::S4, 0.08);

    let base = train_states(&data, 3);
    for width in [2, 8] {
        saccs_rt::set_threads(width);
        let wide = train_states(&data, 3);
        assert_eq!(base.len(), wide.len());
        for (k, (a, b)) in base.iter().zip(&wide).enumerate() {
            assert!(
                a.data() == b.data(),
                "param {k} diverged from serial at width {width}"
            );
        }
    }

    // And the batched path still learns: a short run must beat chance on
    // its own training data (full-strength training is covered by the
    // batch_size=1 unit tests).
    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 4,
        ..Default::default()
    };
    let tagger = Tagger::train(bert(), &data.train, &cfg);
    let f1 = tagger.evaluate(&data.train).f1();
    assert!(f1 > 0.3, "batched training failed to learn: F1={f1}");
}

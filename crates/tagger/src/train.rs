//! Training, including FGSM adversarial training (§4.3, Equations 6–9).
//!
//! The adversarial objective is
//!
//! ```text
//! min_θ [ α·ℓ(h_θ(x), y) + (1−α)·max_{‖δ‖∞<ε} ℓ(h_θ(x+δ), y) ]     (Eq. 6)
//! ```
//!
//! with the inner maximum approximated by the Fast Gradient Sign Method:
//! `δ* = ε·sign(∇_x ℓ(h_θ(x), y))` (Eq. 9), applied *to the embeddings*
//! (Miyato et al. \[38\]) — here, the frozen MiniBert feature matrix each
//! sentence presents to the tagger head. Each adversarial step therefore
//! runs three forwards: one to obtain `∇_x`, then the clean and perturbed
//! losses of Equation 8 combined with weight `α` and backpropagated
//! together.

use crate::model::{Architecture, TaggerModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use saccs_data::LabeledSentence;
use saccs_embed::MiniBert;
use saccs_eval::SpanF1;
use saccs_nn::optim::{zero_grads, Adam};
use saccs_nn::{Matrix, Var};
use saccs_text::iob::spans_from_tags;
use saccs_text::{IobTag, Span};
use std::rc::Rc;

/// FGSM settings; the paper fixes `α = 0.5` and sweeps
/// `ε ∈ {0.1, 0.2, 0.5, 1.0, 2.0}` (§6.1).
#[derive(Debug, Clone, Copy)]
pub struct Adversarial {
    pub epsilon: f32,
    pub alpha: f32,
}

/// Training configuration. Defaults follow §6.3: 15 epochs, α = 0.5.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub architecture: Architecture,
    pub adversarial: Option<Adversarial>,
    pub epochs: usize,
    pub lr: f32,
    pub hidden: usize,
    pub dropout: f32,
    pub seed: u64,
    /// Examples per optimizer step. `1` (the default) is the paper's
    /// per-example SGD, updated strictly in shuffle order. Above 1 the
    /// per-example gradients of a batch are computed data-parallel on the
    /// `saccs-rt` pool and combined with a fixed-shard tree reduction —
    /// the result is bitwise independent of the thread count (see
    /// `DESIGN.md` §9), though numerically distinct from `batch_size: 1`
    /// (one averaged step per batch instead of one step per example).
    pub batch_size: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            architecture: Architecture::BiLstmCrf,
            adversarial: None,
            epochs: 15,
            lr: 4e-3,
            hidden: 24,
            dropout: 0.1,
            seed: 0x7A66,
            batch_size: 1,
        }
    }
}

/// Fixed gradient-shard count for batched training. Per-example gradients
/// land in shard `j % GRAD_SHARDS` (j = position in the batch), each shard
/// sums its examples in ascending order, and shards merge through a fixed
/// binary tree — so the reduction order is a function of the batch alone,
/// never of how many threads happened to run it.
const GRAD_SHARDS: usize = 8;

/// Distinguishes concurrent/successive `Tagger::train` calls so a worker
/// thread never reuses a replica that belongs to a different training run.
static NEXT_TRAIN_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// splitmix64-style mixing: decorrelated per-example RNG streams that
/// depend only on `(seed, epoch, dataset index)` — not on thread count,
/// batch position, or shuffle history.
fn mix_seed(seed: u64, epoch: usize, index: usize) -> u64 {
    let mut z = seed
        ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run the clean or FGSM objective for one example and return
/// `(loss, ∂loss/∂params)` without touching the optimizer. The gradients
/// come back as plain matrices so callers can reduce them across models.
fn example_grads(
    model: &TaggerModel,
    f: &Matrix,
    y: &[IobTag],
    adversarial: Option<Adversarial>,
    rng: &mut StdRng,
) -> (f32, Vec<Matrix>) {
    let params = model.params();
    zero_grads(&params);
    let loss = match adversarial {
        None => {
            let loss = model.loss(&Var::leaf(f.clone()), y, true, rng);
            loss.backward();
            loss
        }
        Some(adv) => {
            let probe = Var::leaf(f.clone());
            model.loss(&probe, y, true, rng).backward();
            let delta = probe.grad().map(|g| {
                if g == 0.0 {
                    0.0
                } else {
                    adv.epsilon * g.signum()
                }
            });
            zero_grads(&params);
            let clean = model.loss(&Var::leaf(f.clone()), y, true, rng);
            let perturbed = model.loss(&Var::leaf(f.add(&delta)), y, true, rng);
            let combined = clean
                .scale(adv.alpha)
                .add(&perturbed.scale(1.0 - adv.alpha));
            combined.backward();
            combined
        }
    };
    let grads = params.iter().map(|p| p.grad().clone()).collect();
    (loss.scalar(), grads)
}

/// One shard's contribution to a batch: `(loss sum, examples, grad sums)`.
type ShardGrads = Option<(f32, usize, Vec<Matrix>)>;

/// Merge two shard contributions; the caller controls the merge order.
fn merge_shards(a: ShardGrads, b: ShardGrads) -> ShardGrads {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some((la, na, ga)), Some((lb, nb, gb))) => {
            let summed = ga.iter().zip(&gb).map(|(x, y)| x.add(y)).collect();
            Some((la + lb, na + nb, summed))
        }
    }
}

/// A trained tagger: frozen MiniBert features + trained head.
pub struct Tagger {
    bert: Rc<MiniBert>,
    model: TaggerModel,
}

impl Tagger {
    /// Train on labeled sentences. MiniBert features are precomputed once
    /// per sentence (the encoder is frozen), then the head trains for
    /// `config.epochs` passes in shuffled order.
    pub fn train(bert: Rc<MiniBert>, train_set: &[LabeledSentence], config: &TrainConfig) -> Self {
        assert!(!train_set.is_empty(), "empty training set");
        let _train = saccs_obs::span!("tagger.train");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let model = TaggerModel::new(
            config.architecture,
            bert.dim(),
            config.hidden,
            config.dropout,
            &mut rng,
        );
        // Batch the (frozen) feature extraction: deduped, memoized and
        // fanned out across the saccs-rt pool by the encoder itself.
        let token_seqs: Vec<Vec<String>> = train_set.iter().map(|s| s.tokens.clone()).collect();
        let features: Vec<Matrix> = bert.features_batch(&token_seqs);
        let params = model.params();
        let mut opt = Adam::new(config.lr).with_clip(1.0);
        let mut order: Vec<usize> = (0..train_set.len()).collect();

        if config.batch_size > 1 {
            Self::train_batched(
                &model, &features, train_set, config, &mut rng, &mut opt, order,
            );
            return Tagger { bert, model };
        }

        for _ in 0..config.epochs {
            let _epoch = saccs_obs::span!("tagger.epoch");
            // Loss/norm bookkeeping reads values out of the graph, which
            // costs extra traversals — only do it when someone is looking.
            let observing = saccs_obs::enabled();
            let mut epoch_loss = 0.0f64;
            let mut seen = 0usize;
            order.shuffle(&mut rng);
            for &i in &order {
                if saccs_fault::failpoint!("tagger.train_step").is_err() {
                    // An injected step failure skips this example (the
                    // weak-supervision stance: training tolerates lost
                    // steps, it does not abort the run).
                    saccs_obs::counter!("fault.train.skipped_steps").inc();
                    continue;
                }
                let f = &features[i];
                let y = &train_set[i].tags;
                if f.rows() != y.len() {
                    // Truncated by max_len; skip rather than mislabel.
                    continue;
                }
                zero_grads(&params);
                let step_loss = match config.adversarial {
                    None => {
                        let loss = model.loss(&Var::leaf(f.clone()), y, true, &mut rng);
                        loss.backward();
                        loss
                    }
                    Some(adv) => {
                        // Pass 1: input gradient for δ* (Eq. 9).
                        let probe = Var::leaf(f.clone());
                        model.loss(&probe, y, true, &mut rng).backward();
                        // sign(0) = 0: untouched coordinates get no
                        // perturbation (f32::signum maps ±0 to ±1).
                        let delta = probe.grad().map(|g| {
                            if g == 0.0 {
                                0.0
                            } else {
                                adv.epsilon * g.signum()
                            }
                        });
                        if observing {
                            saccs_obs::registry()
                                .gauge("tagger.fgsm.delta_norm")
                                .set(f64::from(delta.norm()));
                        }
                        // Discard the parameter gradients of the probe pass.
                        zero_grads(&params);
                        // Pass 2+3: combined objective (Eq. 8).
                        let clean = model.loss(&Var::leaf(f.clone()), y, true, &mut rng);
                        let perturbed = model.loss(&Var::leaf(f.add(&delta)), y, true, &mut rng);
                        let combined = clean
                            .scale(adv.alpha)
                            .add(&perturbed.scale(1.0 - adv.alpha));
                        combined.backward();
                        combined
                    }
                };
                if observing {
                    epoch_loss += f64::from(step_loss.scalar());
                    seen += 1;
                    let grad_sq: f32 = params
                        .iter()
                        .map(|p| {
                            let n = p.grad().norm();
                            n * n
                        })
                        .sum();
                    saccs_obs::registry()
                        .gauge("tagger.grad_norm")
                        .set(f64::from(grad_sq.sqrt()));
                }
                opt.step(&params);
            }
            saccs_obs::counter!("tagger.epochs").inc();
            if observing && seen > 0 {
                saccs_obs::registry()
                    .gauge("tagger.epoch_loss")
                    .set(epoch_loss / seen as f64);
            }
        }
        Tagger { bert, model }
    }

    /// Batched training (`config.batch_size > 1`): per-example gradients
    /// of each batch computed data-parallel on per-worker model replicas,
    /// combined via the fixed-shard tree reduction, one averaged Adam
    /// step per batch. Bitwise independent of `SACCS_THREADS`.
    fn train_batched(
        model: &TaggerModel,
        features: &[Matrix],
        train_set: &[LabeledSentence],
        config: &TrainConfig,
        rng: &mut StdRng,
        opt: &mut Adam,
        mut order: Vec<usize>,
    ) {
        thread_local! {
            // (train call id, step loaded, replica). The structure is
            // rebuilt per training run; the weights reload once per step.
            static REPLICA: std::cell::RefCell<Option<(u64, u64, TaggerModel)>> =
                const { std::cell::RefCell::new(None) };
        }
        let call_id = NEXT_TRAIN_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let params = model.params();
        let dim = match features.iter().find(|f| f.cols() > 0) {
            Some(f) => f.cols(),
            None => return,
        };
        let mut step = 0u64;
        for epoch in 0..config.epochs {
            let _epoch = saccs_obs::span!("tagger.epoch");
            let observing = saccs_obs::enabled();
            let mut epoch_loss = 0.0f64;
            let mut seen = 0usize;
            order.shuffle(rng);
            for batch in order.chunks(config.batch_size) {
                if saccs_fault::failpoint!("tagger.train_step").is_err() {
                    // Batched mode: the whole batch is one step; an
                    // injected failure drops it and moves on.
                    saccs_obs::counter!("fault.train.skipped_steps").inc();
                    continue;
                }
                step += 1;
                let snapshot = model.state();
                let shards = saccs_rt::parallel_map(GRAD_SHARDS, 1, |s| -> ShardGrads {
                    REPLICA.with(|slot| {
                        let mut slot = slot.borrow_mut();
                        match &mut *slot {
                            Some((cid, loaded, m)) if *cid == call_id => {
                                if *loaded != step {
                                    m.load_state(&snapshot);
                                    *loaded = step;
                                }
                            }
                            _ => {
                                // Seed is irrelevant: weights are replaced
                                // by the snapshot immediately.
                                let mut init = StdRng::seed_from_u64(0);
                                let m = TaggerModel::new(
                                    config.architecture,
                                    dim,
                                    config.hidden,
                                    config.dropout,
                                    &mut init,
                                );
                                m.load_state(&snapshot);
                                *slot = Some((call_id, step, m));
                            }
                        }
                        let replica = match &*slot {
                            Some((_, _, m)) => m,
                            None => unreachable!("replica slot filled above"),
                        };
                        let mut acc: ShardGrads = None;
                        for (j, &i) in batch.iter().enumerate() {
                            if j % GRAD_SHARDS != s {
                                continue;
                            }
                            let f = &features[i];
                            let y = &train_set[i].tags;
                            if f.rows() != y.len() {
                                continue;
                            }
                            let mut ex_rng = StdRng::seed_from_u64(mix_seed(config.seed, epoch, i));
                            let (loss, grads) =
                                example_grads(replica, f, y, config.adversarial, &mut ex_rng);
                            acc = merge_shards(acc, Some((loss, 1, grads)));
                        }
                        acc
                    })
                });
                // Fixed binary tree over the shard index: 8 → 4 → 2 → 1.
                let mut layer = shards;
                while layer.len() > 1 {
                    layer = layer
                        .chunks_mut(2)
                        .map(|pair| {
                            let a = pair[0].take();
                            let b = pair.get_mut(1).and_then(|x| x.take());
                            merge_shards(a, b)
                        })
                        .collect();
                }
                let Some(Some((loss_sum, n, grad_sum))) = layer.pop() else {
                    continue;
                };
                zero_grads(&params);
                let inv = 1.0 / n as f32;
                for (p, g) in params.iter().zip(&grad_sum) {
                    p.accumulate_grad(&g.scale(inv));
                }
                opt.step(&params);
                if observing {
                    epoch_loss += f64::from(loss_sum);
                    seen += n;
                    let grad_sq: f32 = grad_sum
                        .iter()
                        .map(|g| {
                            let norm = g.norm() * inv;
                            norm * norm
                        })
                        .sum();
                    saccs_obs::registry()
                        .gauge("tagger.grad_norm")
                        .set(f64::from(grad_sq.sqrt()));
                }
            }
            saccs_obs::counter!("tagger.epochs").inc();
            if observing && seen > 0 {
                saccs_obs::registry()
                    .gauge("tagger.epoch_loss")
                    .set(epoch_loss / seen as f64);
            }
        }
    }

    /// Assemble a tagger from an encoder and an already-built head —
    /// the serving-replica path: construct a same-shaped [`TaggerModel`]
    /// and `load_state` trained weights into it instead of training.
    pub fn from_parts(bert: Rc<MiniBert>, model: TaggerModel) -> Self {
        Tagger { bert, model }
    }

    pub fn bert(&self) -> &MiniBert {
        &self.bert
    }

    pub fn model(&self) -> &TaggerModel {
        &self.model
    }

    /// Tag a token sequence.
    pub fn tag(&self, tokens: &[String]) -> Vec<IobTag> {
        if tokens.is_empty() {
            return Vec::new();
        }
        self.model.predict(&self.bert.features(tokens))
    }

    /// Extract aspect/opinion spans from a token sequence.
    pub fn extract_spans(&self, tokens: &[String]) -> Vec<Span> {
        spans_from_tags(&self.tag(tokens))
    }

    /// Exact-match span F1 on a labeled test set (Table 4's metric).
    pub fn evaluate(&self, test_set: &[LabeledSentence]) -> SpanF1 {
        let mut f1 = SpanF1::new();
        for s in test_set {
            let predicted = self.extract_spans(&s.tokens);
            let gold = spans_from_tags(&s.tags);
            f1.observe(&predicted, &gold);
        }
        f1
    }

    /// Mean loss on a set without updating weights; used by the
    /// Figure-4 ablation to compare clean vs. perturbed-loss curves.
    pub fn mean_loss(&self, set: &[LabeledSentence], perturb_epsilon: Option<f32>) -> f32 {
        let mut rng = StdRng::seed_from_u64(0);
        let mut total = 0.0;
        let mut n = 0usize;
        for s in set {
            let f = self.bert.features(&s.tokens);
            if f.rows() != s.tags.len() {
                continue;
            }
            let loss = match perturb_epsilon {
                None => self.model.loss(&Var::leaf(f), &s.tags, false, &mut rng),
                Some(eps) => {
                    let probe = Var::leaf(f.clone());
                    self.model.loss(&probe, &s.tags, false, &mut rng).backward();
                    let delta = probe.grad().map(|g| eps * g.signum());
                    self.model
                        .loss(&Var::leaf(f.add(&delta)), &s.tags, false, &mut rng)
                }
            };
            total += loss.scalar();
            n += 1;
        }
        total / n.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_data::{Dataset, DatasetId};
    use saccs_embed::{build_vocab, general_corpus, train_mlm, MiniBertConfig, MlmConfig};
    use saccs_text::Domain;

    fn small_bert() -> Rc<MiniBert> {
        let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
        let bert = MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 48,
                seed: 2,
            },
        );
        train_mlm(
            &bert,
            &general_corpus(150, 4),
            &MlmConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        Rc::new(bert)
    }

    fn tiny_dataset() -> Dataset {
        Dataset::generate_scaled(DatasetId::S4, 0.12) // 96 train / 13 test
    }

    #[test]
    fn training_learns_to_tag() {
        let bert = small_bert();
        let data = tiny_dataset();
        let cfg = TrainConfig {
            epochs: 6,
            ..Default::default()
        };
        let tagger = Tagger::train(bert, &data.train, &cfg);
        let train_f1 = tagger.evaluate(&data.train);
        assert!(
            train_f1.f1() > 0.6,
            "tagger failed to fit training data: F1={}",
            train_f1.f1()
        );
        let test_f1 = tagger.evaluate(&data.test);
        assert!(
            test_f1.f1() > 0.3,
            "no generalization at all: F1={}",
            test_f1.f1()
        );
    }

    #[test]
    fn adversarial_training_runs_and_tags_validly() {
        let bert = small_bert();
        let data = tiny_dataset();
        let cfg = TrainConfig {
            epochs: 3,
            adversarial: Some(Adversarial {
                epsilon: 0.2,
                alpha: 0.5,
            }),
            ..Default::default()
        };
        let tagger = Tagger::train(bert, &data.train, &cfg);
        for s in data.test.iter().take(5) {
            let tags = tagger.tag(&s.tokens);
            assert_eq!(
                tags.len(),
                s.tokens.len().min(tagger.bert().config().max_len - 1)
            );
            assert!(saccs_text::iob::is_valid_sequence(&tags));
        }
    }

    #[test]
    fn adversarial_training_improves_perturbed_loss() {
        // The §4.3 claim in miniature: under FGSM perturbation at eval
        // time, the adversarially-trained model suffers less than the
        // clean-trained one.
        let bert = small_bert();
        let data = tiny_dataset();
        let eps = 0.5;
        let clean = Tagger::train(
            bert.clone(),
            &data.train,
            &TrainConfig {
                epochs: 4,
                seed: 11,
                ..Default::default()
            },
        );
        let robust = Tagger::train(
            bert,
            &data.train,
            &TrainConfig {
                epochs: 4,
                seed: 11,
                adversarial: Some(Adversarial {
                    epsilon: eps,
                    alpha: 0.5,
                }),
                ..Default::default()
            },
        );
        let clean_gap = clean.mean_loss(&data.test, Some(eps)) - clean.mean_loss(&data.test, None);
        let robust_gap =
            robust.mean_loss(&data.test, Some(eps)) - robust.mean_loss(&data.test, None);
        assert!(
            robust_gap < clean_gap,
            "adversarial training did not shrink the robustness gap: clean={clean_gap} robust={robust_gap}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let bert = small_bert();
        let data = tiny_dataset();
        let cfg = TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        let a = Tagger::train(bert.clone(), &data.train, &cfg);
        let b = Tagger::train(bert, &data.train, &cfg);
        let s = &data.test[0];
        assert_eq!(a.tag(&s.tokens), b.tag(&s.tokens));
    }

    #[test]
    fn token_softmax_baseline_trains() {
        let bert = small_bert();
        let data = tiny_dataset();
        let cfg = TrainConfig {
            architecture: Architecture::TokenSoftmax,
            epochs: 15,
            lr: 2e-3,
            ..Default::default()
        };
        let tagger = Tagger::train(bert, &data.train, &cfg);
        let f1 = tagger.evaluate(&data.train).f1();
        // The per-token baseline is architecture-limited (no sequence
        // structure) and this test's MiniBert is deliberately tiny; the
        // full-size comparison lives in the table4 bench.
        assert!(f1 > 0.2, "softmax baseline train F1 = {f1}");
    }
}

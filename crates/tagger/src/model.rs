//! Tagger architectures.
//!
//! Two heads over frozen MiniBert features:
//!
//! * [`Architecture::TokenSoftmax`] — the OpineDB baseline \[31\]: "BERT
//!   sentence embeddings with a standard classifier that classifies each
//!   word … into either Aspect, Opinion or Other" (per-token softmax, no
//!   sequence structure);
//! * [`Architecture::BiLstmCrf`] — SACCS's tagger (Figure 3): BERT →
//!   BiLSTM → linear-chain CRF.

use crate::crf::Crf;
use rand::rngs::StdRng;
use saccs_nn::layers::{BiLstm, Dropout, Layer, Linear};
use saccs_nn::{Matrix, Var};
use saccs_text::IobTag;

/// Which head sits on the embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Architecture {
    /// OpineDB-style independent per-token classification.
    TokenSoftmax,
    /// The paper's BiLSTM + CRF stack.
    BiLstmCrf,
}

/// A tagger head; input is a `T×input_dim` feature matrix (MiniBert
/// output), output a `T`-length IOB tag sequence.
pub struct TaggerModel {
    arch: Architecture,
    bilstm: Option<BiLstm>,
    /// Hidden layer of the OpineDB-style per-token MLP ("a standard
    /// classifier"; the encoder is frozen here, so the classifier gets one
    /// nonlinearity of its own).
    mlp_hidden: Option<Linear>,
    proj: Linear,
    crf: Option<Crf>,
    dropout: Dropout,
    /// Construction parameters, retained so a same-shaped replica can be
    /// rebuilt from a serialized state (serving-time model replication).
    hidden: usize,
    dropout_p: f32,
}

impl TaggerModel {
    pub fn new(
        arch: Architecture,
        input_dim: usize,
        hidden: usize,
        dropout_p: f32,
        rng: &mut StdRng,
    ) -> Self {
        match arch {
            Architecture::TokenSoftmax => TaggerModel {
                arch,
                bilstm: None,
                mlp_hidden: Some(Linear::new(input_dim, 2 * hidden, rng)),
                proj: Linear::new(2 * hidden, IobTag::COUNT, rng),
                crf: None,
                dropout: Dropout::new(dropout_p),
                hidden,
                dropout_p,
            },
            Architecture::BiLstmCrf => TaggerModel {
                arch,
                bilstm: Some(BiLstm::new(input_dim, hidden, rng)),
                mlp_hidden: None,
                proj: Linear::new(2 * hidden, IobTag::COUNT, rng),
                crf: Some(Crf::new(rng)),
                dropout: Dropout::new(dropout_p),
                hidden,
                dropout_p,
            },
        }
    }

    pub fn architecture(&self) -> Architecture {
        self.arch
    }

    /// Hidden width this head was constructed with.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Dropout probability this head was constructed with.
    pub fn dropout_p(&self) -> f32 {
        self.dropout_p
    }

    /// Per-token emission scores (`T×5`).
    pub fn emissions(&self, features: &Var, train: bool, rng: &mut StdRng) -> Var {
        let x = self.dropout.forward(features, train, rng);
        let x = match (&self.bilstm, &self.mlp_hidden) {
            (Some(bi), _) => bi.forward(&x),
            (None, Some(h)) => h.forward(&x).relu(),
            (None, None) => x,
        };
        self.proj.forward(&x)
    }

    /// Training loss for one sentence: CRF NLL for the full model,
    /// cross-entropy for the OpineDB baseline.
    pub fn loss(&self, features: &Var, targets: &[IobTag], train: bool, rng: &mut StdRng) -> Var {
        let em = self.emissions(features, train, rng);
        match &self.crf {
            Some(crf) => crf.nll(&em, targets),
            None => {
                let idx: Vec<usize> = targets.iter().map(|t| t.index()).collect();
                em.cross_entropy(&idx)
            }
        }
    }

    /// Decode a tag sequence for a frozen feature matrix.
    pub fn predict(&self, features: &Matrix) -> Vec<IobTag> {
        if features.rows() == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(0);
        let em = self
            .emissions(&Var::leaf(features.clone()), false, &mut rng)
            .value_clone();
        match &self.crf {
            Some(crf) => crf.viterbi(&em),
            None => {
                // Independent argmax; downstream span decoding applies the
                // lenient IOB repair, matching how [31] consumes it.
                (0..em.rows())
                    .map(|t| {
                        let row = em.row(t);
                        let best = (0..IobTag::COUNT)
                            .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                            // lint:allow(no-unwrap-in-lib): IobTag::COUNT >= 1
                            .expect("at least one IOB label");
                        IobTag::from_index(best)
                    })
                    .collect()
            }
        }
    }

    /// Snapshot all parameter values (for persistence via
    /// `saccs_nn::encode_state`).
    pub fn state(&self) -> Vec<saccs_nn::Matrix> {
        self.params().iter().map(|p| p.value_clone()).collect()
    }

    /// Restore parameters from a [`TaggerModel::state`] snapshot; the
    /// model must have the same architecture and dimensions.
    pub fn load_state(&self, state: &[saccs_nn::Matrix]) {
        let params = self.params();
        assert_eq!(params.len(), state.len(), "state tensor count mismatch");
        for (p, m) in params.iter().zip(state) {
            p.set_value(m.clone());
        }
    }

    pub fn params(&self) -> Vec<Var> {
        let mut p = Vec::new();
        if let Some(bi) = &self.bilstm {
            p.extend(bi.params());
        }
        if let Some(h) = &self.mlp_hidden {
            p.extend(h.params());
        }
        p.extend(self.proj.params());
        if let Some(crf) = &self.crf {
            p.extend(crf.params());
        }
        p
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_text::iob::is_valid_sequence;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn both_architectures_predict_full_length() {
        let mut r = rng();
        for arch in [Architecture::TokenSoftmax, Architecture::BiLstmCrf] {
            let m = TaggerModel::new(arch, 8, 6, 0.1, &mut r);
            let f = Matrix::uniform(7, 8, 1.0, &mut r);
            let tags = m.predict(&f);
            assert_eq!(tags.len(), 7);
            if arch == Architecture::BiLstmCrf {
                assert!(is_valid_sequence(&tags), "CRF must emit valid IOB");
            }
        }
    }

    #[test]
    fn loss_is_scalar_and_differentiable_to_input() {
        let mut r = rng();
        for arch in [Architecture::TokenSoftmax, Architecture::BiLstmCrf] {
            let m = TaggerModel::new(arch, 8, 6, 0.0, &mut r);
            let leaf = Var::leaf(Matrix::uniform(4, 8, 1.0, &mut r));
            let targets = vec![IobTag::O, IobTag::BAs, IobTag::O, IobTag::BOp];
            let loss = m.loss(&leaf, &targets, true, &mut r);
            assert_eq!(loss.shape(), (1, 1));
            loss.backward();
            assert!(
                leaf.grad().max_abs() > 0.0,
                "{arch:?}: no input gradient — FGSM would be impossible"
            );
            for p in m.params() {
                assert!(p.grad().max_abs() >= 0.0);
            }
        }
    }

    #[test]
    fn overfits_one_sentence() {
        let mut r = rng();
        let m = TaggerModel::new(Architecture::BiLstmCrf, 6, 5, 0.0, &mut r);
        let f = Matrix::uniform(5, 6, 1.0, &mut r);
        let targets = vec![IobTag::O, IobTag::BAs, IobTag::IAs, IobTag::O, IobTag::BOp];
        let params = m.params();
        let mut opt = saccs_nn::Adam::new(0.02);
        for _ in 0..250 {
            saccs_nn::zero_grads(&params);
            m.loss(&Var::leaf(f.clone()), &targets, true, &mut r)
                .backward();
            opt.step(&params);
        }
        assert_eq!(m.predict(&f), targets);
    }

    #[test]
    fn state_roundtrip_restores_predictions() {
        let mut r = rng();
        let m = TaggerModel::new(Architecture::BiLstmCrf, 6, 5, 0.0, &mut r);
        let f = Matrix::uniform(4, 6, 1.0, &mut r);
        let before = m.predict(&f);
        let bytes = saccs_nn::encode_state(&m.state());
        for p in m.params() {
            p.update_value(|v| *v = v.scale(-1.0));
        }
        m.load_state(&saccs_nn::decode_state(&bytes).unwrap());
        assert_eq!(m.predict(&f), before);
    }

    #[test]
    fn empty_input_predicts_empty() {
        let mut r = rng();
        let m = TaggerModel::new(Architecture::BiLstmCrf, 4, 3, 0.0, &mut r);
        assert!(m.predict(&Matrix::zeros(0, 4)).is_empty());
    }
}

//! Linear-chain Conditional Random Field (§4.1, Equation 4).
//!
//! The CRF layer sits on top of the BiLSTM's per-token emission scores and
//! models label-sequence dependencies: "I-OP cannot follow I-AS … I-AS must
//! either follow B-AS or I-AS". Structural constraints are enforced with a
//! fixed `-1e4` additive mask on illegal transitions/starts, applied in the
//! loss, in Viterbi and in beam decoding, so illegal sequences get
//! effectively zero probability yet the learned transition weights keep
//! clean gradients.
//!
//! The loss is the exact negative log-likelihood
//! `NLL(y|z) = log Z(z) − score(y, z)` with hand-derived gradients computed
//! by forward–backward:
//!
//! * `∂NLL/∂emission[t,j] = P(y_t = j | z) − 1{y_t = j}`
//! * `∂NLL/∂transition[i,j] = Σ_t P(y_t = i, y_{t+1} = j | z) − #(i→j in y)`
//! * `∂NLL/∂start[j] = P(y_0 = j | z) − 1{y_0 = j}`
//!
//! plugged into the autograd graph through [`Var::custom`], so the BiLSTM
//! below trains end to end.

use rand::rngs::StdRng;
use saccs_nn::{log_sum_exp, Matrix, Var};
use saccs_text::IobTag;

/// Additive penalty for structurally invalid transitions.
const FORBIDDEN: f32 = -1.0e4;

/// Linear-chain CRF over the 5 IOB labels.
pub struct Crf {
    /// Learned transition scores, `L×L` (`[from, to]`).
    pub transitions: Var,
    /// Learned start scores, `1×L`.
    pub start: Var,
    /// Constant constraint mask added to transitions (0 or `FORBIDDEN`).
    mask: Matrix,
    /// Constant constraint mask added to start scores.
    start_mask: Matrix,
}

impl Crf {
    pub fn new(rng: &mut StdRng) -> Self {
        let l = IobTag::COUNT;
        let mut mask = Matrix::zeros(l, l);
        for from in IobTag::ALL {
            for to in IobTag::ALL {
                if !from.may_precede(to) {
                    mask.set(from.index(), to.index(), FORBIDDEN);
                }
            }
        }
        let mut start_mask = Matrix::zeros(1, l);
        for t in IobTag::ALL {
            if !t.may_start() {
                start_mask.set(0, t.index(), FORBIDDEN);
            }
        }
        Crf {
            transitions: Var::leaf(Matrix::uniform(l, l, 0.1, rng)),
            start: Var::leaf(Matrix::uniform(1, l, 0.1, rng)),
            mask,
            start_mask,
        }
    }

    /// Trainable parameters.
    pub fn params(&self) -> Vec<Var> {
        vec![self.transitions.clone(), self.start.clone()]
    }

    fn masked_transitions(&self) -> Matrix {
        self.transitions.value().add(&self.mask)
    }

    fn masked_start(&self) -> Matrix {
        self.start.value().add(&self.start_mask)
    }

    /// Exact sequence NLL as a differentiable scalar.
    #[allow(clippy::needless_range_loop)] // lockstep α/β/emission indexing
    pub fn nll(&self, emissions: &Var, targets: &[IobTag]) -> Var {
        let em = emissions.value_clone();
        let (t_len, l) = em.shape();
        assert_eq!(l, IobTag::COUNT);
        assert_eq!(t_len, targets.len(), "target length mismatch");
        assert!(t_len > 0);
        let trans = self.masked_transitions();
        let start = self.masked_start();
        let y: Vec<usize> = targets.iter().map(|t| t.index()).collect();

        // Forward recursion (log alpha).
        let mut alpha = Matrix::zeros(t_len, l);
        for j in 0..l {
            alpha.set(0, j, start.get(0, j) + em.get(0, j));
        }
        let mut scratch = vec![0.0f32; l];
        for t in 1..t_len {
            for j in 0..l {
                for (i, s) in scratch.iter_mut().enumerate() {
                    *s = alpha.get(t - 1, i) + trans.get(i, j);
                }
                alpha.set(t, j, log_sum_exp(&scratch) + em.get(t, j));
            }
        }
        let log_z = log_sum_exp(alpha.row(t_len - 1));

        // Gold path score.
        let mut gold = start.get(0, y[0]) + em.get(0, y[0]);
        for t in 1..t_len {
            gold += trans.get(y[t - 1], y[t]) + em.get(t, y[t]);
        }
        let nll_value = log_z - gold;

        // Backward recursion (log beta) for the gradient marginals.
        let mut beta = Matrix::zeros(t_len, l);
        for t in (0..t_len - 1).rev() {
            for i in 0..l {
                for (j, s) in scratch.iter_mut().enumerate() {
                    *s = trans.get(i, j) + em.get(t + 1, j) + beta.get(t + 1, j);
                }
                beta.set(t, i, log_sum_exp(&scratch));
            }
        }

        // Unary marginals − indicators → emission/start grads.
        let mut d_em = Matrix::zeros(t_len, l);
        for t in 0..t_len {
            for j in 0..l {
                let p = (alpha.get(t, j) + beta.get(t, j) - log_z).exp();
                d_em.set(t, j, p);
            }
            d_em.set(t, y[t], d_em.get(t, y[t]) - 1.0);
        }
        let mut d_start = Matrix::zeros(1, l);
        for j in 0..l {
            let p = (alpha.get(0, j) + beta.get(0, j) - log_z).exp();
            d_start.set(0, j, p - f32::from(u8::from(j == y[0])));
        }
        // Pairwise marginals − counts → transition grads.
        let mut d_trans = Matrix::zeros(l, l);
        for t in 0..t_len.saturating_sub(1) {
            for i in 0..l {
                for j in 0..l {
                    let p =
                        (alpha.get(t, i) + trans.get(i, j) + em.get(t + 1, j) + beta.get(t + 1, j)
                            - log_z)
                            .exp();
                    d_trans.set(i, j, d_trans.get(i, j) + p);
                }
            }
            d_trans.set(y[t], y[t + 1], d_trans.get(y[t], y[t + 1]) - 1.0);
        }

        Var::custom(
            Matrix::from_vec(1, 1, vec![nll_value]),
            vec![
                emissions.clone(),
                self.transitions.clone(),
                self.start.clone(),
            ],
            move |g, parents| {
                let s = g.get(0, 0);
                parents[0].accumulate_grad(&d_em.scale(s));
                parents[1].accumulate_grad(&d_trans.scale(s));
                parents[2].accumulate_grad(&d_start.scale(s));
            },
        )
    }

    /// Exact Viterbi decoding (Equation 5) under the structural mask.
    #[allow(clippy::needless_range_loop)] // lockstep indexing of score/back
    pub fn viterbi(&self, emissions: &Matrix) -> Vec<IobTag> {
        let (t_len, l) = emissions.shape();
        assert_eq!(l, IobTag::COUNT);
        if t_len == 0 {
            return Vec::new();
        }
        let trans = self.masked_transitions();
        let start = self.masked_start();
        let mut score = Matrix::zeros(t_len, l);
        let mut back = vec![vec![0usize; l]; t_len];
        for j in 0..l {
            score.set(0, j, start.get(0, j) + emissions.get(0, j));
        }
        for t in 1..t_len {
            for j in 0..l {
                let mut best = f32::NEG_INFINITY;
                let mut arg = 0usize;
                for i in 0..l {
                    let v = score.get(t - 1, i) + trans.get(i, j);
                    if v > best {
                        best = v;
                        arg = i;
                    }
                }
                score.set(t, j, best + emissions.get(t, j));
                back[t][j] = arg;
            }
        }
        let mut cur = (0..l)
            .max_by(|&a, &b| score.get(t_len - 1, a).total_cmp(&score.get(t_len - 1, b)))
            // lint:allow(no-unwrap-in-lib): l = IobTag::COUNT >= 1 always
            .expect("at least one label state");
        let mut path = vec![cur; t_len];
        for t in (1..t_len).rev() {
            cur = back[t][cur];
            path[t - 1] = cur;
        }
        path.into_iter().map(IobTag::from_index).collect()
    }

    /// Beam-search decoding with width `beam` (§4.1 mentions "the Viterbi
    /// algorithm along with beam search for efficient decoding"). A global
    /// top-k beam is approximate in general — exactness requires keeping
    /// the best hypothesis *per end state*, which a width of
    /// `L² = 25` guarantees for this 5-label chain; narrower beams may
    /// miss the optimum on adversarial potentials.
    pub fn beam_decode(&self, emissions: &Matrix, beam: usize) -> Vec<IobTag> {
        let (t_len, l) = emissions.shape();
        assert!(beam >= 1);
        if t_len == 0 {
            return Vec::new();
        }
        let trans = self.masked_transitions();
        let start = self.masked_start();
        // (score, path)
        let mut hyps: Vec<(f32, Vec<usize>)> = (0..l)
            .map(|j| (start.get(0, j) + emissions.get(0, j), vec![j]))
            .collect();
        hyps.sort_by(|a, b| b.0.total_cmp(&a.0));
        hyps.truncate(beam);
        for t in 1..t_len {
            let mut next: Vec<(f32, Vec<usize>)> = Vec::with_capacity(hyps.len() * l);
            for (s, path) in &hyps {
                // lint:allow(no-unwrap-in-lib): every hypothesis starts non-empty
                let last = *path.last().expect("non-empty hypothesis path");
                for j in 0..l {
                    let v = s + trans.get(last, j) + emissions.get(t, j);
                    let mut p = path.clone();
                    p.push(j);
                    next.push((v, p));
                }
            }
            next.sort_by(|a, b| b.0.total_cmp(&a.0));
            next.truncate(beam);
            hyps = next;
        }
        hyps[0].1.iter().map(|&i| IobTag::from_index(i)).collect()
    }

    /// Total log-partition of an emission matrix (exposed for tests).
    pub fn log_partition(&self, emissions: &Matrix) -> f32 {
        let (t_len, l) = emissions.shape();
        if t_len == 0 {
            // The empty sequence has exactly one (empty) labeling.
            return 0.0;
        }
        let trans = self.masked_transitions();
        let start = self.masked_start();
        let mut alpha: Vec<f32> = (0..l)
            .map(|j| start.get(0, j) + emissions.get(0, j))
            .collect();
        let mut scratch = vec![0.0f32; l];
        for t in 1..t_len {
            let prev = alpha.clone();
            for (j, a) in alpha.iter_mut().enumerate() {
                for (i, s) in scratch.iter_mut().enumerate() {
                    *s = prev[i] + trans.get(i, j);
                }
                *a = log_sum_exp(&scratch) + emissions.get(t, j);
            }
        }
        log_sum_exp(&alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use saccs_text::iob::is_valid_sequence;

    fn crf(seed: u64) -> Crf {
        Crf::new(&mut StdRng::seed_from_u64(seed))
    }

    /// Brute-force log-partition and best path over all valid sequences.
    fn brute_force(crf: &Crf, em: &Matrix) -> (f32, Vec<usize>) {
        let (t_len, l) = em.shape();
        let trans = crf.transitions.value().add(&{
            let mut m = Matrix::zeros(l, l);
            for f in IobTag::ALL {
                for t in IobTag::ALL {
                    if !f.may_precede(t) {
                        m.set(f.index(), t.index(), FORBIDDEN);
                    }
                }
            }
            m
        });
        let start = crf.start.value_clone();
        let mut scores = Vec::new();
        let mut best = (f32::NEG_INFINITY, Vec::new());
        let total = l.pow(t_len as u32);
        for mut code in 0..total {
            let mut seq = Vec::with_capacity(t_len);
            for _ in 0..t_len {
                seq.push(code % l);
                code /= l;
            }
            let first = IobTag::from_index(seq[0]);
            let mut s = start.get(0, seq[0])
                + if first.may_start() { 0.0 } else { FORBIDDEN }
                + em.get(0, seq[0]);
            for t in 1..t_len {
                s += trans.get(seq[t - 1], seq[t]) + em.get(t, seq[t]);
            }
            if s > best.0 {
                best = (s, seq.clone());
            }
            scores.push(s);
        }
        (log_sum_exp(&scores), best.1)
    }

    #[test]
    fn log_partition_matches_brute_force() {
        let c = crf(1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let em = Matrix::uniform(4, IobTag::COUNT, 2.0, &mut rng);
            let fast = c.log_partition(&em);
            let (brute, _) = brute_force(&c, &em);
            assert!((fast - brute).abs() < 1e-3, "fast={fast} brute={brute}");
        }
    }

    #[test]
    fn viterbi_matches_brute_force() {
        let c = crf(3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let em = Matrix::uniform(4, IobTag::COUNT, 3.0, &mut rng);
            let fast: Vec<usize> = c.viterbi(&em).iter().map(|t| t.index()).collect();
            let (_, brute) = brute_force(&c, &em);
            assert_eq!(fast, brute);
        }
    }

    #[test]
    fn decoded_sequences_are_always_structurally_valid() {
        let c = crf(5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let em = Matrix::uniform(8, IobTag::COUNT, 5.0, &mut rng);
            assert!(is_valid_sequence(&c.viterbi(&em)));
            assert!(is_valid_sequence(&c.beam_decode(&em, 3)));
        }
    }

    #[test]
    fn wide_beam_equals_viterbi() {
        let c = crf(7);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let em = Matrix::uniform(6, IobTag::COUNT, 3.0, &mut rng);
            assert_eq!(
                c.viterbi(&em),
                c.beam_decode(&em, IobTag::COUNT * IobTag::COUNT)
            );
        }
    }

    #[test]
    fn nll_gradients_match_finite_differences() {
        let c = crf(9);
        let mut rng = StdRng::seed_from_u64(10);
        let em0 = Matrix::uniform(3, IobTag::COUNT, 1.0, &mut rng);
        let targets = [IobTag::O, IobTag::BAs, IobTag::O];
        let emissions = Var::leaf(em0.clone());
        let loss = c.nll(&emissions, &targets);
        loss.backward();
        let analytic = emissions.grad().clone();
        let eps = 1e-3;
        for r in 0..3 {
            for col in 0..IobTag::COUNT {
                let mut p = em0.clone();
                p.set(r, col, em0.get(r, col) + eps);
                let lp = c.nll(&Var::leaf(p), &targets).scalar();
                let mut m = em0.clone();
                m.set(r, col, em0.get(r, col) - eps);
                let lm = c.nll(&Var::leaf(m), &targets).scalar();
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic.get(r, col);
                assert!(
                    (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "emission grad mismatch at ({r},{col}): {a} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn transition_gradients_match_finite_differences() {
        let c = crf(11);
        let mut rng = StdRng::seed_from_u64(12);
        let em = Matrix::uniform(4, IobTag::COUNT, 1.0, &mut rng);
        let targets = [IobTag::BAs, IobTag::IAs, IobTag::O, IobTag::BOp];
        let emissions = Var::leaf(em);
        c.nll(&emissions, &targets).backward();
        let analytic = c.transitions.grad().clone();
        let base = c.transitions.value_clone();
        let eps = 1e-3;
        for i in 0..IobTag::COUNT {
            for j in 0..IobTag::COUNT {
                // Skip forbidden transitions: their probability is ~0 and
                // the loss is flat there.
                if !IobTag::from_index(i).may_precede(IobTag::from_index(j)) {
                    continue;
                }
                let mut p = base.clone();
                p.set(i, j, base.get(i, j) + eps);
                c.transitions.set_value(p);
                let lp = c.nll(&emissions, &targets).scalar();
                let mut m = base.clone();
                m.set(i, j, base.get(i, j) - eps);
                c.transitions.set_value(m);
                let lm = c.nll(&emissions, &targets).scalar();
                c.transitions.set_value(base.clone());
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic.get(i, j);
                assert!(
                    (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "transition grad mismatch at ({i},{j}): {a} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn nll_is_nonnegative_and_zero_only_for_certain_gold() {
        let c = crf(13);
        // Strong emissions for the gold path → NLL near 0.
        let mut em = Matrix::full(3, IobTag::COUNT, -20.0);
        let targets = [IobTag::O, IobTag::BOp, IobTag::IOp];
        for (t, tag) in targets.iter().enumerate() {
            em.set(t, tag.index(), 20.0);
        }
        let loss = c.nll(&Var::leaf(em), &targets).scalar();
        assert!(loss >= -1e-3);
        assert!(loss < 0.1, "gold path should dominate: {loss}");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(32))]

            /// The Viterbi path's score never exceeds the log-partition
            /// (logsumexp over all paths dominates the max), and the NLL of
            /// the Viterbi path is the smallest among sampled sequences.
            #[test]
            fn prop_partition_dominates_viterbi(seed in 0u64..500, t_len in 1usize..7) {
                let mut rng = StdRng::seed_from_u64(seed);
                let c = Crf::new(&mut rng);
                let em = Matrix::uniform(t_len, IobTag::COUNT, 3.0, &mut rng);
                let path = c.viterbi(&em);
                let nll = c.nll(&Var::leaf(em.clone()), &path).scalar();
                // NLL = logZ − score(path) ≥ 0 exactly when logZ ≥ score.
                prop_assert!(nll >= -1e-3, "viterbi path scored above the partition: {}", nll);
            }

            /// Viterbi is invariant to adding a constant to all emissions.
            #[test]
            fn prop_shift_invariance(seed in 0u64..200, shift in -5.0f32..5.0) {
                let mut rng = StdRng::seed_from_u64(seed);
                let c = Crf::new(&mut rng);
                let em = Matrix::uniform(5, IobTag::COUNT, 3.0, &mut rng);
                let shifted = em.map(|v| v + shift);
                prop_assert_eq!(c.viterbi(&em), c.viterbi(&shifted));
            }

            /// The NLL of any *valid* random sequence is at least the NLL
            /// of the Viterbi path.
            #[test]
            fn prop_viterbi_is_optimal(seed in 0u64..200) {
                let mut rng = StdRng::seed_from_u64(seed);
                let c = Crf::new(&mut rng);
                let em = Matrix::uniform(4, IobTag::COUNT, 2.0, &mut rng);
                let best = c.viterbi(&em);
                let best_nll = c.nll(&Var::leaf(em.clone()), &best).scalar();
                // Compare against a handful of random valid sequences.
                use rand::Rng;
                for _ in 0..10 {
                    let mut seq = Vec::with_capacity(4);
                    let mut prev: Option<IobTag> = None;
                    for _ in 0..4 {
                        let choices: Vec<IobTag> = IobTag::ALL
                            .into_iter()
                            .filter(|&t| match prev {
                                None => t.may_start(),
                                Some(p) => p.may_precede(t),
                            })
                            .collect();
                        let t = choices[rng.gen_range(0..choices.len())];
                        seq.push(t);
                        prev = Some(t);
                    }
                    let nll = c.nll(&Var::leaf(em.clone()), &seq).scalar();
                    prop_assert!(nll >= best_nll - 1e-3);
                }
            }
        }
    }

    #[test]
    fn training_a_crf_alone_learns_transition_structure() {
        // Emissions held ambiguous; only transitions can explain the data,
        // which always follows B-AS with I-AS.
        let mut rng = StdRng::seed_from_u64(14);
        let c = Crf::new(&mut rng);
        let em = Matrix::zeros(2, IobTag::COUNT);
        let targets = [IobTag::BAs, IobTag::IAs];
        let params = c.params();
        let mut opt = saccs_nn::Sgd::new(0.5, 0.0);
        for _ in 0..200 {
            saccs_nn::zero_grads(&params);
            c.nll(&Var::leaf(em.clone()), &targets).backward();
            opt.step(&params);
        }
        assert_eq!(c.viterbi(&em), vec![IobTag::BAs, IobTag::IAs]);
    }
}

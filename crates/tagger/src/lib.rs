//! # saccs-tagger
//!
//! The aspect/opinion sequence tagger of SACCS Section 4: MiniBert
//! contextual embeddings → BiLSTM → linear-chain CRF (Figure 3), trained
//! optionally with FGSM adversarial examples at the embedding layer
//! (Figure 4, Equations 6–9). The OpineDB baseline head (per-token softmax
//! over BERT embeddings, \[31\]) is included for Table 4's comparison.
//!
//! * [`crf`] — exact linear-chain CRF with IOB structural constraints,
//!   forward–backward gradients, Viterbi and beam decoding;
//! * [`model`] — the two head architectures;
//! * [`train`] — training loops (clean and adversarial), span extraction
//!   and span-F1 evaluation.

pub mod crf;
pub mod model;
pub mod train;

pub use crf::Crf;
pub use model::{Architecture, TaggerModel};
pub use train::{Adversarial, Tagger, TrainConfig};

//! # saccs-tagger
//!
//! The aspect/opinion sequence tagger of SACCS Section 4: MiniBert
//! contextual embeddings → BiLSTM → linear-chain CRF (Figure 3), trained
//! optionally with FGSM adversarial examples at the embedding layer
//! (Figure 4, Equations 6–9). The OpineDB baseline head (per-token softmax
//! over BERT embeddings, \[31\]) is included for Table 4's comparison.
//!
//! * [`crf`] — exact linear-chain CRF with IOB structural constraints,
//!   forward–backward gradients, Viterbi and beam decoding;
//! * [`model`] — the two head architectures;
//! * [`train`] — training loops (clean and adversarial), span extraction
//!   and span-F1 evaluation.

/// Linear-chain CRF with Viterbi and beam decoding.
pub mod crf;
/// Tagger architectures (BiLSTM / MiniBert encoders).
pub mod model;
/// Training loops, clean and adversarial.
pub mod train;

/// The structured decoding layer.
pub use crf::Crf;
/// Model assembly.
pub use model::{Architecture, TaggerModel};
/// The trainable tagger.
pub use train::{Adversarial, Tagger, TrainConfig};

//! # saccs-ir
//!
//! The two baselines SACCS is compared against in Table 2 (§6.2):
//!
//! * [`bm25`] — "The IR baseline uses Okapi BM25 \[5\] … We follow the work
//!   of \[11\] and add the capability to expand the terms of the query into
//!   synonymous and related terms": a full BM25 index over per-entity
//!   review documents, with lexicon-driven query expansion;
//! * [`sim`] — "SIM represents what a determined and tireless user can get
//!   from Yelp": exhaustive search over all 1- and 2-attribute filters of
//!   the Yelp-style schema, ranked by star rating, reporting the
//!   NDCG-maximizing combination (an *oracle* over the attribute space, so
//!   a deliberately strong baseline).

/// BM25 over review text.
pub mod bm25;
/// Similarity-ranking and attribute-filter baselines.
pub mod sim;

/// The BM25 baseline.
pub use bm25::{Bm25Config, Bm25Index};
/// The similarity baseline.
pub use sim::SimBaseline;

//! The SIM baseline (§6.2).
//!
//! "SIM is a simulation of [a determined user's] behavior. We assume that
//! the user can choose one or two attributes from Yelp's interface at a
//! time. SIM computes all possible combinations of attribute values and
//! selects the one that maximizes the NDCG score … It's needless to say
//! that SIM constitutes a very strong baseline." Candidates matching the
//! attribute filter are ranked by star rating, exactly what the Yelp
//! interface offers.

use saccs_data::entity::{Entity, ATTRIBUTE_SCHEMA};
use saccs_eval::ndcg::ndcg;

/// The SIM attribute-search oracle over a fixed entity set.
pub struct SimBaseline<'a> {
    entities: &'a [Entity],
}

/// One attribute filter: conjunction of `(name, value)` constraints.
type Filter = Vec<(&'static str, &'static str)>;

impl<'a> SimBaseline<'a> {
    /// `entities[i].id` must equal `i` (dense ids), since gains are indexed
    /// by entity id.
    pub fn new(entities: &'a [Entity]) -> Self {
        assert!(
            entities.iter().enumerate().all(|(i, e)| e.id == i),
            "SimBaseline requires dense entity ids 0..n"
        );
        SimBaseline { entities }
    }

    /// All single-attribute filters.
    fn single_filters() -> Vec<Filter> {
        let mut out = Vec::new();
        for &(name, values) in ATTRIBUTE_SCHEMA {
            for &v in values {
                out.push(vec![(name, v)]);
            }
        }
        out
    }

    /// All two-attribute filters over *distinct* attributes.
    fn pair_filters() -> Vec<Filter> {
        let mut out = Vec::new();
        for (i, &(n1, vs1)) in ATTRIBUTE_SCHEMA.iter().enumerate() {
            for &(n2, vs2) in ATTRIBUTE_SCHEMA.iter().skip(i + 1) {
                for &v1 in vs1 {
                    for &v2 in vs2 {
                        out.push(vec![(n1, v1), (n2, v2)]);
                    }
                }
            }
        }
        out
    }

    /// Entities matching a filter, ranked by descending stars (ties by id).
    fn ranked_matches(&self, filter: &Filter) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .entities
            .iter()
            .filter(|e| filter.iter().all(|&(n, v)| e.attributes.get(n) == Some(&v)))
            .map(|e| e.id)
            .collect();
        ids.sort_by(|&a, &b| {
            self.entities[b]
                .stars
                .partial_cmp(&self.entities[a].stars)
                .unwrap()
                .then(a.cmp(&b))
        });
        ids
    }

    /// Best NDCG@k achievable with at most `max_attrs` (1 or 2) attribute
    /// constraints, given each entity's mean `sat` gain for the query.
    /// `gains[entity_id]` must cover every entity. Also returns the winning
    /// filter for inspection.
    pub fn best_ndcg(
        &self,
        gains: &[f32],
        k: usize,
        max_attrs: usize,
    ) -> (f32, Vec<(&'static str, &'static str)>) {
        assert_eq!(gains.len(), self.entities.len(), "gain per entity required");
        assert!((1..=2).contains(&max_attrs));
        let mut filters = Self::single_filters();
        if max_attrs == 2 {
            filters.extend(Self::pair_filters());
        }
        // The do-nothing filter (sort everything by stars) is also
        // available to a Yelp user.
        filters.push(Vec::new());

        let mut best = (f32::MIN, Vec::new());
        for f in filters {
            let ranked = self.ranked_matches(&f);
            let ranked_gains: Vec<f32> = ranked.iter().map(|&id| gains[id]).collect();
            let score = ndcg(&ranked_gains, gains, k);
            if score > best.0 {
                best = (score, f);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saccs_text::{Domain, Lexicon};

    fn entities(n: usize) -> Vec<Entity> {
        let lex = Lexicon::new(Domain::Restaurants);
        let mut rng = StdRng::seed_from_u64(17);
        (0..n).map(|i| Entity::sample(i, &lex, &mut rng)).collect()
    }

    #[test]
    fn filter_enumeration_counts() {
        let singles = SimBaseline::single_filters();
        let expected: usize = ATTRIBUTE_SCHEMA.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(singles.len(), expected);
        let pairs = SimBaseline::pair_filters();
        let mut expected_pairs = 0;
        for (i, &(_, v1)) in ATTRIBUTE_SCHEMA.iter().enumerate() {
            for &(_, v2) in ATTRIBUTE_SCHEMA.iter().skip(i + 1) {
                expected_pairs += v1.len() * v2.len();
            }
        }
        assert_eq!(pairs.len(), expected_pairs);
    }

    #[test]
    fn two_attributes_never_worse_than_one() {
        // The 2-attribute filter space contains… nothing of the 1-attribute
        // space, but also the empty filter; SIM-2 includes all SIM-1
        // filters in our implementation, so it cannot be worse.
        let ents = entities(30);
        let sim = SimBaseline::new(&ents);
        let gains: Vec<f32> = ents.iter().map(|e| e.base_quality("ambiance")).collect();
        let (one, _) = sim.best_ndcg(&gains, 10, 1);
        let (two, _) = sim.best_ndcg(&gains, 10, 2);
        assert!(two >= one - 1e-6, "SIM-2 ({two}) worse than SIM-1 ({one})");
    }

    #[test]
    fn oracle_finds_informative_attribute() {
        // When the gains are literally the quiet-place latent, NoiseLevel
        // (derived from that latent) should beat random attributes, and the
        // chosen filter should often involve it.
        let ents = entities(60);
        let sim = SimBaseline::new(&ents);
        let gains: Vec<f32> = ents
            .iter()
            .map(|e| e.quality_of("place", "quiet"))
            .collect();
        let (score, filter) = sim.best_ndcg(&gains, 10, 1);
        assert!(score > 0.5);
        // Not asserting the exact attribute (stars interplay), but the
        // winning filter must be a legal one.
        for (name, value) in &filter {
            let (_, values) = ATTRIBUTE_SCHEMA
                .iter()
                .find(|(n, _)| n == name)
                .expect("legal attribute");
            assert!(values.contains(value));
        }
    }

    #[test]
    fn ndcg_bounded_and_deterministic() {
        let ents = entities(25);
        let sim = SimBaseline::new(&ents);
        let gains: Vec<f32> = ents.iter().map(|e| e.base_quality("food")).collect();
        let (a, fa) = sim.best_ndcg(&gains, 10, 2);
        let (b, fb) = sim.best_ndcg(&gains, 10, 2);
        assert_eq!(a, b);
        assert_eq!(fa, fb);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn empty_filter_is_considered() {
        // With uniform gains, every ranking is ideal; best filter may be
        // anything but the score must be 1.
        let ents = entities(10);
        let sim = SimBaseline::new(&ents);
        let gains = vec![0.5; 10];
        let (score, _) = sim.best_ndcg(&gains, 5, 1);
        assert!((score - 1.0).abs() < 1e-6);
    }
}

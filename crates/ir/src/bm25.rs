//! Okapi BM25 over per-entity review documents, with query expansion.

use saccs_text::lexicon::Lexicon;
use saccs_text::token::words_lower;
use std::collections::{BTreeMap, HashMap};

/// BM25 parameters (standard defaults).
#[derive(Debug, Clone)]
pub struct Bm25Config {
    pub k1: f32,
    pub b: f32,
    /// Weight applied to expanded (synonym/concept) query terms relative
    /// to original terms, following the best combination method of
    /// Ganesan & Zhai \[11\] (original terms count full, expansions less).
    pub expansion_weight: f32,
}

impl Default for Bm25Config {
    fn default() -> Self {
        Bm25Config {
            k1: 1.2,
            b: 0.75,
            expansion_weight: 0.4,
        }
    }
}

/// An inverted BM25 index where each *document* is the concatenation of
/// one entity's reviews.
pub struct Bm25Index {
    config: Bm25Config,
    lexicon: Lexicon,
    /// term → (doc id, term frequency)
    postings: HashMap<String, Vec<(usize, u32)>>,
    doc_len: Vec<u32>,
    avg_len: f32,
    n_docs: usize,
}

impl Bm25Index {
    /// Build from `(entity_id, review texts)` pairs; entity ids must be
    /// dense `0..n`.
    pub fn build<'a, I>(docs: I, n_docs: usize, lexicon: Lexicon, config: Bm25Config) -> Self
    where
        I: IntoIterator<Item = (usize, Vec<&'a str>)>,
    {
        let mut postings: HashMap<String, Vec<(usize, u32)>> = HashMap::new();
        let mut doc_len = vec![0u32; n_docs];
        for (id, texts) in docs {
            assert!(id < n_docs, "entity id {id} out of range {n_docs}");
            // BTreeMap so posting construction iterates in term order —
            // keeps the index build bit-stable (audit: nondet-iteration).
            let mut tf: BTreeMap<String, u32> = BTreeMap::new();
            for text in texts {
                for w in words_lower(text) {
                    *tf.entry(w).or_insert(0) += 1;
                    doc_len[id] += 1;
                }
            }
            for (term, f) in tf {
                postings.entry(term).or_default().push((id, f));
            }
        }
        let avg_len = doc_len.iter().map(|&l| l as f32).sum::<f32>() / n_docs.max(1) as f32;
        Bm25Index {
            config,
            lexicon,
            postings,
            doc_len,
            avg_len,
            n_docs,
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.n_docs
    }

    pub fn is_empty(&self) -> bool {
        self.n_docs == 0
    }

    fn idf(&self, term: &str) -> f32 {
        let df = self.postings.get(term).map(|p| p.len()).unwrap_or(0) as f32;
        let n = self.n_docs as f32;
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// Accumulate one term's BM25 contribution into `scores`.
    fn score_term(&self, term: &str, weight: f32, scores: &mut [f32]) {
        let Some(postings) = self.postings.get(term) else {
            return;
        };
        let idf = self.idf(term);
        for &(doc, tf) in postings {
            let tf = tf as f32;
            let norm = self.config.k1
                * (1.0 - self.config.b
                    + self.config.b * self.doc_len[doc] as f32 / self.avg_len.max(1.0));
            scores[doc] += weight * idf * (tf * (self.config.k1 + 1.0)) / (tf + norm);
        }
    }

    /// Rank all documents for a free-text query, with lexicon expansion:
    /// each query word also contributes its synonym-group variants and
    /// concept members at `expansion_weight`.
    pub fn search(&self, query: &str) -> Vec<(usize, f32)> {
        let mut scores = vec![0.0f32; self.n_docs];
        for word in words_lower(query) {
            self.score_term(&word, 1.0, &mut scores);
            for exp in self.lexicon.expansions(&word) {
                if exp != word {
                    for part in exp.split_whitespace() {
                        // Multiword variants like "a bit slow" or "really
                        // good" contribute their content words only;
                        // scoring fillers would reward every document.
                        const FILLERS: &[&str] =
                            &["a", "an", "the", "of", "bit", "very", "really", "too", "la"];
                        if !FILLERS.contains(&part) {
                            self.score_term(part, self.config.expansion_weight, &mut scores);
                        }
                    }
                }
            }
        }
        let mut ranked: Vec<(usize, f32)> = scores
            .into_iter()
            .enumerate()
            .filter(|&(_, s)| s > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked
    }

    /// Search for a set of subjective-tag phrases (the Table-2 query form):
    /// the query text is the concatenation of the tag phrases.
    pub fn search_tags(&self, tag_phrases: &[String]) -> Vec<(usize, f32)> {
        self.search(&tag_phrases.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_text::Domain;

    fn index() -> Bm25Index {
        let docs = vec![
            (
                0usize,
                vec!["the food is delicious and tasty", "delicious pasta"],
            ),
            (1, vec!["the staff is friendly", "nice waiters"]),
            (2, vec!["slow service but good food"]),
            (3, vec!["nothing relevant here at all"]),
        ];
        Bm25Index::build(
            docs,
            4,
            Lexicon::new(Domain::Restaurants),
            Bm25Config::default(),
        )
    }

    #[test]
    fn exact_term_match_ranks_first() {
        let idx = index();
        let ranked = idx.search("delicious food");
        assert_eq!(ranked[0].0, 0);
    }

    #[test]
    fn keyword_blindness_without_expansion() {
        // "tasty" appears in doc 0 only; a query for "scrumptious" (a
        // synonym absent from every doc) finds doc 0 *only* through
        // expansion — the exact weakness of keyword IR the paper targets.
        let docs = vec![
            (0usize, vec!["very tasty pasta"]),
            (1, vec!["friendly staff"]),
        ];
        let no_exp = Bm25Index::build(
            docs.clone(),
            2,
            Lexicon::new(Domain::Restaurants),
            Bm25Config {
                expansion_weight: 0.0,
                ..Default::default()
            },
        );
        assert!(no_exp.search("scrumptious").is_empty());
        let with_exp = Bm25Index::build(
            docs,
            2,
            Lexicon::new(Domain::Restaurants),
            Bm25Config::default(),
        );
        let ranked = with_exp.search("scrumptious");
        assert_eq!(ranked.first().map(|&(d, _)| d), Some(0));
    }

    #[test]
    fn idf_downweights_common_terms() {
        let idx = index();
        // "the" occurs in several docs, "delicious" in one.
        assert!(idx.idf("delicious") > idx.idf("the"));
    }

    #[test]
    fn irrelevant_documents_score_zero() {
        let idx = index();
        let ranked = idx.search("delicious");
        assert!(ranked.iter().all(|&(d, _)| d != 3));
    }

    #[test]
    fn multi_tag_query_merges_evidence() {
        let idx = index();
        let ranked = idx.search_tags(&["delicious food".to_string(), "nice staff".to_string()]);
        let ids: Vec<usize> = ranked.iter().map(|&(d, _)| d).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&1));
    }

    #[test]
    fn scores_are_finite_and_sorted() {
        let idx = index();
        let ranked = idx.search("good food friendly staff slow service");
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(ranked.iter().all(|&(_, s)| s.is_finite() && s > 0.0));
    }

    mod props {
        use super::super::*;
        use proptest::prelude::*;
        use saccs_text::Domain;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(24))]

            /// Scores are finite, positive, and sorted for arbitrary
            /// word-soup corpora and queries.
            #[test]
            fn prop_scores_sane(
                docs in proptest::collection::vec(
                    proptest::collection::vec("[a-d]{1,4}", 1..8), 1..6),
                query in proptest::collection::vec("[a-d]{1,4}", 1..4),
            ) {
                let n = docs.len();
                let owned: Vec<(usize, Vec<String>)> = docs
                    .into_iter()
                    .enumerate()
                    .map(|(i, ws)| (i, vec![ws.join(" ")]))
                    .collect();
                let borrowed: Vec<(usize, Vec<&str>)> = owned
                    .iter()
                    .map(|(i, t)| (*i, t.iter().map(|x| x.as_str()).collect()))
                    .collect();
                let idx = Bm25Index::build(
                    borrowed,
                    n,
                    Lexicon::new(Domain::Restaurants),
                    Bm25Config::default(),
                );
                let ranked = idx.search(&query.join(" "));
                for w in ranked.windows(2) {
                    prop_assert!(w[0].1 >= w[1].1);
                }
                for &(d, s) in &ranked {
                    prop_assert!(d < n);
                    prop_assert!(s.is_finite() && s > 0.0);
                }
            }

            /// Adding an extra occurrence of the query term to a document
            /// never lowers that document's score.
            #[test]
            fn prop_tf_monotone(extra in 1usize..6) {
                let base = "alpha beta gamma";
                let boosted = format!("{base}{}", " alpha".repeat(extra));
                let owned = [(0usize, vec![base.to_string()]), (1, vec![boosted])];
                let borrowed: Vec<(usize, Vec<&str>)> = owned
                    .iter()
                    .map(|(i, t)| (*i, t.iter().map(|x| x.as_str()).collect()))
                    .collect();
                let idx = Bm25Index::build(
                    borrowed,
                    2,
                    Lexicon::new(Domain::Restaurants),
                    Bm25Config::default(),
                );
                let ranked = idx.search("alpha");
                prop_assert_eq!(ranked[0].0, 1, "higher-tf doc must rank first: {:?}", ranked);
            }
        }
    }

    #[test]
    fn empty_index_and_empty_query() {
        let idx = Bm25Index::build(
            Vec::<(usize, Vec<&str>)>::new(),
            0,
            Lexicon::new(Domain::Restaurants),
            Bm25Config::default(),
        );
        assert!(idx.is_empty());
        assert!(idx.search("anything").is_empty());
        let idx = index();
        assert!(idx.search("").is_empty());
    }
}

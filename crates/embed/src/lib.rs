//! # saccs-embed
//!
//! **MiniBert** — the from-scratch stand-in for BERT \[7\] and for the
//! domain-post-trained BERT of Xu et al. \[58\] that the paper builds on.
//!
//! The paper uses BERT for three things, all of which MiniBert provides:
//!
//! 1. **Contextual embeddings** feeding the BiLSTM-CRF tagger (§4.1,
//!    Figure 3) — [`MiniBert::encode`] / [`MiniBert::encode_frozen`];
//! 2. **Domain adaptation** (§4.2): BERT post-trained on restaurant
//!    reviews understands "la carte" and "a killer" — reproduced by
//!    [`pretrain::train_mlm`] on a general mixed-domain corpus followed by
//!    a second `train_mlm` pass on in-domain text (masked-LM objective in
//!    both phases);
//! 3. **Attention heads as pairing classifiers** (§5.1, Figure 5) —
//!    [`MiniBert::attention`] exposes every layer:head attention matrix
//!    after a forward pass.
//!
//! Scale substitution (documented in `DESIGN.md`): BERT-base is 12 layers
//! × 12 heads × 768 dims trained on Wikipedia; MiniBert defaults to
//! 3 layers × 4 heads × 32 dims trained on the synthetic corpora. The
//! mechanisms the paper measures — domain-vocabulary coverage, attention
//! structure, embedding-space adversarial perturbations — are preserved;
//! absolute quality is not (and Table 4/5 shapes, not absolute numbers,
//! are the reproduction target).

/// The MiniBert transformer encoder.
pub mod model;
/// Masked-LM pretraining, domain post-training and fine-tuning.
pub mod pretrain;
/// Int8-quantized frozen forward for probe-side embeddings.
pub mod quantized;

/// The encoder and its hyperparameters.
pub use model::{MiniBert, MiniBertConfig};
/// Pretraining entry points.
pub use pretrain::{build_vocab, eval_mlm, finetune_tagging, general_corpus, train_mlm, MlmConfig};
/// The int8 probe-side encoder and its precision switch.
pub use quantized::{EncoderPrecision, QuantizedEncoder};

//! Masked-LM pretraining and domain post-training.
//!
//! Reproduces the two-phase regime of §4.2: a *general* pretraining corpus
//! (the Wikipedia stand-in — mixed-domain text restricted to the training
//! half of every paraphrase group, so domain-specific test vocabulary like
//! "a killer" or "la carte" stays unseen) and a *domain post-training*
//! corpus (full-vocabulary in-domain reviews, the \[58\] recipe). The paper:
//! "standard BERT embeddings are blind to the domain and may hinder the
//! tagging performance"; Table 4 credits domain knowledge with up to
//! +2.93 F1.

use crate::model::MiniBert;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saccs_data::{GeneratorConfig, SentenceGenerator};
use saccs_nn::layers::Layer;
use saccs_nn::optim::{zero_grads, Adam};
use saccs_text::lexicon::{Domain, Lexicon};
use saccs_text::vocab::{Vocab, MASK};

/// Masked-LM training knobs.
#[derive(Debug, Clone)]
pub struct MlmConfig {
    /// Fraction of (non-CLS) tokens masked per sentence.
    pub mask_prob: f64,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for MlmConfig {
    fn default() -> Self {
        MlmConfig {
            mask_prob: 0.15,
            epochs: 2,
            lr: 5e-3,
            seed: 0x31A5,
        }
    }
}

/// Build a vocabulary covering every domain's full surface lexicon plus
/// the template glue words the generators emit. Typo'd tokens map to
/// `[UNK]` at encode time, as real OOV words would.
pub fn build_vocab(domains: &[Domain]) -> Vocab {
    let mut tokens: Vec<String> = Vec::new();
    let glue = [
        "the",
        "is",
        "are",
        "was",
        "were",
        "here",
        "we",
        "loved",
        "got",
        "and",
        "but",
        "a",
        "both",
        ",",
        ".",
        "!",
        "?",
        "unlike",
        "not",
        // Utterance register (see SentenceGenerator::utterance).
        "i",
        "want",
        "am",
        "looking",
        "for",
        "find",
        "me",
        "that",
        "has",
        "with",
        "any",
        "please",
        "an",
        "in",
        "serves",
        "somewhere",
        "actually",
        "forget",
    ];
    tokens.extend(
        saccs_data::generator::UTTERANCE_CUISINES
            .iter()
            .map(|s| s.to_string()),
    );
    tokens.extend(
        saccs_data::generator::UTTERANCE_CITIES
            .iter()
            .map(|s| s.to_string()),
    );
    tokens.extend(glue.iter().map(|s| s.to_string()));
    for &d in domains {
        let lex = Lexicon::new(d);
        for a in lex.aspects() {
            for m in a.members {
                tokens.extend(m.split_whitespace().map(|w| w.to_string()));
            }
        }
        for g in lex.opinion_groups() {
            for v in g.variants {
                tokens.extend(v.split_whitespace().map(|w| w.to_string()));
            }
        }
        tokens.extend(lex.noise_tokens().iter().map(|s| s.to_string()));
    }
    Vocab::from_tokens(tokens)
}

/// Generate the general (mixed-domain, train-vocabulary-only) pretraining
/// corpus: `n` tokenized sentences.
pub fn general_corpus(n: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let generators: Vec<SentenceGenerator> =
        [Domain::Restaurants, Domain::Electronics, Domain::Hotels]
            .into_iter()
            .map(|d| {
                SentenceGenerator::new(
                    Lexicon::new(d),
                    GeneratorConfig {
                        typo_rate: 0.0,
                        noise_rate: 0.3,
                        train_vocabulary_only: true,
                        ..Default::default()
                    },
                )
            })
            .collect();
    (0..n)
        .map(|i| {
            generators[i % generators.len()]
                .random_sentence(&mut rng)
                .tokens
        })
        .collect()
}

/// Run masked-LM training over tokenized sentences; returns the mean loss
/// of the final epoch. Used for both general pretraining and domain
/// post-training (call twice with different corpora).
pub fn train_mlm(bert: &MiniBert, sentences: &[Vec<String>], config: &MlmConfig) -> f32 {
    assert!(!sentences.is_empty(), "empty MLM corpus");
    let _mlm = saccs_obs::span!("mlm.train");
    let params = bert.params();
    let mut opt = Adam::new(config.lr).with_clip(1.0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut last_epoch_loss = f32::INFINITY;
    for _ in 0..config.epochs {
        let _epoch = saccs_obs::span!("mlm.epoch");
        let mut total = 0.0;
        let mut count = 0usize;
        for tokens in sentences {
            let original = bert.ids(tokens);
            if original.len() < 2 {
                continue;
            }
            // Choose masked positions (never position 0, the [CLS]).
            let mut masked: Vec<usize> = (1..original.len())
                .filter(|_| rng.gen_bool(config.mask_prob))
                .collect();
            if masked.is_empty() {
                masked.push(rng.gen_range(1..original.len()));
            }
            let mut input = original.clone();
            for &p in &masked {
                input[p] = MASK;
            }
            let targets: Vec<usize> = masked.iter().map(|&p| original[p]).collect();

            zero_grads(&params);
            // Mask-first: run the vocab-sized head only over the masked
            // rows (same loss and gradients as heading every position and
            // gathering after — the head is row-wise linear).
            let loss = bert
                .mlm_logits_rows(&input, &masked)
                .cross_entropy(&targets);
            loss.backward();
            opt.step(&params);
            total += loss.scalar();
            count += 1;
        }
        last_epoch_loss = total / count.max(1) as f32;
        saccs_obs::counter!("mlm.epochs").inc();
        if saccs_obs::enabled() {
            saccs_obs::registry()
                .gauge("mlm.epoch_loss")
                .set(f64::from(last_epoch_loss));
        }
    }
    bert.bump_weights_version();
    last_epoch_loss
}

/// Fine-tune the encoder on the aspect/opinion tagging task (§5.1: "we
/// have it already trained on aspect/opinion extraction as explained in
/// Section 4" — the attention-head pairing heuristic reads heads from
/// *this* model). A per-token linear head over the 5 IOB labels is trained
/// jointly with the full encoder; the head is discarded, the sharpened
/// attention stays.
pub fn finetune_tagging(
    bert: &MiniBert,
    sentences: &[saccs_data::LabeledSentence],
    epochs: usize,
    lr: f32,
    seed: u64,
) -> f32 {
    use saccs_nn::layers::Linear;
    let mut rng = StdRng::seed_from_u64(seed);
    let head = Linear::new(bert.dim(), saccs_text::IobTag::COUNT, &mut rng);
    let mut params = bert.params();
    params.extend(head.params());
    let mut opt = Adam::new(lr).with_clip(1.0);
    let mut last = f32::INFINITY;
    for _ in 0..epochs {
        let _epoch = saccs_obs::span!("finetune.epoch");
        let mut total = 0.0;
        let mut count = 0usize;
        for s in sentences {
            let ids = bert.ids(&s.tokens);
            if ids.len() != s.tokens.len() + 1 {
                continue; // truncated by max_len
            }
            zero_grads(&params);
            let enc = bert.encode(&ids);
            let logits = head.forward(&enc.slice_rows(1, ids.len()));
            let targets: Vec<usize> = s.tags.iter().map(|t| t.index()).collect();
            let loss = logits.cross_entropy(&targets);
            loss.backward();
            opt.step(&params);
            total += loss.scalar();
            count += 1;
        }
        last = total / count.max(1) as f32;
    }
    bert.bump_weights_version();
    last
}

/// Mean masked-prediction loss on a held-out corpus without updating
/// weights (for measuring domain-adaptation gains).
///
/// Each sentence's mask positions derive from `(seed, sentence index)`
/// and the per-sentence losses are summed in index order, so evaluation
/// fans out across the `saccs-rt` pool (via per-worker encoder replicas)
/// with a result that is independent of the thread count.
pub fn eval_mlm(bert: &MiniBert, sentences: &[Vec<String>], mask_prob: f64, seed: u64) -> f32 {
    let losses = bert.parallel_with_replicas(sentences.len(), 8, |bert, i| {
        let original = bert.ids(&sentences[i]);
        if original.len() < 2 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut masked: Vec<usize> = (1..original.len())
            .filter(|_| rng.gen_bool(mask_prob))
            .collect();
        if masked.is_empty() {
            masked.push(rng.gen_range(1..original.len()));
        }
        let mut input = original.clone();
        for &p in &masked {
            input[p] = MASK;
        }
        let targets: Vec<usize> = masked.iter().map(|&p| original[p]).collect();
        Some(
            bert.mlm_logits_rows(&input, &masked)
                .cross_entropy(&targets)
                .scalar(),
        )
    });
    let mut total = 0.0;
    let mut count = 0usize;
    for loss in losses.into_iter().flatten() {
        total += loss;
        count += 1;
    }
    total / count.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MiniBertConfig;

    fn small_config() -> MiniBertConfig {
        MiniBertConfig {
            dim: 16,
            heads: 2,
            layers: 2,
            max_len: 32,
            seed: 5,
        }
    }

    #[test]
    fn vocab_covers_all_domains() {
        let v = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
        for w in [
            "delicious",
            "carte",
            "killer",
            "xr-500",
            "mattress",
            "the",
            ".",
        ] {
            assert!(v.contains(w), "vocab missing {w}");
        }
        assert!(v.len() > 200);
    }

    #[test]
    fn general_corpus_excludes_held_out_variants() {
        // "phenomenal" is variant index 5 of the delicious group (odd ⇒
        // held out of training vocabulary) and appears in no other variant.
        let corpus = general_corpus(300, 3);
        assert_eq!(corpus.len(), 300);
        for s in &corpus {
            assert!(
                !s.iter().any(|t| t == "phenomenal" || t == "killer"),
                "held-out variant in general corpus"
            );
        }
    }

    #[test]
    fn mlm_loss_decreases_with_training() {
        let vocab = build_vocab(&[Domain::Restaurants]);
        let bert = MiniBert::new(vocab, small_config());
        let corpus = general_corpus(60, 7);
        let before = eval_mlm(&bert, &corpus, 0.15, 1);
        train_mlm(
            &bert,
            &corpus,
            &MlmConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        let after = eval_mlm(&bert, &corpus, 0.15, 1);
        assert!(after < before, "MLM did not learn: {before} → {after}");
    }

    #[test]
    fn domain_post_training_helps_in_domain_prediction() {
        // The §4.2 mechanism end to end: a generally-pretrained model is
        // post-trained on full-vocabulary restaurant text and must predict
        // held-out in-domain text better than its pre-post-training self.
        let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
        let bert = MiniBert::new(vocab, small_config());
        let general = general_corpus(80, 11);
        train_mlm(
            &bert,
            &general,
            &MlmConfig {
                epochs: 2,
                ..Default::default()
            },
        );

        let gen = SentenceGenerator::new(
            Lexicon::new(Domain::Restaurants),
            GeneratorConfig {
                typo_rate: 0.0,
                noise_rate: 0.3,
                train_vocabulary_only: false,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(13);
        let domain_train: Vec<Vec<String>> = (0..80)
            .map(|_| gen.random_sentence(&mut rng).tokens)
            .collect();
        let domain_heldout: Vec<Vec<String>> = (0..40)
            .map(|_| gen.random_sentence(&mut rng).tokens)
            .collect();

        let before = eval_mlm(&bert, &domain_heldout, 0.15, 2);
        train_mlm(
            &bert,
            &domain_train,
            &MlmConfig {
                epochs: 2,
                seed: 0xD0,
                ..Default::default()
            },
        );
        let after = eval_mlm(&bert, &domain_heldout, 0.15, 2);
        assert!(
            after < before,
            "domain post-training did not help: {before} → {after}"
        );
    }
}

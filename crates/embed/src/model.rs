//! The MiniBert encoder.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saccs_nn::layers::{Embedding, Layer, LayerNorm, Linear, MultiHeadSelfAttention};
use saccs_nn::{Matrix, Var};
use saccs_text::vocab::{Vocab, CLS};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cap on memoized frozen-feature matrices. The SACCS pipeline re-embeds
/// the same tag phrases and review sentences thousands of times (degree
/// computation, probes, the adaptation loop); a bounded FIFO memo turns
/// the repeats into clones. At dim 32 and typical sentence lengths this
/// is a few MiB at the cap.
const FEATURE_CACHE_CAP: usize = 4096;

/// Distinguishes encoder instances so worker-thread replicas (see
/// [`MiniBert::parallel_with_replicas`]) never serve weights from a
/// different model that happens to share a version number.
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// Bounded FIFO memo of frozen features keyed by the encoded id sequence.
#[derive(Default)]
struct FeatureCache {
    map: HashMap<Vec<usize>, Matrix>,
    order: VecDeque<Vec<usize>>,
}

/// Encoder hyperparameters.
#[derive(Debug, Clone)]
pub struct MiniBertConfig {
    pub dim: usize,
    pub heads: usize,
    pub layers: usize,
    pub max_len: usize,
    pub seed: u64,
}

impl Default for MiniBertConfig {
    fn default() -> Self {
        MiniBertConfig {
            dim: 32,
            heads: 4,
            layers: 3,
            max_len: 64,
            seed: 0xBE27,
        }
    }
}

/// One pre-norm transformer block.
struct Block {
    attn: MultiHeadSelfAttention,
    ln1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    ln2: LayerNorm,
}

impl Block {
    fn new(dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        Block {
            attn: MultiHeadSelfAttention::new(dim, heads, rng),
            ln1: LayerNorm::new(dim),
            ff1: Linear::new(dim, 2 * dim, rng),
            ff2: Linear::new(2 * dim, dim, rng),
            ln2: LayerNorm::new(dim),
        }
    }

    fn forward(&self, x: &Var) -> Var {
        let a = self.attn.forward(&self.ln1.forward(x));
        let x = x.add(&a);
        let f = self
            .ff2
            .forward(&self.ff1.forward(&self.ln2.forward(&x)).relu());
        x.add(&f)
    }
}

impl Layer for Block {
    fn params(&self) -> Vec<Var> {
        let mut p = self.attn.params();
        p.extend(self.ln1.params());
        p.extend(self.ff1.params());
        p.extend(self.ff2.params());
        p.extend(self.ln2.params());
        p
    }
}

/// The encoder: token + position embeddings through `layers` transformer
/// blocks, plus a masked-LM head used only during (post-)training.
pub struct MiniBert {
    config: MiniBertConfig,
    vocab: Vocab,
    tok_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<Block>,
    mlm_head: Linear,
    /// Ids of the sequence whose attention matrices are currently stored
    /// in the blocks (see [`MiniBert::ensure_attentions`]).
    attention_key: std::cell::RefCell<Option<Vec<usize>>>,
    /// Identity of this instance (replica cache key, see
    /// [`MiniBert::parallel_with_replicas`]).
    uid: u64,
    /// Bumped whenever the weights change; invalidates the feature memo
    /// and any worker-thread replicas.
    weights_version: Cell<u64>,
    feature_cache: RefCell<FeatureCache>,
}

impl MiniBert {
    /// Fresh, untrained encoder over `vocab`.
    pub fn new(vocab: Vocab, config: MiniBertConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let tok_emb = Embedding::new(vocab.len(), config.dim, &mut rng);
        let pos_emb = Embedding::new(config.max_len, config.dim, &mut rng);
        let blocks = (0..config.layers)
            .map(|_| Block::new(config.dim, config.heads, &mut rng))
            .collect();
        let mlm_head = Linear::new(config.dim, vocab.len(), &mut rng);
        MiniBert {
            config,
            vocab,
            tok_emb,
            pos_emb,
            blocks,
            mlm_head,
            attention_key: std::cell::RefCell::new(None),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            weights_version: Cell::new(0),
            feature_cache: RefCell::new(FeatureCache::default()),
        }
    }

    pub fn config(&self) -> &MiniBertConfig {
        &self.config
    }

    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Encode token strings to ids, prepending `[CLS]` and truncating to
    /// `max_len`.
    pub fn ids(&self, tokens: &[String]) -> Vec<usize> {
        let mut ids = Vec::with_capacity(tokens.len() + 1);
        ids.push(CLS);
        for t in tokens {
            ids.push(self.vocab.id(t));
        }
        ids.truncate(self.config.max_len);
        ids
    }

    /// Full differentiable encode: ids → `T×dim` contextual embeddings.
    /// Per-head attentions are recorded for [`MiniBert::attention`].
    pub fn encode(&self, ids: &[usize]) -> Var {
        assert!(
            !ids.is_empty() && ids.len() <= self.config.max_len,
            "bad sequence length"
        );
        saccs_obs::counter!("embed.forward").inc();
        // Any fresh forward overwrites the recorded attentions.
        *self.attention_key.borrow_mut() = None;
        let pos: Vec<usize> = (0..ids.len()).collect();
        let mut x = self.tok_emb.forward(ids).add(&self.pos_emb.forward(&pos));
        for b in &self.blocks {
            x = b.forward(&x);
        }
        x
    }

    /// Encode and detach: a plain matrix of contextual embeddings with no
    /// graph behind it. This is how the tagger consumes MiniBert (frozen
    /// feature extractor; the paper fine-tunes full BERT, we freeze for
    /// tractability — the FGSM perturbation applies to these features
    /// either way, exactly as in Miyato et al. \[38\]).
    pub fn encode_frozen(&self, ids: &[usize]) -> Matrix {
        self.encode(ids).value_clone()
    }

    /// Convenience: tokens (without `[CLS]`) → frozen features *without*
    /// the `[CLS]` row, aligned 1:1 with the input tokens.
    ///
    /// Results are memoized in a bounded FIFO cache keyed by the encoded
    /// id sequence; the cache is cleared whenever the weights change
    /// (training, [`MiniBert::load_bytes`]).
    ///
    /// Each cache miss crosses the `embed.features` failpoint, modeling
    /// one round trip to a remote encoder; [`MiniBert::features_batch`]
    /// crosses its own seam once per *batch*, which is what batched
    /// warm-up amortizes. The function cannot fail, so an injected error
    /// here is counted and ignored — only delays are observable.
    pub fn features(&self, tokens: &[String]) -> Matrix {
        let ids = self.ids(tokens);
        if let Some(hit) = self.feature_cache.borrow().map.get(&ids) {
            saccs_obs::counter!("embed.cache.hit").inc();
            return hit.clone();
        }
        if saccs_fault::failpoint!("embed.features").is_err() {
            saccs_obs::counter!("fault.ignored.features").inc();
        }
        saccs_obs::counter!("embed.cache.miss").inc();
        let full = self.encode_frozen(&ids);
        let feats = full.slice_rows(1, full.rows());
        self.cache_insert(ids, feats.clone());
        feats
    }

    /// Frozen features for a batch of token sequences, one matrix per
    /// input, in input order. Cache hits are served directly; each unique
    /// miss is encoded exactly once, fanned out across the `saccs-rt`
    /// pool when it is wider than one thread. Replicas carry bit-identical
    /// weights and the matmul kernel never varies with thread count, so
    /// the output is bitwise independent of `SACCS_THREADS`.
    pub fn features_batch(&self, token_seqs: &[Vec<String>]) -> Vec<Matrix> {
        let _span = saccs_obs::span!("embed.features_batch");
        if saccs_fault::failpoint!("embed.features_batch").is_err() {
            // Degrade instead of failing: the batch fan-out is an
            // optimization, so an injected batch failure falls back to
            // the serial per-sequence path, which produces bitwise
            // identical features (same weights, same kernel).
            saccs_obs::counter!("fault.degraded.features_batch").inc();
            return token_seqs.iter().map(|t| self.features(t)).collect();
        }
        let keys: Vec<Vec<usize>> = token_seqs.iter().map(|t| self.ids(t)).collect();
        // Dedupe the misses so repeated sentences cost one forward.
        let mut miss_keys: Vec<Vec<usize>> = Vec::new();
        let mut miss_of: HashMap<&[usize], usize> = HashMap::new();
        {
            let cache = self.feature_cache.borrow();
            for key in &keys {
                if cache.map.contains_key(key) {
                    saccs_obs::counter!("embed.cache.hit").inc();
                } else if !miss_of.contains_key(key.as_slice()) {
                    saccs_obs::counter!("embed.cache.miss").inc();
                    miss_of.insert(key, miss_keys.len());
                    miss_keys.push(key.clone());
                }
            }
        }
        let encoded: Vec<Matrix> = self.parallel_with_replicas(miss_keys.len(), 4, |bert, i| {
            let full = bert.encode_frozen(&miss_keys[i]);
            full.slice_rows(1, full.rows())
        });
        for (key, feats) in miss_keys.iter().zip(&encoded) {
            self.cache_insert(key.clone(), feats.clone());
        }
        // Serve from the cache but fall back to the freshly encoded list:
        // a batch larger than the cache cap evicts its own entries. That
        // includes keys that were *hits* at dedupe time (so they are in
        // neither the cache nor the miss list); re-encode those serially —
        // same weights, same kernel, so the output is bitwise identical
        // to the evicted entry.
        let served: Vec<Option<Matrix>> = {
            let cache = self.feature_cache.borrow();
            keys.iter()
                .map(|key| {
                    cache
                        .map
                        .get(key)
                        .cloned()
                        .or_else(|| miss_of.get(key.as_slice()).map(|&i| encoded[i].clone()))
                })
                .collect()
        };
        served
            .into_iter()
            .zip(&keys)
            .map(|(m, key)| match m {
                Some(m) => m,
                None => {
                    let full = self.encode_frozen(key);
                    full.slice_rows(1, full.rows())
                }
            })
            .collect()
    }

    /// Run `f(replica, i)` for every `i in 0..n`, fanning out across the
    /// `saccs-rt` pool. Each worker thread lazily rebuilds a private
    /// replica of this encoder from its serialized weights (keyed by
    /// instance uid + weights version, so stale replicas are replaced
    /// after training). Falls back to running `f(self, i)` serially when
    /// the pool is one thread wide or the batch is below `min_per_task`.
    /// Results are positional: independent of which thread ran what.
    pub fn parallel_with_replicas<R, F>(&self, n: usize, min_per_task: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&MiniBert, usize) -> R + Sync,
    {
        thread_local! {
            static REPLICA: RefCell<Option<((u64, u64), MiniBert)>> =
                const { RefCell::new(None) };
        }
        if n == 0 {
            return Vec::new();
        }
        if saccs_rt::threads() == 1 || n <= min_per_task {
            return (0..n).map(|i| f(self, i)).collect();
        }
        let bytes = self.save_bytes();
        let key = (self.uid, self.weights_version.get());
        let vocab = &self.vocab;
        let config = &self.config;
        saccs_rt::parallel_map(n, min_per_task, |i| {
            REPLICA.with(|slot| {
                let mut slot = slot.borrow_mut();
                let stale = !matches!(&*slot, Some((k, _)) if *k == key);
                if stale {
                    let replica = MiniBert::new(vocab.clone(), config.clone());
                    replica
                        .load_bytes(&bytes)
                        .expect("replica rejected weights serialized from the same model");
                    *slot = Some((key, replica));
                }
                match &*slot {
                    Some((_, replica)) => f(replica, i),
                    None => unreachable!("replica slot filled above"),
                }
            })
        })
    }

    /// Record that the weights changed: clears the feature memo and
    /// invalidates worker-thread replicas. Training entry points and
    /// [`MiniBert::load_bytes`] call this; call it manually after any
    /// out-of-band parameter mutation through [`Layer::params`].
    pub fn bump_weights_version(&self) {
        self.weights_version.set(self.weights_version.get() + 1);
        let mut cache = self.feature_cache.borrow_mut();
        cache.map.clear();
        cache.order.clear();
    }

    fn cache_insert(&self, key: Vec<usize>, value: Matrix) {
        let mut cache = self.feature_cache.borrow_mut();
        if cache.map.len() >= FEATURE_CACHE_CAP {
            if let Some(old) = cache.order.pop_front() {
                cache.map.remove(&old);
            }
        }
        if cache.map.insert(key.clone(), value).is_none() {
            cache.order.push_back(key);
        }
    }

    /// Make sure the blocks' recorded attention matrices correspond to
    /// `ids`, re-encoding only when the last recorded sequence differs.
    /// The pairing heuristics probe many (layer, head) combinations per
    /// sentence; this turns O(heads) encodes into one.
    pub fn ensure_attentions(&self, ids: &[usize]) {
        if self.attention_key.borrow().as_deref() == Some(ids) {
            return;
        }
        let _ = self.encode(ids);
        *self.attention_key.borrow_mut() = Some(ids.to_vec());
    }

    /// Attention matrix of `layer:head` from the most recent
    /// [`MiniBert::encode`] call (1-based layer index to match the paper's
    /// `lf_bert_l:h` naming). Rows/cols include the `[CLS]` position when
    /// the encoded ids did.
    pub fn attention(&self, layer: usize, head: usize) -> Matrix {
        assert!(
            layer >= 1 && layer <= self.blocks.len(),
            "layer out of range"
        );
        self.blocks[layer - 1].attn.last_attention(head)
    }

    /// `(layers, heads)` available for attention probing.
    pub fn attention_grid(&self) -> (usize, usize) {
        (self.blocks.len(), self.config.heads)
    }

    /// Masked-LM logits for a (possibly masked) id sequence: `T×vocab`.
    pub fn mlm_logits(&self, ids: &[usize]) -> Var {
        self.mlm_head.forward(&self.encode(ids))
    }

    /// Masked-LM logits for only the `rows` positions: `|rows|×vocab`.
    /// Equivalent to `mlm_logits(ids).gather_rows(rows)` — the head is
    /// row-wise linear and the kernel computes each output row from its
    /// input row alone — but skips the head forward/backward for every
    /// unmasked position, which is most of the MLM pretraining cost.
    pub fn mlm_logits_rows(&self, ids: &[usize], rows: &[usize]) -> Var {
        self.mlm_head.forward(&self.encode(ids).gather_rows(rows))
    }

    /// Mean-pooled phrase embedding (frozen), e.g. for similarity probes.
    pub fn phrase_embedding(&self, tokens: &[String]) -> Vec<f32> {
        let feats = self.features(tokens);
        if feats.rows() == 0 {
            return vec![0.0; self.config.dim];
        }
        feats
            .sum_rows()
            .scale(1.0 / feats.rows() as f32)
            .data()
            .to_vec()
    }
}

impl MiniBert {
    /// Serialize all parameters (embedding tables, blocks, MLM head) to
    /// bytes with the `saccs-nn` state codec.
    pub fn save_bytes(&self) -> bytes::Bytes {
        saccs_nn::encode_state(&self.state())
    }

    /// Restore parameters from [`MiniBert::save_bytes`] output. The model
    /// must have been constructed with the same config and vocabulary.
    pub fn load_bytes(&self, bytes: &[u8]) -> Result<(), saccs_nn::CodecError> {
        let state = saccs_nn::decode_state(bytes)?;
        self.load_state(&state);
        self.bump_weights_version();
        Ok(())
    }
}

impl Layer for MiniBert {
    fn params(&self) -> Vec<Var> {
        let mut p = self.tok_emb.params();
        p.extend(self.pos_emb.params());
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.mlm_head.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bert() -> MiniBert {
        let vocab = Vocab::from_tokens(
            ["the", "food", "is", "delicious", "staff", "nice", "."]
                .iter()
                .map(|s| s.to_string()),
        );
        MiniBert::new(
            vocab,
            MiniBertConfig {
                dim: 16,
                heads: 2,
                layers: 2,
                max_len: 16,
                seed: 1,
            },
        )
    }

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn encode_shapes() {
        let b = tiny_bert();
        let ids = b.ids(&toks(&["the", "food", "is", "delicious"]));
        assert_eq!(ids.len(), 5); // CLS + 4
        let out = b.encode(&ids);
        assert_eq!(out.shape(), (5, 16));
    }

    #[test]
    fn features_align_with_tokens() {
        let b = tiny_bert();
        let f = b.features(&toks(&["food", "is", "nice"]));
        assert_eq!(f.shape(), (3, 16));
    }

    #[test]
    fn truncation_respects_max_len() {
        let b = tiny_bert();
        let long: Vec<String> = (0..40).map(|_| "the".to_string()).collect();
        let ids = b.ids(&long);
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn attention_is_recorded_per_layer_head() {
        let b = tiny_bert();
        let ids = b.ids(&toks(&["the", "food", "is", "delicious"]));
        let _ = b.encode(&ids);
        let (layers, heads) = b.attention_grid();
        assert_eq!((layers, heads), (2, 2));
        for l in 1..=layers {
            for h in 0..heads {
                let a = b.attention(l, h);
                assert_eq!(a.shape(), (5, 5));
                for r in 0..5 {
                    let s: f32 = a.row(r).iter().sum();
                    assert!((s - 1.0).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn context_changes_embeddings() {
        // The same token in different contexts must embed differently —
        // the whole point of contextual embeddings.
        let b = tiny_bert();
        let f1 = b.features(&toks(&["delicious", "food"]));
        let f2 = b.features(&toks(&["the", "staff", "is", "delicious"]));
        // "delicious" rows:
        let r1 = f1.row(0);
        let r2 = f2.row(3);
        let diff: f32 = r1.iter().zip(r2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3, "contextual embeddings identical");
    }

    #[test]
    fn mlm_logits_cover_vocab() {
        let b = tiny_bert();
        let ids = b.ids(&toks(&["food", "is", "nice"]));
        let logits = b.mlm_logits(&ids);
        assert_eq!(logits.shape(), (4, b.vocab().len()));
    }

    #[test]
    fn phrase_embedding_has_model_dim() {
        let b = tiny_bert();
        let e = b.phrase_embedding(&toks(&["nice", "staff"]));
        assert_eq!(e.len(), 16);
    }

    #[test]
    fn save_load_roundtrip() {
        let a = tiny_bert();
        let ids = a.ids(&toks(&["food", "is", "delicious"]));
        let before = a.encode_frozen(&ids);
        let bytes = a.save_bytes();
        // Wreck the weights, then restore.
        use saccs_nn::layers::Layer;
        for p in a.params() {
            p.update_value(|v| *v = v.scale(0.0));
        }
        assert_ne!(a.encode_frozen(&ids), before);
        a.load_bytes(&bytes).unwrap();
        assert_eq!(a.encode_frozen(&ids), before);
        // Garbage is rejected.
        assert!(a.load_bytes(b"garbage").is_err());
    }

    #[test]
    fn feature_cache_serves_identical_values_and_invalidates() {
        let b = tiny_bert();
        let t = toks(&["food", "is", "nice"]);
        let first = b.features(&t);
        // Second call is a cache hit and must be bit-identical.
        assert_eq!(b.features(&t), first);
        // Out-of-band weight mutation + bump: no stale features.
        for p in b.params() {
            p.update_value(|v| *v = v.scale(0.0));
        }
        b.bump_weights_version();
        assert_ne!(b.features(&t), first);
    }

    #[test]
    fn features_batch_matches_sequential_features() {
        let b = tiny_bert();
        let seqs = vec![
            toks(&["food", "is", "nice"]),
            toks(&["the", "staff"]),
            toks(&["food", "is", "nice"]), // duplicate: served from memo
            toks(&["delicious"]),
        ];
        let batch = b.features_batch(&seqs);
        assert_eq!(batch.len(), seqs.len());
        for (seq, got) in seqs.iter().zip(&batch) {
            assert_eq!(got, &b.features(seq));
        }
    }

    #[test]
    fn features_batch_survives_cap_eviction_of_dedupe_hits() {
        let b = tiny_bert();
        // Prime the cache so this key is a *hit* when the batch dedupes.
        let hot = toks(&["food", "is", "delicious"]);
        let expect = b.features(&hot);
        // More unique misses than the cache cap: the FIFO evicts the hot
        // entry (and the earliest batch entries) before the serve loop
        // runs, so the hot key ends up in neither the cache nor the miss
        // list and must be re-encoded.
        let words = ["the", "food", "is", "delicious", "staff", "nice", "."];
        let mut seqs = vec![hot.clone()];
        for i in 0..(FEATURE_CACHE_CAP + 8) {
            let mut n = i;
            let seq: Vec<String> = (0..5)
                .map(|_| {
                    let w = words[n % words.len()].to_string();
                    n /= words.len();
                    w
                })
                .collect();
            seqs.push(seq);
        }
        let batch = b.features_batch(&seqs);
        assert_eq!(batch[0], expect);
        assert_eq!(batch.len(), seqs.len());
    }

    #[test]
    fn deterministic_construction() {
        let a = tiny_bert();
        let b = tiny_bert();
        let ids = a.ids(&toks(&["food"]));
        assert_eq!(a.encode_frozen(&ids), b.encode_frozen(&ids));
    }
}

//! Int8-quantized MiniBert forward for the probe-side embedding path.
//!
//! [`QuantizedEncoder`] is a read-only snapshot of a trained
//! [`MiniBert`](crate::MiniBert): it copies the weights out of
//! `Layer::state()`, quantizes every projection matrix (the four
//! attention projections, which are bias-free, and the two FFN linears)
//! to per-column symmetric i8 via [`saccs_nn::QuantizedLinear`], and
//! replays the frozen pre-norm forward with integer GEMMs. Embedding
//! lookups, LayerNorm, softmax, the attention×value product, residual
//! adds, and mean pooling stay in f32 — they are cheap and precision
//! critical; the projections are where the FLOPs are.
//!
//! Because the u8×i8→i32 dot is exact integer arithmetic, the quantized
//! forward is bitwise deterministic across SIMD tiers and thread widths.
//! It is *not* bitwise equal to the f32 forward — callers that need
//! bit-exact parity with trained-table regeneration keep
//! [`EncoderPrecision::F32`] (the default), which bypasses this module
//! entirely and calls `MiniBert::phrase_embedding`.

use saccs_nn::{Layer, Matrix, QuantizedLinear};

use crate::model::MiniBert;

/// Which arithmetic the probe-side embedding path uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EncoderPrecision {
    /// Full f32 forward through `MiniBert` — bitwise identical to the
    /// path used when similarity tables were generated. The default.
    #[default]
    F32,
    /// Int8 projections via [`QuantizedEncoder`] — deterministic, ~4×
    /// less weight traffic, small cosine error against f32.
    Int8,
}

/// Per-block weights: quantized projections + f32 norm parameters.
struct QBlock {
    wq: QuantizedLinear,
    wk: QuantizedLinear,
    wv: QuantizedLinear,
    wo: QuantizedLinear,
    ln1_gain: Vec<f32>,
    ln1_bias: Vec<f32>,
    ff1: QuantizedLinear,
    ff2: QuantizedLinear,
    ln2_gain: Vec<f32>,
    ln2_bias: Vec<f32>,
}

/// Frozen int8 snapshot of a MiniBert encoder.
pub struct QuantizedEncoder {
    dim: usize,
    heads: usize,
    tok_emb: Matrix,
    pos_emb: Matrix,
    blocks: Vec<QBlock>,
}

/// LayerNorm eps, matching `saccs_nn::LayerNorm::new`.
const LN_EPS: f32 = 1e-5;

fn zero_bias(n: usize) -> Matrix {
    Matrix::row_vector(vec![0.0; n])
}

fn slice_cols(m: &Matrix, start: usize, end: usize) -> Matrix {
    let rows = m.rows();
    let mut out = Matrix::zeros(rows, end - start);
    for r in 0..rows {
        out.row_mut(r).copy_from_slice(&m.row(r)[start..end]);
    }
    out
}

fn layer_norm(x: &Matrix, gain: &[f32], bias: &[f32]) -> Matrix {
    let (rows, cols) = x.shape();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let row = x.row(r);
        let mu = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / cols as f32;
        let sigma = (var + LN_EPS).sqrt();
        let dst = out.row_mut(r);
        for c in 0..cols {
            dst[c] = (row[c] - mu) / sigma * gain[c] + bias[c];
        }
    }
    out
}

impl QuantizedEncoder {
    /// Snapshot `bert`'s current weights. Call again after further
    /// training; the encoder does not track weight updates.
    pub fn from_bert(bert: &MiniBert) -> Self {
        let cfg = bert.config();
        let dim = cfg.dim;
        let state = bert.state();
        // MiniBert state layout: tok_emb, pos_emb, then per block
        // [wq, wk, wv, wo, ln1.gain, ln1.bias, ff1.w, ff1.b, ff2.w,
        //  ff2.b, ln2.gain, ln2.bias], then mlm_head (w, b) — unused here.
        debug_assert_eq!(state.len(), 2 + 12 * cfg.layers + 2);
        let proj = |m: &Matrix| QuantizedLinear::from_weights(m, &zero_bias(dim));
        let blocks = (0..cfg.layers)
            .map(|l| {
                let s = &state[2 + 12 * l..2 + 12 * (l + 1)];
                QBlock {
                    wq: proj(&s[0]),
                    wk: proj(&s[1]),
                    wv: proj(&s[2]),
                    wo: proj(&s[3]),
                    ln1_gain: s[4].data().to_vec(),
                    ln1_bias: s[5].data().to_vec(),
                    ff1: QuantizedLinear::from_weights(&s[6], &s[7]),
                    ff2: QuantizedLinear::from_weights(&s[8], &s[9]),
                    ln2_gain: s[10].data().to_vec(),
                    ln2_bias: s[11].data().to_vec(),
                }
            })
            .collect();
        QuantizedEncoder {
            dim,
            heads: cfg.heads,
            tok_emb: state[0].clone(),
            pos_emb: state[1].clone(),
            blocks,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    fn attention(&self, block: &QBlock, x: &Matrix) -> Matrix {
        let q = block.wq.forward(x);
        let k = block.wk.forward(x);
        let v = block.wv.forward(x);
        let hd = self.dim / self.heads;
        let scale = 1.0 / (hd as f32).sqrt();
        let mut cat: Option<Matrix> = None;
        for h in 0..self.heads {
            let (c0, c1) = (h * hd, (h + 1) * hd);
            let qh = slice_cols(&q, c0, c1);
            let kh = slice_cols(&k, c0, c1);
            let vh = slice_cols(&v, c0, c1);
            let att = qh.matmul(&kh.transpose()).scale(scale).softmax_rows();
            let out = att.matmul(&vh);
            cat = Some(match cat {
                Some(acc) => acc.hstack(&out),
                None => out,
            });
        }
        block.wo.forward(&cat.expect("at least one attention head"))
    }

    /// Run the frozen encoder over `ids` (the output of
    /// [`MiniBert::ids`], `[CLS]`-prefixed and truncated).
    pub fn encode(&self, ids: &[usize]) -> Matrix {
        let rows = ids.len();
        let mut x = Matrix::zeros(rows, self.dim);
        for (r, &id) in ids.iter().enumerate() {
            let dst = x.row_mut(r);
            for (c, v) in dst.iter_mut().enumerate() {
                *v = self.tok_emb.get(id, c) + self.pos_emb.get(r, c);
            }
        }
        for block in &self.blocks {
            let a = self.attention(block, &layer_norm(&x, &block.ln1_gain, &block.ln1_bias));
            x = x.add(&a);
            let h = layer_norm(&x, &block.ln2_gain, &block.ln2_bias);
            let f = block
                .ff2
                .forward(&block.ff1.forward(&h).map(|v| v.max(0.0)));
            x = x.add(&f);
        }
        x
    }

    /// Mean-pooled phrase vector over the non-`[CLS]` rows — the int8
    /// counterpart of [`MiniBert::phrase_embedding`]. Takes the id
    /// sequence from [`MiniBert::ids`].
    pub fn phrase_embedding(&self, ids: &[usize]) -> Vec<f32> {
        let encoded = self.encode(ids);
        let rows = encoded.rows();
        if rows <= 1 {
            return vec![0.0; self.dim];
        }
        let features = encoded.slice_rows(1, rows);
        features
            .sum_rows()
            .scale(1.0 / features.rows() as f32)
            .data()
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MiniBertConfig;
    use saccs_text::vocab::Vocab;

    fn tiny_bert() -> MiniBert {
        let vocab = Vocab::from_tokens(
            [
                "delicious",
                "food",
                "friendly",
                "staff",
                "terrible",
                "noise",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        MiniBert::new(vocab, MiniBertConfig::default())
    }

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb).max(1e-12)
    }

    #[test]
    fn int8_embedding_stays_close_to_f32() {
        let bert = tiny_bert();
        let qe = QuantizedEncoder::from_bert(&bert);
        for phrase in [
            vec!["delicious", "food"],
            vec!["friendly", "staff"],
            vec!["terrible", "noise", "food"],
            vec!["food"],
        ] {
            let tokens = toks(&phrase);
            let exact = bert.phrase_embedding(&tokens);
            let quant = qe.phrase_embedding(&bert.ids(&tokens));
            let cos = cosine(&exact, &quant);
            assert!(cos > 0.999, "cosine {cos} for {phrase:?}");
        }
    }

    #[test]
    fn int8_embedding_is_deterministic() {
        let bert = tiny_bert();
        let qe = QuantizedEncoder::from_bert(&bert);
        let ids = bert.ids(&toks(&["delicious", "food"]));
        let a = qe.phrase_embedding(&ids);
        let b = qe.phrase_embedding(&ids);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn empty_phrase_embeds_to_zero() {
        let bert = tiny_bert();
        let qe = QuantizedEncoder::from_bert(&bert);
        let ids = bert.ids(&[]);
        assert_eq!(qe.phrase_embedding(&ids), vec![0.0; bert.dim()]);
    }

    #[test]
    fn f32_precision_is_the_default() {
        assert_eq!(EncoderPrecision::default(), EncoderPrecision::F32);
    }
}

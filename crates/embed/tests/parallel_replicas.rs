//! Bitwise determinism of the replica-parallel embed paths across
//! thread counts. If the features drift with `SACCS_THREADS`, everything
//! downstream (tagger, index, table2 nDCG) drifts — so this is checked
//! at the source.
//!
//! One test function on purpose: `saccs_rt::set_threads` is grow-only
//! and process-global, so the width-1 baseline must run before any
//! widening and tests in one binary run concurrently.

use saccs_embed::model::{MiniBert, MiniBertConfig};
use saccs_embed::pretrain::{build_vocab, eval_mlm, general_corpus};
use saccs_text::lexicon::Domain;

fn bert() -> MiniBert {
    MiniBert::new(
        build_vocab(&[Domain::Restaurants]),
        MiniBertConfig {
            dim: 16,
            heads: 2,
            layers: 2,
            max_len: 32,
            seed: 9,
        },
    )
}

#[test]
fn embed_paths_bitwise_identical_across_widths() {
    let corpus = general_corpus(40, 21);

    // Width-1 baselines: the pool has never been widened, so every path
    // below runs inline on this thread.
    let base_feats: Vec<_> = {
        let b = bert();
        corpus.iter().map(|s| b.features(s)).collect()
    };
    let base_eval = eval_mlm(&bert(), &corpus, 0.15, 3);

    for width in [2, 8] {
        saccs_rt::set_threads(width);
        let wide_feats = bert().features_batch(&corpus);
        assert_eq!(base_feats.len(), wide_feats.len());
        for (i, (a, b)) in base_feats.iter().zip(&wide_feats).enumerate() {
            assert!(
                a.data() == b.data(),
                "sentence {i} features diverged at width {width}"
            );
        }
        let wide_eval = eval_mlm(&bert(), &corpus, 0.15, 3);
        assert!(
            base_eval.to_bits() == wide_eval.to_bits(),
            "eval_mlm diverged at width {width}: {base_eval} vs {wide_eval}"
        );
    }
}

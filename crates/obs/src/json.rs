//! Minimal JSON serialization for bench snapshots — enough to write a
//! valid `BENCH_<bin>.json` without a serde dependency.

use crate::metrics::registry;

/// Escape a string for embedding inside a JSON string literal (quotes,
/// backslashes and control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number (`null` for NaN/±∞, which JSON
/// cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serialize the entire global registry plus bench headline metrics as a
/// pretty-printed `BENCH_<bin>.json` document:
///
/// ```json
/// {
///   "schema": 1,
///   "bin": "table2",
///   "headline": {"ndcg_short": 0.93, ...},
///   "counters": {"index.probe.exact": 120, ...},
///   "gauges": {"tagger.epoch_loss": 0.41, ...},
///   "histograms": {"algo1.probe": {"count":30,"p50":1200,...}, ...}
/// }
/// ```
///
/// Histogram values are span durations in nanoseconds.
pub fn bench_snapshot(bin: &str, headline: &[(&str, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"bin\": \"{}\",\n", escape(bin)));

    out.push_str("  \"headline\": {");
    push_entries(
        &mut out,
        headline.iter().map(|(k, v)| ((*k).to_string(), number(*v))),
    );
    out.push_str("},\n");

    out.push_str("  \"counters\": {");
    push_entries(
        &mut out,
        registry()
            .counter_values()
            .into_iter()
            .map(|(k, v)| (k, v.to_string())),
    );
    out.push_str("},\n");

    out.push_str("  \"gauges\": {");
    push_entries(
        &mut out,
        registry()
            .gauge_values()
            .into_iter()
            .map(|(k, v)| (k, number(v))),
    );
    out.push_str("},\n");

    out.push_str("  \"histograms\": {");
    push_entries(
        &mut out,
        registry().histogram_snapshots().into_iter().map(|(k, s)| {
            let body = format!(
                "{{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
                s.count, s.sum, s.min, s.max, s.p50, s.p95, s.p99
            );
            (k, body)
        }),
    );
    out.push_str("}\n");

    out.push_str("}\n");
    out
}

/// Write `"key": value` pairs indented one level inside an object whose
/// opening brace is already emitted.
fn push_entries(out: &mut String, entries: impl Iterator<Item = (String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!("    \"{}\": {}", escape(&k), v));
    }
    if !first {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn number_maps_nonfinite_to_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn snapshot_has_required_top_level_keys() {
        registry().counter("json.test.counter").inc();
        registry().histogram("json.test.hist").record(42);
        let doc = bench_snapshot("unit", &[("ndcg", 0.5)]);
        for key in [
            "\"schema\"",
            "\"bin\"",
            "\"headline\"",
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        assert!(doc.contains("\"json.test.counter\": 1"));
        assert!(doc.contains("\"p50_ns\": 42"));
        // Balanced braces ⇒ at least structurally plausible JSON; the
        // real parse check lives in `xtask check-bench`.
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "unbalanced braces: {doc}"
        );
    }
}

//! `saccs-obs` — zero-dependency tracing + metrics for the SACCS
//! pipeline (stdlib + vendored `parking_lot` only).
//!
//! Three pieces:
//!
//! 1. **Spans** ([`span!`], [`SpanGuard`]): hierarchical RAII-timed
//!    regions. Each exit records its wall duration (nanoseconds) into a
//!    global histogram named after the span, and notifies the installed
//!    exporter. The serving path is instrumented per Algorithm-1 stage
//!    (`algo1.search_api`, `algo1.extract`, `algo1.probe`,
//!    `algo1.aggregate`, `algo1.pad`), the training path per epoch.
//! 2. **Metrics** ([`registry`], [`counter!`]): process-global counters,
//!    gauges and log-bucketed histograms with p50/p95/p99 readout.
//!    Counters are always on (one relaxed atomic add); expensive
//!    measurements (grad norms, per-LF stats) gate on [`enabled`].
//! 3. **Exporters** ([`install`]): a human-readable stderr tree
//!    ([`StderrTree`]), a JSON-lines stream ([`JsonLines`]), and an
//!    in-memory collector for tests ([`InMemoryCollector`]). Bench bins
//!    select one via the `SACCS_OBS` env var and dump the registry as
//!    `BENCH_<bin>.json` through [`json::bench_snapshot`].
//! 4. **Request traces** ([`trace`]): a per-request
//!    [`TraceContext`](trace::TraceContext) with a deterministic u64 id
//!    and a bounded buffer of typed [`TraceEvent`](trace::TraceEvent)s
//!    (stage enter/exit, probe hit-vs-fallback, retry/breaker/deadline/
//!    degradation, admission/shed, queue wait). Contexts are installed
//!    per thread, propagated across `saccs-rt` spawn seams, and folded
//!    into a deterministic [`ObsReport`](report::ObsReport) by the
//!    `saccs-serve` flight recorder.
//!
//! **Zero-cost guarantee**: with no exporter installed *and no live
//! trace context*, a `span!` or trace-event record is one relaxed
//! atomic load (a single packed gate word) returning inert — no clock
//! read, no allocation, no lock — and [`enabled`]-gated measurement is
//! skipped entirely, so default builds pay only stray counter
//! increments.

/// Exporter trait, the packed observability gate, and the three
/// built-in exporters.
pub mod export;
/// Minimal JSON serialization for `BENCH_<bin>.json` snapshots.
pub mod json;
/// Counters, gauges, log-bucketed histograms and the global registry.
pub mod metrics;
/// Flight-recorder report schema and deterministic JSON rendering.
pub mod report;
/// Span guards, thread-local depth and the `span!` macro.
pub mod span;
/// Request-scoped trace contexts and typed trace events.
pub mod trace;

/// Whether an exporter is installed (the gate for expensive metrics).
pub use export::enabled;
/// Flush the installed exporter's buffered output.
pub use export::flush;
/// Install a process-wide exporter and enable span timing.
pub use export::install;
/// Remove the installed exporter and return spans to the inert path.
pub use export::uninstall;
/// The exporter callback trait.
pub use export::Exporter;
/// Test exporter recording every span event in order.
pub use export::InMemoryCollector;
/// Streaming one-JSON-object-per-event exporter.
pub use export::JsonLines;
/// A recorded span enter/exit event.
pub use export::SpanEvent;
/// Human-readable indented span tree on stderr.
pub use export::StderrTree;
/// The global name → instrument registry.
pub use metrics::registry;
/// Monotonic event counter.
pub use metrics::Counter;
/// Last-write-wins `f64` measurement.
pub use metrics::Gauge;
/// Log-bucketed `u64` histogram with quantile readout.
pub use metrics::Histogram;
/// Point-in-time histogram readout (count/sum/min/max/p50/p95/p99).
pub use metrics::HistogramSnapshot;
/// Deterministic flight-recorder report.
pub use report::ObsReport;
/// One completed request trace inside an [`ObsReport`].
pub use report::TraceRecord;
/// RAII span guard returned by [`span!`].
pub use span::SpanGuard;
/// Per-request trace context (deterministic id + bounded event buffer).
pub use trace::TraceContext;
/// Typed per-request trace event.
pub use trace::TraceEvent;

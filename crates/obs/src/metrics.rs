//! The global metrics registry: counters, gauges and log-bucketed
//! histograms with quantile readout.
//!
//! All instruments are lock-free on the record path (plain atomics); the
//! registry itself takes a short `RwLock` only to resolve a name to its
//! instrument, and call sites that care cache the returned `Arc` (the
//! [`counter!`](crate::counter) macro does this behind a `OnceLock`).
//! Everything is process-global: the same names read back from
//! [`registry`] no matter which crate recorded them.
//!
//! [`Histogram`] is an HdrHistogram-style log-bucketed sketch: exact
//! buckets for values `0..16`, then four sub-buckets per power of two up
//! to `u64::MAX` (256 buckets total, ≤ ~19% relative quantile error).
//! Recording is four relaxed atomic adds plus two atomic min/max — safe
//! to leave in serving paths.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` measurement (epoch loss, fire rate, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically add `d` (CAS loop on the f64 bits) — safe for live
    /// up/down gauges (queue depth, in-flight requests) written from
    /// many threads, unlike a read-modify-write around [`set`](Self::set).
    #[inline]
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomically subtract `d` (see [`add`](Self::add)).
    #[inline]
    pub fn sub(&self, d: f64) {
        self.add(-d);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Exact buckets for values below this bound (one bucket per value).
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per power of two above the linear range.
const SUB_PER_OCTAVE: u64 = 4;
/// Total bucket count: 16 linear + 4 × octaves 4..=63.
pub const BUCKET_COUNT: usize = (LINEAR_MAX + (64 - 4) * SUB_PER_OCTAVE) as usize;

/// Bucket index for a recorded value.
pub fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros()); // ≥ 4 here
    let sub = (v >> (msb - 2)) & (SUB_PER_OCTAVE - 1);
    (LINEAR_MAX + (msb - 4) * SUB_PER_OCTAVE + sub) as usize
}

/// Smallest value that lands in bucket `idx` (the round-trip inverse of
/// [`bucket_of`]: `bucket_of(bucket_lower_bound(i)) == i`).
pub fn bucket_lower_bound(idx: usize) -> u64 {
    if (idx as u64) < LINEAR_MAX {
        return idx as u64;
    }
    let b = idx as u64 - LINEAR_MAX;
    let msb = 4 + b / SUB_PER_OCTAVE;
    let sub = b % SUB_PER_OCTAVE;
    (1u64 << msb) | (sub << (msb - 2))
}

/// Log-bucketed histogram of `u64` samples (span durations record
/// nanoseconds). Thread-safe; all updates are relaxed atomics.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty.
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time readout of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// 0 when empty.
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Fold another histogram into this one. Merging is commutative and
    /// associative (bucket-wise addition, min/max of extrema), so shards
    /// recorded on different threads can be combined in any order.
    pub fn merge_from(&self, other: &Histogram) {
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Per-bucket counts (for tests and merge verification).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Approximate value at quantile `q ∈ [0, 1]`: the lower bound of the
    /// bucket holding the `⌈q·count⌉`-th sample, clamped to the observed
    /// `[min, max]`. Returns 0 when empty. Monotone in `q` by
    /// construction (bucket index and clamp are both non-decreasing).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let lo = self.min.load(Ordering::Relaxed);
        let hi = self.max.load(Ordering::Relaxed);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_lower_bound(i).clamp(lo, hi);
            }
        }
        hi
    }

    /// Consistent point-in-time readout (consistent enough for reporting;
    /// concurrent writers may skew fields by a few samples).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// The process-global name → instrument maps.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// The global registry (created on first use).
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().get(name) {
        return Arc::clone(found);
    }
    Arc::clone(map.write().entry(name.to_string()).or_default())
}

impl Registry {
    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram registered under `name` (created on first use).
    /// Span exits record their duration here under the span's name.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// All counters, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All gauges, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        self.gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshots of all histograms, sorted by name.
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Drop every registered instrument (benchmark/test isolation).
    /// `Arc`s handed out earlier keep recording into detached
    /// instruments; subsequent lookups start fresh.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
    }
}

/// A cached counter handle: resolves the registry entry once per call
/// site, then costs a single relaxed atomic add per event.
///
/// ```
/// saccs_obs::counter!("index.probe.exact").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// A cached gauge handle: resolves the registry entry once per call
/// site, then costs one atomic op per update.
///
/// ```
/// saccs_obs::gauge!("serve.queue.depth").add(1.0);
/// saccs_obs::gauge!("serve.queue.depth").sub(1.0);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::metrics::registry().gauge($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn gauge_add_sub_balance_under_8_thread_stress() {
        // Live up/down gauge: 8 threads each add then sub the same
        // amounts; the CAS loop must lose no update, landing back on the
        // initial value exactly (every delta is a small integer, so the
        // f64 arithmetic is exact and order-independent).
        let g = Gauge::new();
        g.set(5.0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let g = &g;
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        g.add(1.0);
                        g.sub(1.0);
                    }
                });
            }
        });
        assert_eq!(g.get(), 5.0);
        g.add(2.5);
        g.sub(1.0);
        assert_eq!(g.get(), 6.5);
    }

    #[test]
    fn saturating_values_land_in_the_top_bucket() {
        // Samples at and near u64::MAX (the span layer clamps overflowing
        // durations to u64::MAX) must stay representable: they land in
        // the final bucket, keep exact count/min/max, and quantiles stay
        // clamped to the observed range instead of overflowing.
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(bucket_lower_bound(BUCKET_COUNT - 1));
        assert_eq!(bucket_of(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(h.bucket_counts()[BUCKET_COUNT - 1], 3);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.min, bucket_lower_bound(BUCKET_COUNT - 1));
        assert!(s.p50 >= s.min && s.p99 <= s.max);
        // Sum wraps are the caller's concern; count/buckets must not.
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn bucket_boundaries_roundtrip_exactly() {
        for idx in 0..BUCKET_COUNT {
            let lo = bucket_lower_bound(idx);
            assert_eq!(bucket_of(lo), idx, "bucket {idx} lower bound {lo}");
            if lo > 0 {
                assert!(
                    bucket_of(lo - 1) == idx - 1 || bucket_of(lo - 1) < idx,
                    "bucket {idx}: value below lower bound did not land lower"
                );
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn single_sample_quantiles_are_the_sample() {
        let h = Histogram::new();
        h.record(1234);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 1234);
        assert_eq!(s.min, 1234);
        assert_eq!(s.max, 1234);
        // One sample: every quantile clamps to [min, max] = {1234}.
        assert_eq!(s.p50, 1234);
        assert_eq!(s.p99, 1234);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        // Log buckets guarantee ≤ ~19% relative error above the linear
        // range (4 sub-buckets per octave ⇒ bucket width ≤ 1/4 of value).
        assert!((375..=625).contains(&p50), "p50 = {p50}");
        assert!((700..=1000).contains(&p95), "p95 = {p95}");
    }

    #[test]
    fn counter_is_atomic_under_8_thread_stress() {
        // Mirrors the shared-index stress style: 8 threads hammer one
        // counter and one histogram; totals must account exactly.
        let c = Counter::new();
        let h = Histogram::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (c, h) = (&c, &h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        c.inc();
                        h.record(t * per_thread + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
        let s = h.snapshot();
        assert_eq!(s.count, threads * per_thread);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, threads * per_thread - 1);
        assert_eq!(
            h.bucket_counts().iter().sum::<u64>(),
            threads * per_thread,
            "bucket counts must account for every sample"
        );
    }

    #[test]
    fn registry_returns_the_same_instrument_per_name() {
        let r = Registry::default();
        r.counter("a").inc();
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 2);
        r.histogram("h").record(7);
        assert_eq!(r.histogram("h").count(), 1);
        assert_eq!(r.counter_values(), vec![("a".to_string(), 2)]);
        r.reset();
        assert_eq!(r.counter("a").get(), 0);
    }

    fn from_values(values: &[u64]) -> Histogram {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    proptest! {
        /// p50 ≤ p95 ≤ p99 ≤ max for any sample set.
        #[test]
        fn prop_quantiles_monotone(values in proptest::collection::vec(0u64..1_000_000_000, 1..200)) {
            let h = from_values(&values);
            let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
            prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
            prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
            prop_assert!(p99 <= h.quantile(1.0));
        }

        /// Quantiles never leave the observed value range.
        #[test]
        fn prop_quantiles_within_range(values in proptest::collection::vec(0u64..u64::MAX / 2, 1..100), q in 0.0f64..=1.0) {
            let h = from_values(&values);
            let v = h.quantile(q);
            let (lo, hi) = (
                *values.iter().min().unwrap(),
                *values.iter().max().unwrap(),
            );
            prop_assert!(v >= lo && v <= hi, "q({q}) = {v} outside [{lo}, {hi}]");
        }

        /// Every value round-trips into a bucket whose bounds contain it.
        #[test]
        fn prop_bucket_contains_value(v in 0u64..u64::MAX) {
            let idx = bucket_of(v);
            prop_assert!(idx < BUCKET_COUNT);
            prop_assert!(bucket_lower_bound(idx) <= v);
            if idx + 1 < BUCKET_COUNT {
                prop_assert!(v < bucket_lower_bound(idx + 1));
            }
        }

        /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) bucket-for-bucket.
        #[test]
        fn prop_merge_associative(
            a in proptest::collection::vec(0u64..1_000_000, 0..50),
            b in proptest::collection::vec(0u64..1_000_000, 0..50),
            c in proptest::collection::vec(0u64..1_000_000, 0..50),
        ) {
            let (ha, hb, hc) = (from_values(&a), from_values(&b), from_values(&c));
            let left = Histogram::new();
            left.merge_from(&ha);
            left.merge_from(&hb); // (a ⊕ b)
            left.merge_from(&hc); // ⊕ c
            let bc = Histogram::new();
            bc.merge_from(&hb);
            bc.merge_from(&hc); // (b ⊕ c)
            let right = Histogram::new();
            right.merge_from(&ha);
            right.merge_from(&bc); // a ⊕
            prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
            prop_assert_eq!(left.snapshot(), right.snapshot());
        }

        /// a ⊕ b == b ⊕ a: identical buckets and identical
        /// `HistogramSnapshot` (count/sum/min/max and every quantile).
        #[test]
        fn prop_merge_commutative(
            a in proptest::collection::vec(0u64..1_000_000, 0..50),
            b in proptest::collection::vec(0u64..1_000_000, 0..50),
        ) {
            let (ha, hb) = (from_values(&a), from_values(&b));
            let ab = Histogram::new();
            ab.merge_from(&ha);
            ab.merge_from(&hb);
            let ba = Histogram::new();
            ba.merge_from(&hb);
            ba.merge_from(&ha);
            prop_assert_eq!(ab.bucket_counts(), ba.bucket_counts());
            prop_assert_eq!(ab.snapshot(), ba.snapshot());
            prop_assert_eq!(
                (ab.quantile(0.5), ab.quantile(0.95), ab.quantile(0.99)),
                (ba.quantile(0.5), ba.quantile(0.95), ba.quantile(0.99))
            );
        }

        /// Merging equals recording the concatenated sample set directly
        /// (same buckets ⇒ same quantiles), for any split of the samples.
        #[test]
        fn prop_merge_matches_direct_recording(
            a in proptest::collection::vec(0u64..1_000_000, 0..50),
            b in proptest::collection::vec(0u64..1_000_000, 0..50),
        ) {
            let merged = Histogram::new();
            merged.merge_from(&from_values(&a));
            merged.merge_from(&from_values(&b));
            let mut all = a.clone();
            all.extend_from_slice(&b);
            let direct = from_values(&all);
            prop_assert_eq!(merged.bucket_counts(), direct.bucket_counts());
            prop_assert_eq!(merged.snapshot(), direct.snapshot());
        }
    }
}

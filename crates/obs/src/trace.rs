//! Request-scoped tracing: a per-request [`TraceContext`] carrying a
//! bounded buffer of typed [`TraceEvent`]s, installed on whichever
//! thread currently works on the request.
//!
//! A context is created per request with a **deterministic** u64 id
//! (derived from request content or assigned by the caller — never from
//! wallclock), handed across concurrency seams as an `Arc`, and
//! installed into a thread-local slot with [`install`] for the duration
//! of a scope. Instrumented code records events through [`record`],
//! which is one relaxed atomic load when no context is alive anywhere
//! in the process (the same packed gate word spans consult, see
//! `export.rs`). Stage spans whose name carries a [`STAGE_PREFIXES`]
//! prefix are forwarded into the active context by `span.rs`; everything
//! else (pool-worker kernels, per-sentence encoders) stays out of the
//! buffer so the event sequence of a request is a deterministic function
//! of the request alone, not of thread interleaving.
//!
//! Timestamps live only in the `nanos` payloads; the *normal form* of an
//! event ([`TraceEvent::normal`]) excludes them, so normalized event
//! sequences are byte-identical across repeated seeded runs.

use crate::export::{gate_trace_dec, gate_trace_inc, tracing_possible};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Span-name prefixes forwarded into the active trace as stage events.
///
/// These spans run strictly sequentially on the thread serving the
/// request, so forwarding them preserves determinism; un-prefixed spans
/// (kernels, encoders) may run on many pool workers at once and are
/// deliberately excluded from the per-request buffer.
pub const STAGE_PREFIXES: [&str; 2] = ["algo1.", "serve."];

/// Default cap on buffered events per request.
pub const DEFAULT_EVENT_CAP: usize = 256;

/// One typed event in a request's trace. All string payloads are
/// `&'static str` (enforced workspace-wide by the `metric-name-literal`
/// audit pass), keeping cardinality bounded and recording allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The request passed admission into the serve queue.
    Admitted,
    /// The request was shed at admission (queue over depth).
    Shed,
    /// Time spent queued before a worker adopted the request.
    QueueWait {
        /// Queue wait in nanoseconds.
        nanos: u64,
    },
    /// A whitelisted stage span opened on the serving thread.
    StageEnter {
        /// Span name (e.g. `algo1.probe`).
        name: &'static str,
    },
    /// The stage span closed.
    StageExit {
        /// Span name (e.g. `algo1.probe`).
        name: &'static str,
        /// Wall duration of the stage.
        nanos: u64,
    },
    /// An index probe resolved exactly (`true`) or via fallback.
    Probe {
        /// Whether the probe hit the exact automaton entry.
        exact: bool,
    },
    /// A fallback probe was answered through the ANN candidate index
    /// instead of the exhaustive scan. All payloads are deterministic
    /// functions of `(index contents, probe tag)`, never of timing.
    ProbeAnn {
        /// Candidate tags returned by the ANN structure.
        candidates: u32,
        /// Candidates whose exact rescore cleared θ_filter.
        rescored: u32,
        /// Cells or graph nodes examined during candidate search.
        visited: u32,
    },
    /// A retry attempt is about to back off and re-run the stage op.
    Retry {
        /// Stage label (`Stage::label()`).
        stage: &'static str,
        /// 1-based attempt number that just failed.
        attempt: u32,
    },
    /// A circuit breaker changed state.
    Breaker {
        /// Stage label owning the breaker.
        stage: &'static str,
        /// New state label (`closed` / `open` / `half-open`).
        to: &'static str,
    },
    /// The per-request deadline was exhausted at this stage.
    DeadlineExhausted {
        /// Stage label where the budget ran out.
        stage: &'static str,
    },
    /// The degradation ladder recorded a step for this request.
    Degraded {
        /// Stage label that failed.
        stage: &'static str,
        /// Ladder action taken (`DegradeAction::label()`).
        action: &'static str,
    },
    /// A review was ingested into the live index.
    Ingest {
        /// Whether the write sealed the mem-segment (`sealed`) or
        /// stayed buffered in it (`buffered`).
        sealed: bool,
    },
    /// A subjective filter compiled and applied to the candidate set
    /// (the `algo1.filter` stage). All payloads are deterministic
    /// functions of `(pinned index, catalog, filter)`, never of timing.
    FilterPlan {
        /// Predicate leaves in the compiled filter.
        leaves: u32,
        /// Candidate entities entering the filter (objective API hits).
        candidates: u32,
        /// Candidates surviving the filter.
        passed: u32,
    },
}

impl TraceEvent {
    /// Normal form: a stable label with every timestamp payload
    /// excluded. Two identical seeded runs produce byte-identical
    /// normal-form sequences even though wall timings differ.
    pub fn normal(&self) -> String {
        let mut s = String::new();
        match self {
            TraceEvent::Admitted => s.push_str("admitted"),
            TraceEvent::Shed => s.push_str("shed"),
            TraceEvent::QueueWait { .. } => s.push_str("queue_wait"),
            TraceEvent::StageEnter { name } => {
                let _ = write!(s, "stage_enter:{name}");
            }
            TraceEvent::StageExit { name, .. } => {
                let _ = write!(s, "stage_exit:{name}");
            }
            TraceEvent::Probe { exact } => {
                let _ = write!(s, "probe:{}", if *exact { "exact" } else { "fallback" });
            }
            TraceEvent::ProbeAnn {
                candidates,
                rescored,
                visited,
            } => {
                let _ = write!(s, "probe_ann:{candidates}:{rescored}:{visited}");
            }
            TraceEvent::Retry { stage, attempt } => {
                let _ = write!(s, "retry:{stage}:{attempt}");
            }
            TraceEvent::Breaker { stage, to } => {
                let _ = write!(s, "breaker:{stage}:{to}");
            }
            TraceEvent::DeadlineExhausted { stage } => {
                let _ = write!(s, "deadline:{stage}");
            }
            TraceEvent::Degraded { stage, action } => {
                let _ = write!(s, "degrade:{stage}:{action}");
            }
            TraceEvent::Ingest { sealed } => {
                let _ = write!(s, "ingest:{}", if *sealed { "sealed" } else { "buffered" });
            }
            TraceEvent::FilterPlan {
                leaves,
                candidates,
                passed,
            } => {
                let _ = write!(s, "filter:{leaves}:{candidates}:{passed}");
            }
        }
        s
    }

    /// Full form: the normal form plus the nanosecond payload where the
    /// event carries one.
    pub fn full(&self) -> String {
        let mut s = self.normal();
        match self {
            TraceEvent::QueueWait { nanos } | TraceEvent::StageExit { nanos, .. } => {
                let _ = write!(s, ":{nanos}ns");
            }
            _ => {}
        }
        s
    }
}

/// Per-stage wall-time totals extracted from a trace, in first-exit
/// order. Attached to `RankResponse` when a request runs under a trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// `(span name, summed nanoseconds)` per distinct stage span.
    pub stages: Vec<(&'static str, u64)>,
}

impl StageTimings {
    /// Summed nanoseconds recorded for `name`, if the stage ran.
    pub fn nanos(&self, name: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

/// A request's trace: deterministic id plus a bounded event buffer.
///
/// Creating a context bumps the process-wide gate so instrumented code
/// starts looking at the thread-local slot; dropping the last `Arc`
/// releases the gate unit. Events past the cap are counted in
/// [`dropped`](Self::dropped) rather than buffered.
pub struct TraceContext {
    id: u64,
    cap: usize,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceContext")
            .field("id", &self.id)
            .field("events", &self.events.lock().len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceContext {
    /// A fresh context for trace id `id` with the default event cap.
    pub fn new(id: u64) -> Arc<TraceContext> {
        TraceContext::with_cap(id, DEFAULT_EVENT_CAP)
    }

    /// A fresh context capping the buffer at `cap` events (min 1).
    pub fn with_cap(id: u64, cap: usize) -> Arc<TraceContext> {
        gate_trace_inc();
        Arc::new(TraceContext {
            id,
            cap: cap.max(1),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        })
    }

    /// The deterministic trace id this context was created with.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Append `event`, or count it as dropped once the buffer is full.
    pub fn record(&self, event: TraceEvent) {
        let mut events = self.events.lock();
        if events.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(event);
    }

    /// Snapshot of the buffered events, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// How many events were discarded after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Fold `StageExit` events into per-stage totals (first-exit order).
    pub fn stage_timings(&self) -> StageTimings {
        let events = self.events.lock();
        let mut stages: Vec<(&'static str, u64)> = Vec::new();
        for event in events.iter() {
            if let TraceEvent::StageExit { name, nanos } = event {
                match stages.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += nanos,
                    None => stages.push((name, *nanos)),
                }
            }
        }
        StageTimings { stages }
    }
}

impl Drop for TraceContext {
    fn drop(&mut self) {
        gate_trace_dec();
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<TraceContext>>> = const { RefCell::new(None) };
}

/// RAII guard restoring the thread's previous context on drop (see
/// [`install`]).
pub struct TraceScope {
    prev: Option<Arc<TraceContext>>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Make `ctx` the current trace context on this thread until the
/// returned guard drops (the previous context, if any, is restored).
pub fn install(ctx: Arc<TraceContext>) -> TraceScope {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
    TraceScope { prev }
}

/// The context currently installed on this thread, if tracing is live.
/// One relaxed load when no context exists anywhere in the process.
#[inline]
pub fn current() -> Option<Arc<TraceContext>> {
    if !tracing_possible() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// The caller's context, for handing to a pool worker across a spawn
/// seam (`saccs-rt` captures this and [`install`]s it in the worker for
/// the task's duration). Same fast path as [`current`].
#[inline]
pub fn propagated() -> Option<Arc<TraceContext>> {
    current()
}

/// Record `event` into the thread's current context, if any. One relaxed
/// atomic load when no context is alive anywhere in the process.
#[inline]
pub fn record(event: TraceEvent) {
    if !tracing_possible() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.record(event);
        }
    });
}

/// Stage timings of the thread's current context ([`current`] +
/// [`TraceContext::stage_timings`]), or `None` when untraced.
pub fn current_stage_timings() -> Option<StageTimings> {
    current().map(|ctx| ctx.stage_timings())
}

/// Whether `name` is a stage span that should be forwarded into the
/// active trace (see [`STAGE_PREFIXES`]).
#[inline]
pub(crate) fn is_stage(name: &str) -> bool {
    STAGE_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// FNV-1a over `bytes`, chained from `seed` (pass 0 to start). Used to
/// derive deterministic trace ids from request content — never from
/// wallclock.
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        seed
    };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_inert_without_context_and_buffers_with_one() {
        // No context anywhere: record() must not blow up (gate fast path).
        record(TraceEvent::Admitted);
        let ctx = TraceContext::new(7);
        {
            let _scope = install(Arc::clone(&ctx));
            record(TraceEvent::Admitted);
            record(TraceEvent::Probe { exact: true });
            assert_eq!(current().map(|c| c.id()), Some(7));
        }
        // Scope dropped: the thread slot is restored.
        record(TraceEvent::Shed);
        assert_eq!(
            ctx.events(),
            vec![TraceEvent::Admitted, TraceEvent::Probe { exact: true }]
        );
        assert_eq!(ctx.dropped(), 0);
    }

    #[test]
    fn install_nests_and_restores_the_previous_context() {
        let outer = TraceContext::new(1);
        let inner = TraceContext::new(2);
        let _outer_scope = install(Arc::clone(&outer));
        {
            let _inner_scope = install(Arc::clone(&inner));
            record(TraceEvent::Probe { exact: false });
        }
        record(TraceEvent::Probe { exact: true });
        assert_eq!(inner.events(), vec![TraceEvent::Probe { exact: false }]);
        assert_eq!(outer.events(), vec![TraceEvent::Probe { exact: true }]);
    }

    #[test]
    fn buffer_cap_counts_overflow_instead_of_growing() {
        let ctx = TraceContext::with_cap(3, 2);
        ctx.record(TraceEvent::Admitted);
        ctx.record(TraceEvent::Shed);
        ctx.record(TraceEvent::Admitted);
        ctx.record(TraceEvent::Admitted);
        assert_eq!(ctx.events().len(), 2);
        assert_eq!(ctx.dropped(), 2);
    }

    #[test]
    fn stage_timings_fold_exits_in_first_exit_order() {
        let ctx = TraceContext::new(9);
        ctx.record(TraceEvent::StageEnter {
            name: "algo1.probe",
        });
        ctx.record(TraceEvent::StageExit {
            name: "algo1.probe",
            nanos: 10,
        });
        ctx.record(TraceEvent::StageExit {
            name: "algo1.rank",
            nanos: 5,
        });
        ctx.record(TraceEvent::StageExit {
            name: "algo1.probe",
            nanos: 7,
        });
        let t = ctx.stage_timings();
        assert_eq!(t.stages, vec![("algo1.probe", 17), ("algo1.rank", 5)]);
        assert_eq!(t.nanos("algo1.rank"), Some(5));
        assert_eq!(t.nanos("algo1.pad"), None);
    }

    #[test]
    fn normal_form_strips_timestamps_full_form_keeps_them() {
        let exit = TraceEvent::StageExit {
            name: "algo1.extract",
            nanos: 1234,
        };
        assert_eq!(exit.normal(), "stage_exit:algo1.extract");
        assert_eq!(exit.full(), "stage_exit:algo1.extract:1234ns");
        let wait = TraceEvent::QueueWait { nanos: 55 };
        assert_eq!(wait.normal(), "queue_wait");
        assert_eq!(wait.full(), "queue_wait:55ns");
        assert_eq!(
            TraceEvent::Retry {
                stage: "probe",
                attempt: 2
            }
            .full(),
            "retry:probe:2"
        );
        assert_eq!(
            TraceEvent::Degraded {
                stage: "search_api",
                action: "objective-only"
            }
            .normal(),
            "degrade:search_api:objective-only"
        );
        // Ingest events carry no timestamps: normal == full.
        let ingest = TraceEvent::Ingest { sealed: true };
        assert_eq!(ingest.normal(), "ingest:sealed");
        assert_eq!(ingest.full(), "ingest:sealed");
        assert_eq!(
            TraceEvent::Ingest { sealed: false }.normal(),
            "ingest:buffered"
        );
        // ANN payloads are deterministic counts, not timings, so they
        // survive into the normal form.
        let ann = TraceEvent::ProbeAnn {
            candidates: 12,
            rescored: 3,
            visited: 40,
        };
        assert_eq!(ann.normal(), "probe_ann:12:3:40");
        assert_eq!(ann.full(), "probe_ann:12:3:40");
        // Filter-plan payloads are likewise deterministic counts.
        let plan = TraceEvent::FilterPlan {
            leaves: 4,
            candidates: 20,
            passed: 7,
        };
        assert_eq!(plan.normal(), "filter:4:20:7");
        assert_eq!(plan.full(), "filter:4:20:7");
    }

    #[test]
    fn hash_bytes_is_deterministic_and_chains() {
        let a = hash_bytes(0, b"cheap tasty ramen");
        let b = hash_bytes(0, b"cheap tasty ramen");
        assert_eq!(a, b);
        assert_ne!(a, hash_bytes(0, b"cheap tasty sushi"));
        assert_ne!(hash_bytes(a, b"x"), hash_bytes(b, b"y"));
    }
}

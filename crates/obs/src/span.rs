//! Hierarchical spans: thread-local depth tracking, monotonic timing and
//! RAII exit guards.
//!
//! A span is entered with [`SpanGuard::enter`] (or the
//! [`span!`](crate::span) macro) and exits when the guard drops. While an
//! exporter is installed ([`crate::install`]), entering pushes the
//! thread-local depth, notifies the exporter, and the exit records the
//! span's wall duration both to the exporter and to the global histogram
//! registered under the span's name. Stage spans (names under
//! [`crate::trace::STAGE_PREFIXES`]) additionally forward enter/exit
//! events — with elapsed nanoseconds — into the thread's current
//! [`TraceContext`](crate::trace::TraceContext), so a traced request
//! keeps timing even when no exporter is installed; trace-only spans
//! skip the registry entirely (the duration rides in the `StageExit`
//! event). With **no exporter installed and no live trace the whole
//! path is one relaxed atomic load and a `None` guard** — no clock
//! read, no allocation, no registry lookup — so instrumented hot paths
//! cost nothing in default builds.

use crate::export::{gate_load, with_exporter, EXPORTER_BIT, TRACE_UNIT};
use crate::trace::{self, TraceContext, TraceEvent};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Depth of the innermost active span on this thread (0 = top level).
pub fn current_depth() -> usize {
    DEPTH.with(Cell::get)
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    depth: usize,
    /// An exporter was installed at enter time.
    exported: bool,
    /// Stage span: the trace context captured at enter time. Exit
    /// records into this same context even if the thread's slot changes
    /// mid-span.
    trace: Option<Arc<TraceContext>>,
}

/// RAII guard for one span; the span exits when this drops.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Enter a span named `name`. Near-free when no exporter is
    /// installed and no trace is live (returns an inert guard).
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        let gate = gate_load();
        if gate == 0 {
            return SpanGuard { active: None };
        }
        SpanGuard::enter_observed(name, gate)
    }

    fn enter_observed(name: &'static str, gate: u64) -> SpanGuard {
        let exported = gate & EXPORTER_BIT != 0;
        let trace = if gate >= TRACE_UNIT && trace::is_stage(name) {
            trace::current()
        } else {
            None
        };
        if !exported && trace.is_none() {
            return SpanGuard { active: None };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        if exported {
            with_exporter(|e| e.span_enter(name, depth));
        }
        if let Some(ctx) = trace.as_deref() {
            ctx.record(TraceEvent::StageEnter { name });
        }
        SpanGuard {
            active: Some(ActiveSpan {
                name,
                start: Instant::now(),
                depth,
                exported,
                trace,
            }),
        }
    }

    /// Whether this guard is actually timing (an exporter was installed
    /// at enter time).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let nanos = u64::try_from(span.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        DEPTH.with(|d| d.set(span.depth));
        if span.exported {
            // The registry lookup is exporter-only: a trace-only span
            // already carries its duration in the StageExit event, and
            // skipping the global map keeps recorder overhead low.
            crate::metrics::registry()
                .histogram(span.name)
                .record(nanos);
            with_exporter(|e| e.span_exit(span.name, span.depth, nanos));
        }
        if let Some(ctx) = span.trace {
            ctx.record(TraceEvent::StageExit {
                name: span.name,
                nanos,
            });
        }
    }
}

/// Enter a span for the rest of the enclosing scope:
///
/// ```
/// let _span = saccs_obs::span!("algo1.probe");
/// ```
///
/// Bind the guard to a named `_`-prefixed local — a bare `let _ =` would
/// drop (and exit) the span immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{install, uninstall, InMemoryCollector, SpanEvent};
    use std::sync::Arc;

    #[test]
    fn disabled_spans_are_inert() {
        // No exporter installed: no depth tracking, inactive guard.
        let g = SpanGuard::enter("noop");
        assert!(!g.is_active());
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn stage_spans_forward_into_the_active_trace_without_an_exporter() {
        let ctx = crate::trace::TraceContext::new(11);
        let _scope = crate::trace::install(Arc::clone(&ctx));
        {
            let _stage = span!("algo1.probe");
            // Not a stage prefix: never enters the per-request buffer.
            let _kernel = span!("nn.matmul");
        }
        let normals: Vec<String> = ctx.events().iter().map(TraceEvent::normal).collect();
        assert_eq!(
            normals,
            vec!["stage_enter:algo1.probe", "stage_exit:algo1.probe"]
        );
        // The exit carried a real duration payload.
        assert!(matches!(
            ctx.events()[1],
            TraceEvent::StageExit {
                name: "algo1.probe",
                ..
            }
        ));
    }

    #[test]
    fn nesting_tracks_depth_and_restores_it() {
        let collector = Arc::new(InMemoryCollector::new());
        install(collector.clone());
        {
            let _outer = span!("outer");
            assert_eq!(current_depth(), 1);
            {
                let _inner = span!("inner");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        uninstall();
        let enters: Vec<(&str, usize)> = collector
            .events()
            .iter()
            .filter_map(|e| match e {
                SpanEvent::Enter { name, depth } => Some((*name, *depth)),
                SpanEvent::Exit { .. } => None,
            })
            .collect();
        assert_eq!(enters, vec![("outer", 0), ("inner", 1)]);
        // Inner exits before outer, and durations land in the registry.
        let exits: Vec<&str> = collector
            .events()
            .iter()
            .filter_map(|e| match e {
                SpanEvent::Exit { name, .. } => Some(*name),
                SpanEvent::Enter { .. } => None,
            })
            .collect();
        assert_eq!(exits, vec!["inner", "outer"]);
        assert!(crate::metrics::registry().histogram("outer").count() >= 1);
    }
}

//! Hierarchical spans: thread-local depth tracking, monotonic timing and
//! RAII exit guards.
//!
//! A span is entered with [`SpanGuard::enter`] (or the
//! [`span!`](crate::span) macro) and exits when the guard drops. While an
//! exporter is installed ([`crate::install`]), entering pushes the
//! thread-local depth, notifies the exporter, and the exit records the
//! span's wall duration both to the exporter and to the global histogram
//! registered under the span's name. With **no exporter installed the
//! whole path is two relaxed atomic loads and a `None` guard** — no
//! clock read, no allocation, no registry lookup — so instrumented hot
//! paths cost nothing in default builds.

use crate::export::{enabled, with_exporter};
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Depth of the innermost active span on this thread (0 = top level).
pub fn current_depth() -> usize {
    DEPTH.with(Cell::get)
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    depth: usize,
}

/// RAII guard for one span; the span exits when this drops.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Enter a span named `name`. Near-free when no exporter is
    /// installed (returns an inert guard).
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard { active: None };
        }
        SpanGuard::enter_enabled(name)
    }

    fn enter_enabled(name: &'static str) -> SpanGuard {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        with_exporter(|e| e.span_enter(name, depth));
        SpanGuard {
            active: Some(ActiveSpan {
                name,
                start: Instant::now(),
                depth,
            }),
        }
    }

    /// Whether this guard is actually timing (an exporter was installed
    /// at enter time).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let nanos = u64::try_from(span.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        DEPTH.with(|d| d.set(span.depth));
        crate::metrics::registry()
            .histogram(span.name)
            .record(nanos);
        with_exporter(|e| e.span_exit(span.name, span.depth, nanos));
    }
}

/// Enter a span for the rest of the enclosing scope:
///
/// ```
/// let _span = saccs_obs::span!("algo1.probe");
/// ```
///
/// Bind the guard to a named `_`-prefixed local — a bare `let _ =` would
/// drop (and exit) the span immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{install, uninstall, InMemoryCollector, SpanEvent};
    use std::sync::Arc;

    #[test]
    fn disabled_spans_are_inert() {
        // No exporter installed: no depth tracking, inactive guard.
        let g = SpanGuard::enter("noop");
        assert!(!g.is_active());
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn nesting_tracks_depth_and_restores_it() {
        let collector = Arc::new(InMemoryCollector::new());
        install(collector.clone());
        {
            let _outer = span!("outer");
            assert_eq!(current_depth(), 1);
            {
                let _inner = span!("inner");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        uninstall();
        let enters: Vec<(&str, usize)> = collector
            .events()
            .iter()
            .filter_map(|e| match e {
                SpanEvent::Enter { name, depth } => Some((*name, *depth)),
                SpanEvent::Exit { .. } => None,
            })
            .collect();
        assert_eq!(enters, vec![("outer", 0), ("inner", 1)]);
        // Inner exits before outer, and durations land in the registry.
        let exits: Vec<&str> = collector
            .events()
            .iter()
            .filter_map(|e| match e {
                SpanEvent::Exit { name, .. } => Some(*name),
                SpanEvent::Enter { .. } => None,
            })
            .collect();
        assert_eq!(exits, vec!["inner", "outer"]);
        assert!(crate::metrics::registry().histogram("outer").count() >= 1);
    }
}

//! Pluggable exporters and the global observability gate.
//!
//! At most one [`Exporter`] is installed process-wide. The gate is a
//! single relaxed [`AtomicU64`] packing two facts: bit 0 says an
//! exporter is installed, and every [`TRACE_UNIT`] above it counts one
//! live [`TraceContext`](crate::trace::TraceContext). Span enters and
//! call sites that want to skip expensive measurement (gradient norms,
//! per-candidate stats) consult the word with one relaxed load: zero
//! means nothing in the process can observe the event, so everything
//! downstream is skipped. Installation is expected at process start
//! (bench bins read `SACCS_OBS`) or inside a single test; exporters
//! themselves must be `Send + Sync`.

use parking_lot::{Mutex, RwLock};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Receives span lifecycle callbacks from instrumented code.
///
/// `depth` is the number of enclosing spans on the emitting thread
/// (0 = top level); `nanos` is the span's wall duration. Implementations
/// run inline on the instrumented thread, so they should stay cheap.
pub trait Exporter: Send + Sync {
    /// A span named `name` opened at nesting `depth`.
    fn span_enter(&self, name: &'static str, depth: usize);
    /// The span closed after `nanos` of wall time.
    fn span_exit(&self, name: &'static str, depth: usize, nanos: u64);
    /// Flush any buffered output (end of process / end of bench).
    fn flush(&self) {}
}

/// Bit 0 of [`GATE`]: an exporter is installed.
pub(crate) const EXPORTER_BIT: u64 = 1;
/// One live `TraceContext` in [`GATE`] (the count lives above bit 0).
pub(crate) const TRACE_UNIT: u64 = 2;

static GATE: AtomicU64 = AtomicU64::new(0);

fn slot() -> &'static RwLock<Option<Arc<dyn Exporter>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Exporter>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// The raw gate word: zero exactly when no exporter is installed and no
/// trace context is alive anywhere in the process.
#[inline]
pub(crate) fn gate_load() -> u64 {
    GATE.load(Ordering::Relaxed)
}

/// Whether an exporter is currently installed. The disabled-path cost of
/// every span and gated measurement in the workspace is exactly this
/// relaxed load.
#[inline]
pub fn enabled() -> bool {
    gate_load() & EXPORTER_BIT != 0
}

/// Whether any `TraceContext` is alive in the process. One relaxed load;
/// typed trace events short-circuit on this before touching the
/// thread-local current-context slot.
#[inline]
pub(crate) fn tracing_possible() -> bool {
    gate_load() >= TRACE_UNIT
}

/// A `TraceContext` came alive (called from its constructor).
pub(crate) fn gate_trace_inc() {
    GATE.fetch_add(TRACE_UNIT, Ordering::AcqRel);
}

/// A `TraceContext` was dropped.
pub(crate) fn gate_trace_dec() {
    GATE.fetch_sub(TRACE_UNIT, Ordering::AcqRel);
}

/// Install `exporter` as the process-wide sink (replacing any previous
/// one) and flip the exporter bit on.
pub fn install(exporter: Arc<dyn Exporter>) {
    *slot().write() = Some(exporter);
    GATE.fetch_or(EXPORTER_BIT, Ordering::Release);
}

/// Flush and remove the installed exporter; spans go back to the inert
/// fast path (live trace contexts, if any, keep their own gate units).
pub fn uninstall() {
    GATE.fetch_and(!EXPORTER_BIT, Ordering::Release);
    let previous = slot().write().take();
    if let Some(e) = previous {
        e.flush();
    }
}

/// Run `f` against the installed exporter, if any.
pub fn with_exporter(f: impl FnOnce(&dyn Exporter)) {
    let guard = slot().read();
    if let Some(e) = guard.as_ref() {
        f(e.as_ref());
    }
}

/// Flush the installed exporter without removing it.
pub fn flush() {
    with_exporter(|e| e.flush());
}

/// Human-readable tree on stderr: one indented line per span exit with
/// its duration. Writes via `std::io::Write` (never `eprintln!` — the
/// `no-print-in-lib` lint bans direct printing in instrumented crates).
#[derive(Debug, Default)]
pub struct StderrTree;

impl Exporter for StderrTree {
    fn span_enter(&self, _name: &'static str, _depth: usize) {}

    fn span_exit(&self, name: &'static str, depth: usize, nanos: u64) {
        let stderr = std::io::stderr();
        let mut out = stderr.lock();
        let _ = writeln!(
            out,
            "[obs] {:indent$}{name} {:.3}ms",
            "",
            nanos as f64 / 1e6,
            indent = depth * 2,
        );
    }

    fn flush(&self) {
        let _ = std::io::stderr().flush();
    }
}

/// Streams one JSON object per span event to any writer (a file, a
/// `Vec<u8>` in tests): `{"ev":"enter",...}` / `{"ev":"exit",...}`.
pub struct JsonLines<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLines<W> {
    /// Wrap `out`; every event becomes one line of JSON on it.
    pub fn new(out: W) -> JsonLines<W> {
        JsonLines {
            out: Mutex::new(out),
        }
    }
}

impl<W: Write + Send> Exporter for JsonLines<W> {
    fn span_enter(&self, name: &'static str, depth: usize) {
        let mut out = self.out.lock();
        let _ = writeln!(
            out,
            "{{\"ev\":\"enter\",\"span\":\"{}\",\"depth\":{depth}}}",
            crate::json::escape(name),
        );
    }

    fn span_exit(&self, name: &'static str, depth: usize, nanos: u64) {
        let mut out = self.out.lock();
        let _ = writeln!(
            out,
            "{{\"ev\":\"exit\",\"span\":\"{}\",\"depth\":{depth},\"ns\":{nanos}}}",
            crate::json::escape(name),
        );
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

/// One recorded span lifecycle event (see [`InMemoryCollector`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEvent {
    /// Span opened at `depth`.
    Enter {
        /// Span name as passed to `span!`.
        name: &'static str,
        /// Enclosing span count on the emitting thread.
        depth: usize,
    },
    /// Span closed after `nanos`.
    Exit {
        /// Span name as passed to `span!`.
        name: &'static str,
        /// Enclosing span count on the emitting thread.
        depth: usize,
        /// Wall duration of the span.
        nanos: u64,
    },
}

/// Test exporter that records every event in order, so tests can assert
/// the exact span tree an instrumented call produces.
#[derive(Debug, Default)]
pub struct InMemoryCollector {
    events: Mutex<Vec<SpanEvent>>,
}

impl InMemoryCollector {
    /// An empty collector (install it, run the code under test, read
    /// [`events`](Self::events)).
    pub fn new() -> InMemoryCollector {
        InMemoryCollector::default()
    }

    /// Everything recorded so far, in arrival order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().clone()
    }

    /// `(name, depth)` of each `Enter` event, in order — the span tree
    /// in preorder.
    pub fn enter_tree(&self) -> Vec<(&'static str, usize)> {
        self.events
            .lock()
            .iter()
            .filter_map(|e| match e {
                SpanEvent::Enter { name, depth } => Some((*name, *depth)),
                SpanEvent::Exit { .. } => None,
            })
            .collect()
    }
}

impl Exporter for InMemoryCollector {
    fn span_enter(&self, name: &'static str, depth: usize) {
        self.events.lock().push(SpanEvent::Enter { name, depth });
    }

    fn span_exit(&self, name: &'static str, depth: usize, nanos: u64) {
        self.events
            .lock()
            .push(SpanEvent::Exit { name, depth, nanos });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_emit_valid_objects() {
        let sink = JsonLines::new(Vec::new());
        sink.span_enter("stage.\"a\"", 0);
        sink.span_exit("stage.\"a\"", 0, 1500);
        let text = String::from_utf8(sink.out.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"ev\":\"enter\",\"span\":\"stage.\\\"a\\\"\",\"depth\":0}"
        );
        assert_eq!(
            lines[1],
            "{\"ev\":\"exit\",\"span\":\"stage.\\\"a\\\"\",\"depth\":0,\"ns\":1500}"
        );
    }

    #[test]
    fn json_lines_survive_eight_writer_threads_untorn() {
        // 8 threads hammer one JsonLines sink; every output line must be
        // exactly one well-formed event object (no torn or interleaved
        // writes) and nothing may be lost. The sink serializes each event
        // under its mutex with a single `writeln!`, which this pins.
        const THREADS: usize = 8;
        const PER_THREAD: usize = 500;
        let sink = std::sync::Arc::new(JsonLines::new(Vec::new()));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let sink = std::sync::Arc::clone(&sink);
                s.spawn(move || {
                    let name: &'static str = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"][t];
                    for i in 0..PER_THREAD {
                        sink.span_enter(name, t);
                        sink.span_exit(name, t, i as u64);
                    }
                });
            }
        });
        let sink = std::sync::Arc::into_inner(sink).expect("all writer threads joined");
        let text = String::from_utf8(sink.out.into_inner()).expect("utf8 output");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), THREADS * PER_THREAD * 2);
        let mut enters = 0usize;
        for line in lines {
            assert!(
                line.starts_with("{\"ev\":\"enter\",\"span\":\"t")
                    || line.starts_with("{\"ev\":\"exit\",\"span\":\"t"),
                "torn line: {line:?}"
            );
            assert!(line.ends_with('}'), "torn line: {line:?}");
            assert_eq!(line.matches("{\"ev\":").count(), 1, "interleaved: {line:?}");
            if line.contains("\"enter\"") {
                enters += 1;
            }
        }
        assert_eq!(enters, THREADS * PER_THREAD);
    }

    #[test]
    fn collector_preserves_order_and_tree() {
        let c = InMemoryCollector::new();
        c.span_enter("a", 0);
        c.span_enter("b", 1);
        c.span_exit("b", 1, 10);
        c.span_exit("a", 0, 20);
        assert_eq!(c.enter_tree(), vec![("a", 0), ("b", 1)]);
        assert_eq!(c.events().len(), 4);
    }
}

//! Pluggable exporters and the global enable switch.
//!
//! At most one [`Exporter`] is installed process-wide. The switch is a
//! single relaxed [`AtomicBool`] checked by every span enter and by
//! call sites that want to skip expensive measurement (gradient norms,
//! per-candidate stats): with nothing installed, [`enabled`] is one
//! atomic load and everything downstream is skipped. Installation is
//! expected at process start (bench bins read `SACCS_OBS`) or inside a
//! single test; exporters themselves must be `Send + Sync`.

use parking_lot::{Mutex, RwLock};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Receives span lifecycle callbacks from instrumented code.
///
/// `depth` is the number of enclosing spans on the emitting thread
/// (0 = top level); `nanos` is the span's wall duration. Implementations
/// run inline on the instrumented thread, so they should stay cheap.
pub trait Exporter: Send + Sync {
    /// A span named `name` opened at nesting `depth`.
    fn span_enter(&self, name: &'static str, depth: usize);
    /// The span closed after `nanos` of wall time.
    fn span_exit(&self, name: &'static str, depth: usize, nanos: u64);
    /// Flush any buffered output (end of process / end of bench).
    fn flush(&self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static RwLock<Option<Arc<dyn Exporter>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Exporter>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Whether an exporter is currently installed. The disabled-path cost of
/// every span and gated measurement in the workspace is exactly this
/// relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `exporter` as the process-wide sink (replacing any previous
/// one) and flip the enable switch on.
pub fn install(exporter: Arc<dyn Exporter>) {
    *slot().write() = Some(exporter);
    ENABLED.store(true, Ordering::Release);
}

/// Flush and remove the installed exporter; spans go back to the inert
/// fast path.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    let previous = slot().write().take();
    if let Some(e) = previous {
        e.flush();
    }
}

/// Run `f` against the installed exporter, if any.
pub fn with_exporter(f: impl FnOnce(&dyn Exporter)) {
    let guard = slot().read();
    if let Some(e) = guard.as_ref() {
        f(e.as_ref());
    }
}

/// Flush the installed exporter without removing it.
pub fn flush() {
    with_exporter(|e| e.flush());
}

/// Human-readable tree on stderr: one indented line per span exit with
/// its duration. Writes via `std::io::Write` (never `eprintln!` — the
/// `no-print-in-lib` lint bans direct printing in instrumented crates).
#[derive(Debug, Default)]
pub struct StderrTree;

impl Exporter for StderrTree {
    fn span_enter(&self, _name: &'static str, _depth: usize) {}

    fn span_exit(&self, name: &'static str, depth: usize, nanos: u64) {
        let stderr = std::io::stderr();
        let mut out = stderr.lock();
        let _ = writeln!(
            out,
            "[obs] {:indent$}{name} {:.3}ms",
            "",
            nanos as f64 / 1e6,
            indent = depth * 2,
        );
    }

    fn flush(&self) {
        let _ = std::io::stderr().flush();
    }
}

/// Streams one JSON object per span event to any writer (a file, a
/// `Vec<u8>` in tests): `{"ev":"enter",...}` / `{"ev":"exit",...}`.
pub struct JsonLines<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLines<W> {
    /// Wrap `out`; every event becomes one line of JSON on it.
    pub fn new(out: W) -> JsonLines<W> {
        JsonLines {
            out: Mutex::new(out),
        }
    }
}

impl<W: Write + Send> Exporter for JsonLines<W> {
    fn span_enter(&self, name: &'static str, depth: usize) {
        let mut out = self.out.lock();
        let _ = writeln!(
            out,
            "{{\"ev\":\"enter\",\"span\":\"{}\",\"depth\":{depth}}}",
            crate::json::escape(name),
        );
    }

    fn span_exit(&self, name: &'static str, depth: usize, nanos: u64) {
        let mut out = self.out.lock();
        let _ = writeln!(
            out,
            "{{\"ev\":\"exit\",\"span\":\"{}\",\"depth\":{depth},\"ns\":{nanos}}}",
            crate::json::escape(name),
        );
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

/// One recorded span lifecycle event (see [`InMemoryCollector`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEvent {
    /// Span opened at `depth`.
    Enter {
        /// Span name as passed to `span!`.
        name: &'static str,
        /// Enclosing span count on the emitting thread.
        depth: usize,
    },
    /// Span closed after `nanos`.
    Exit {
        /// Span name as passed to `span!`.
        name: &'static str,
        /// Enclosing span count on the emitting thread.
        depth: usize,
        /// Wall duration of the span.
        nanos: u64,
    },
}

/// Test exporter that records every event in order, so tests can assert
/// the exact span tree an instrumented call produces.
#[derive(Debug, Default)]
pub struct InMemoryCollector {
    events: Mutex<Vec<SpanEvent>>,
}

impl InMemoryCollector {
    /// An empty collector (install it, run the code under test, read
    /// [`events`](Self::events)).
    pub fn new() -> InMemoryCollector {
        InMemoryCollector::default()
    }

    /// Everything recorded so far, in arrival order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().clone()
    }

    /// `(name, depth)` of each `Enter` event, in order — the span tree
    /// in preorder.
    pub fn enter_tree(&self) -> Vec<(&'static str, usize)> {
        self.events
            .lock()
            .iter()
            .filter_map(|e| match e {
                SpanEvent::Enter { name, depth } => Some((*name, *depth)),
                SpanEvent::Exit { .. } => None,
            })
            .collect()
    }
}

impl Exporter for InMemoryCollector {
    fn span_enter(&self, name: &'static str, depth: usize) {
        self.events.lock().push(SpanEvent::Enter { name, depth });
    }

    fn span_exit(&self, name: &'static str, depth: usize, nanos: u64) {
        self.events
            .lock()
            .push(SpanEvent::Exit { name, depth, nanos });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_emit_valid_objects() {
        let sink = JsonLines::new(Vec::new());
        sink.span_enter("stage.\"a\"", 0);
        sink.span_exit("stage.\"a\"", 0, 1500);
        let text = String::from_utf8(sink.out.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"ev\":\"enter\",\"span\":\"stage.\\\"a\\\"\",\"depth\":0}"
        );
        assert_eq!(
            lines[1],
            "{\"ev\":\"exit\",\"span\":\"stage.\\\"a\\\"\",\"depth\":0,\"ns\":1500}"
        );
    }

    #[test]
    fn collector_preserves_order_and_tree() {
        let c = InMemoryCollector::new();
        c.span_enter("a", 0);
        c.span_enter("b", 1);
        c.span_exit("b", 1, 10);
        c.span_exit("a", 0, 20);
        assert_eq!(c.enter_tree(), vec![("a", 0), ("b", 1)]);
        assert_eq!(c.events().len(), 4);
    }
}

//! The flight-recorder report: aggregated per-stage latency breakdown,
//! typed event counts and exemplar traces, rendered as deterministic
//! JSON through [`crate::json`].
//!
//! An [`ObsReport`] is built from completed [`TraceRecord`]s (the serve
//! flight recorder's ring) and rendered in two forms: **full** keeps
//! every nanosecond payload; **normalized** strips all timing payloads
//! and the latency-selected exemplar bodies, leaving only fields that
//! are a deterministic function of the request stream — so two
//! identical seeded runs render byte-identical normalized reports
//! (byte-diffed in CI and validated by `xtask check-report`).
//!
//! Report ordering is deterministic throughout: traces sort by trace
//! id, aggregates live in `BTreeMap`s, exemplars sort by (latency desc,
//! id asc). Byte-identical normalized output additionally requires the
//! caller to assign **unique** trace ids (the serve path derives them
//! from request content or takes them from `RankRequest::trace_id`).

use crate::json::{escape, number};
use crate::trace::TraceEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One completed request trace, as captured by a flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Deterministic trace id (request-derived or caller-assigned).
    pub id: u64,
    /// End-to-end service time (admission to reply), nanoseconds.
    pub total_ns: u64,
    /// Time spent queued before a worker adopted the request.
    pub queue_ns: u64,
    /// Whether the request completed degraded.
    pub degraded: bool,
    /// Events discarded after the per-request buffer filled.
    pub dropped: u64,
    /// The buffered typed events, in record order.
    pub events: Vec<TraceEvent>,
}

/// Aggregated wall time for one stage across all recorded traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStat {
    /// Number of `StageExit` events folded in.
    pub count: u64,
    /// Summed stage nanoseconds.
    pub sum_ns: u64,
    /// Largest single stage duration.
    pub max_ns: u64,
}

impl StageStat {
    fn fold(&mut self, nanos: u64) {
        self.count += 1;
        self.sum_ns += nanos;
        self.max_ns = self.max_ns.max(nanos);
    }
}

/// Pseudo-stage name under which queue wait is aggregated in
/// [`ObsReport::stages`], keeping it separate from service-time stages.
pub const QUEUE_STAGE: &str = "serve.queue_wait";

/// Deterministic flight-recorder report (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsReport {
    /// Completed requests captured in the ring.
    pub requests: u64,
    /// Requests shed at admission over the report's lifetime.
    pub shed: u64,
    /// Per-stage latency breakdown (plus [`QUEUE_STAGE`]), by name.
    pub stages: BTreeMap<String, StageStat>,
    /// Normal-form event label → occurrence count across all traces.
    pub events: BTreeMap<String, u64>,
    /// All captured traces, sorted by trace id.
    pub traces: Vec<TraceRecord>,
    /// Slowest traces, sorted by (total latency desc, id asc).
    pub exemplars: Vec<TraceRecord>,
}

impl ObsReport {
    /// Aggregate `records` (any order) into a report, keeping the
    /// `exemplars_k` slowest traces as exemplars. `shed` is the number
    /// of requests refused at admission (they never produce a trace).
    pub fn from_traces(mut records: Vec<TraceRecord>, shed: u64, exemplars_k: usize) -> ObsReport {
        records.sort_by_key(|r| r.id);
        let mut stages: BTreeMap<String, StageStat> = BTreeMap::new();
        let mut events: BTreeMap<String, u64> = BTreeMap::new();
        for record in &records {
            stages
                .entry(QUEUE_STAGE.to_string())
                .or_default()
                .fold(record.queue_ns);
            for event in &record.events {
                if let TraceEvent::StageExit { name, nanos } = event {
                    stages.entry((*name).to_string()).or_default().fold(*nanos);
                }
                *events.entry(event.normal()).or_default() += 1;
            }
        }
        let mut exemplars = records.clone();
        exemplars.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.id.cmp(&b.id)));
        exemplars.truncate(exemplars_k);
        ObsReport {
            requests: records.len() as u64,
            shed,
            stages,
            events,
            traces: records,
            exemplars,
        }
    }

    /// Render as a JSON document. `normalized` strips every nanosecond
    /// payload and replaces the exemplar bodies with their count, making
    /// the output byte-identical across identical seeded runs.
    pub fn render(&self, normalized: bool) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str("  \"kind\": \"obs-report\",\n");
        let _ = writeln!(out, "  \"normalized\": {normalized},");
        let _ = writeln!(out, "  \"requests\": {},", self.requests);
        let _ = writeln!(out, "  \"shed\": {},", self.shed);

        out.push_str("  \"stages\": {");
        let mut first = true;
        for (name, stat) in &self.stages {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            if normalized {
                let _ = write!(
                    out,
                    "    \"{}\": {{\"count\": {}}}",
                    escape(name),
                    stat.count
                );
            } else {
                let mean = if stat.count == 0 {
                    0.0
                } else {
                    stat.sum_ns as f64 / stat.count as f64
                };
                let _ = write!(
                    out,
                    "    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}}}",
                    escape(name),
                    stat.count,
                    stat.sum_ns,
                    stat.max_ns,
                    number(mean)
                );
            }
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"events\": {");
        let mut first = true;
        for (label, count) in &self.events {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let _ = write!(out, "    \"{}\": {count}", escape(label));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"traces\": [");
        let mut first = true;
        for record in &self.traces {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str("    ");
            render_trace(&mut out, record, normalized);
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });

        if normalized {
            let _ = writeln!(out, "  \"exemplars\": {}", self.exemplars.len());
        } else {
            out.push_str("  \"exemplars\": [");
            let mut first = true;
            for record in &self.exemplars {
                out.push_str(if first { "\n" } else { ",\n" });
                first = false;
                out.push_str("    ");
                render_trace(&mut out, record, normalized);
            }
            out.push_str(if first { "]\n" } else { "\n  ]\n" });
        }
        out.push_str("}\n");
        out
    }
}

fn render_trace(out: &mut String, record: &TraceRecord, normalized: bool) {
    let _ = write!(out, "{{\"id\": {}", record.id);
    if !normalized {
        let _ = write!(
            out,
            ", \"total_ns\": {}, \"queue_ns\": {}",
            record.total_ns, record.queue_ns
        );
    }
    let _ = write!(
        out,
        ", \"degraded\": {}, \"dropped\": {}, \"events\": [",
        record.degraded, record.dropped
    );
    for (i, event) in record.events.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let form = if normalized {
            event.normal()
        } else {
            event.full()
        };
        let _ = write!(out, "\"{}\"", escape(&form));
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, total: u64, queue: u64, degraded: bool) -> TraceRecord {
        TraceRecord {
            id,
            total_ns: total,
            queue_ns: queue,
            degraded,
            dropped: 0,
            events: vec![
                TraceEvent::Admitted,
                TraceEvent::QueueWait { nanos: queue },
                TraceEvent::StageEnter {
                    name: "algo1.probe",
                },
                TraceEvent::StageExit {
                    name: "algo1.probe",
                    nanos: total / 2,
                },
                TraceEvent::Probe { exact: !degraded },
            ],
        }
    }

    #[test]
    fn aggregates_sort_and_select_exemplars_deterministically() {
        let report = ObsReport::from_traces(
            vec![
                record(2, 100, 10, false),
                record(0, 300, 30, true),
                record(1, 200, 20, false),
            ],
            1,
            2,
        );
        assert_eq!(report.requests, 3);
        assert_eq!(report.shed, 1);
        let ids: Vec<u64> = report.traces.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let exemplar_ids: Vec<u64> = report.exemplars.iter().map(|t| t.id).collect();
        assert_eq!(exemplar_ids, vec![0, 1], "slowest first, capped at k");
        let probe = &report.stages["algo1.probe"];
        assert_eq!(probe.count, 3);
        assert_eq!(probe.sum_ns, 50 + 150 + 100);
        assert_eq!(probe.max_ns, 150);
        let queue = &report.stages[QUEUE_STAGE];
        assert_eq!(queue.count, 3);
        assert_eq!(queue.sum_ns, 60);
        assert_eq!(report.events["probe:exact"], 2);
        assert_eq!(report.events["probe:fallback"], 1);
        assert_eq!(report.events["admitted"], 3);
    }

    #[test]
    fn normalized_render_strips_every_nanosecond_payload() {
        let report = ObsReport::from_traces(vec![record(0, 500, 50, false)], 0, 1);
        let normalized = report.render(true);
        assert!(!normalized.contains("_ns"), "timing leaked:\n{normalized}");
        assert!(!normalized.contains("ns\""), "timing leaked:\n{normalized}");
        assert!(normalized.contains("\"exemplars\": 1"));
        assert!(normalized.contains("\"queue_wait\""));
        let full = report.render(false);
        assert!(full.contains("\"total_ns\": 500"));
        assert!(full.contains("\"queue_ns\": 50"));
        assert!(full.contains("queue_wait:50ns"));
        assert!(full.contains("\"exemplars\": ["));
    }

    #[test]
    fn identical_inputs_render_byte_identical_reports() {
        let build = || {
            ObsReport::from_traces(
                vec![record(1, 200, 20, false), record(0, 300, 30, true)],
                2,
                1,
            )
        };
        assert_eq!(build().render(true), build().render(true));
        assert_eq!(build().render(false), build().render(false));
        // Balanced braces/brackets: structural sanity before the real
        // parse in `xtask check-report`.
        let doc = build().render(false);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn empty_report_renders_valid_empty_collections() {
        let report = ObsReport::from_traces(Vec::new(), 0, 4);
        let doc = report.render(true);
        assert!(doc.contains("\"requests\": 0"));
        assert!(doc.contains("\"stages\": {}"));
        assert!(doc.contains("\"traces\": []"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}

//! `saccs-serve` — a synchronous multi-worker serving front end for
//! [`SaccsService`].
//!
//! The service's whole rank path is `&self` (atomic breakers, mutexed
//! probe history, per-thread extractor replicas), so one instance
//! behind an [`Arc`] can serve any number of threads. This crate adds
//! the machinery a front end needs on top of that:
//!
//! * **Bounded admission.** Requests enter a FIFO queue of configurable
//!   depth ([`ServeConfig::queue_depth`]). Past the limit the server
//!   *sheds*: [`SaccsServer::submit`] returns
//!   `SaccsError::Unavailable { stage: Admission }` immediately instead
//!   of letting the queue (and every queued request's latency) grow
//!   without bound. Sheds are counted on `serve.shed`.
//! * **Micro-batched extraction.** Each worker tick claims up to
//!   [`ServeConfig::batch`] queued requests and pre-warms the encoder's
//!   feature memo across *all* their utterances in one
//!   `features_batch` call before serving them one by one. Batched and
//!   unbatched extraction are bitwise identical (the batch kernel's
//!   contract), so batching changes throughput, never results.
//! * **Admission-time deadlines.** The per-request
//!   [`DeadlineClock`](saccs_core::resilient::DeadlineClock) starts
//!   when the request is *admitted*, not when a worker picks it up —
//!   time spent queued counts against the budget configured in the
//!   service's `ResilienceConfig`, so an overloaded server degrades to
//!   partial results instead of silently serving stale full ones.
//!
//! Workers are dedicated OS threads ([`saccs_rt::spawn_worker`]), not
//! pool tasks: they park on a condvar between requests, which would
//! starve the work-stealing pool that the extraction kernels
//! themselves fan out on.
//!
//! Determinism: replies are bitwise identical to calling
//! [`SaccsService::rank_request`] serially, at every worker count and
//! batch size — the concurrency tests in `tests/serve.rs` pin this.

/// Flight recorder: completed-trace ring + slow-exemplar reservoir.
pub mod recorder;

/// Re-exported so callers can configure the recorder without importing
/// the module.
pub use recorder::{FlightRecorder, RecorderConfig};

use saccs_core::request::RankInput;
use saccs_core::resilient::DeadlineClock;
use saccs_core::{RankRequest, RankResponse, SaccsError, SaccsService, SearchApi, Stage};
use saccs_data::Entity;
use saccs_index::IngestReceipt;
use saccs_obs::report::ObsReport;
use saccs_obs::trace::{self, TraceContext, TraceEvent};
use saccs_text::SubjectiveTag;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Recover the guard from a poisoned lock: a worker that panicked while
/// holding it cannot leave the server dead (same policy as `saccs-rt`).
fn relock<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Front-end tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads sharing the one service instance.
    pub workers: usize,
    /// Maximum queued (admitted but not yet claimed) requests; further
    /// submissions are shed.
    pub queue_depth: usize,
    /// Maximum requests one worker tick claims and warm-batches.
    pub batch: usize,
    /// Install a flight recorder: every admitted request runs under a
    /// [`TraceContext`] and its completed trace lands in the recorder's
    /// ring. `None` (the default) keeps the single-atomic-load inert
    /// fast path — rankings are bitwise identical either way.
    pub recorder: Option<RecorderConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_depth: 64,
            batch: 4,
            recorder: None,
        }
    }
}

impl ServeConfig {
    /// Enable the flight recorder with `config`.
    pub fn with_recorder(mut self, config: RecorderConfig) -> Self {
        self.recorder = Some(config);
        self
    }

    fn sanitized(self) -> ServeConfig {
        ServeConfig {
            workers: self.workers.max(1),
            queue_depth: self.queue_depth.max(1),
            batch: self.batch.max(1),
            recorder: self.recorder.map(RecorderConfig::sanitized),
        }
    }
}

/// Counters accumulated over the server's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests rejected at admission (queue full or shut down).
    pub shed: u64,
    /// Rank requests completed by a worker.
    pub served: u64,
    /// Ingest jobs completed by a worker.
    pub ingested: u64,
    /// Worker ticks that warm-batched more than one sentence.
    pub batched_warms: u64,
}

/// What a worker hands back through a [`ReplySlot`]: a rank response or
/// an ingest receipt, matching the submitted [`JobInput`] kind.
enum Reply {
    Rank(RankResponse),
    Ingest(Result<IngestReceipt, SaccsError>),
}

/// One caller's rendezvous with the worker that serves its request.
struct ReplySlot {
    result: Mutex<Option<Reply>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new() -> ReplySlot {
        ReplySlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn complete(&self, reply: Reply) {
        *relock(self.result.lock()) = Some(reply);
        self.ready.notify_one();
    }

    fn wait(&self) -> Reply {
        let mut guard = relock(self.result.lock());
        loop {
            match guard.take() {
                Some(reply) => return reply,
                None => guard = relock(self.ready.wait(guard)),
            }
        }
    }
}

/// The work carried by an admitted job: a rank request, or a review to
/// ingest into the service's live index. Both kinds flow through the
/// same bounded queue, so overload sheds rank and ingest traffic alike.
enum JobInput {
    Rank(RankRequest),
    Ingest {
        entity_id: usize,
        review_tags: Vec<SubjectiveTag>,
    },
}

/// An admitted request waiting for a worker.
struct Job {
    input: JobInput,
    /// Started at admission: queue time spends the deadline budget.
    clock: DeadlineClock,
    reply: Arc<ReplySlot>,
    /// The request's trace context (recorder enabled only), created at
    /// admission and adopted by whichever worker serves the request.
    trace: Option<Arc<TraceContext>>,
}

struct State {
    queue: VecDeque<Job>,
    /// Test hook: a paused server admits (and sheds) but does not serve,
    /// making queue-depth and batching behavior deterministic.
    paused: bool,
    shutdown: bool,
}

struct Shared {
    service: Arc<SaccsService>,
    entities: Vec<Entity>,
    config: ServeConfig,
    state: Mutex<State>,
    /// Workers park here when the queue is empty or the server paused.
    work: Condvar,
    submitted: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
    ingested: AtomicU64,
    batched_warms: AtomicU64,
    /// Present iff `config.recorder` is set.
    recorder: Option<Arc<FlightRecorder>>,
    /// The report cut at shutdown, after the queue drained.
    final_report: Mutex<Option<ObsReport>>,
}

impl Shared {
    /// Shared admission path for both job kinds: one bounded queue, one
    /// shed policy, one deadline clock started at admission.
    fn admit(&self, input: JobInput) -> Result<Reply, SaccsError> {
        let clock = DeadlineClock::start(self.service.resilience().deadline);
        let reply = Arc::new(ReplySlot::new());
        // Trace ids are deterministic (caller-assigned or derived from
        // request content) — never wallclock — so recorder reports are a
        // pure function of the request stream.
        let trace = self.recorder.as_ref().and_then(|rec| match &input {
            JobInput::Rank(request) => {
                let ctx =
                    TraceContext::with_cap(request.trace_key(), rec.config().events_per_trace);
                ctx.record(TraceEvent::Admitted);
                Some(ctx)
            }
            // Ingest jobs are not rank-shaped, so they stay out of the
            // recorder ring; their `ingest` trace events land in
            // whatever context the ingesting caller installs.
            JobInput::Ingest { .. } => None,
        });
        {
            let mut st = relock(self.state.lock());
            if st.shutdown || st.queue.len() >= self.config.queue_depth {
                drop(st);
                self.shed.fetch_add(1, Ordering::Relaxed);
                saccs_obs::counter!("serve.shed").inc();
                if let Some(rec) = &self.recorder {
                    rec.note_shed();
                }
                return Err(SaccsError::Unavailable {
                    stage: Stage::Admission,
                });
            }
            st.queue.push_back(Job {
                input,
                clock,
                reply: Arc::clone(&reply),
                trace,
            });
        }
        saccs_obs::gauge!("serve.queue.depth").add(1.0);
        saccs_obs::gauge!("serve.inflight").add(1.0);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        saccs_obs::counter!("serve.submitted").inc();
        self.work.notify_one();
        Ok(reply.wait())
    }

    fn submit(&self, request: RankRequest) -> Result<RankResponse, SaccsError> {
        match self.admit(JobInput::Rank(request))? {
            Reply::Rank(response) => Ok(response),
            // A rank job always completes with a rank reply; treat a
            // mismatch as a shed rather than panicking a caller thread.
            Reply::Ingest(_) => Err(SaccsError::Unavailable {
                stage: Stage::Admission,
            }),
        }
    }

    fn submit_ingest(
        &self,
        entity_id: usize,
        review_tags: Vec<SubjectiveTag>,
    ) -> Result<IngestReceipt, SaccsError> {
        saccs_obs::counter!("serve.ingest.submitted").inc();
        match self.admit(JobInput::Ingest {
            entity_id,
            review_tags,
        })? {
            Reply::Ingest(result) => result,
            Reply::Rank(_) => Err(SaccsError::Unavailable {
                stage: Stage::Admission,
            }),
        }
    }

    /// Pre-warm this worker's extractor replica across every utterance
    /// in the claimed batch: one deduped `features_batch` forward
    /// instead of per-request singles. Values are bitwise identical
    /// either way; only the wall-clock changes.
    fn warm_batch(&self, batch: &[Job]) {
        if batch.len() < 2 {
            return;
        }
        let Some(extractor) = self.service.extractor() else {
            return;
        };
        let mut sentences: Vec<Vec<String>> = Vec::new();
        for job in batch {
            if let JobInput::Rank(request) = &job.input {
                if let RankInput::Utterance(utterance) = &request.input {
                    sentences.extend(saccs_core::extractor::sentence_tokens(utterance));
                }
            }
        }
        if sentences.len() > 1 {
            self.batched_warms.fetch_add(1, Ordering::Relaxed);
            saccs_obs::counter!("serve.batched_warm").inc();
            extractor.with_replica(|ex| ex.warm_features(&sentences));
        }
    }

    fn worker_loop(&self) {
        let api = SearchApi::new(&self.entities);
        loop {
            let batch: Vec<Job> = {
                let mut st = relock(self.state.lock());
                loop {
                    if st.shutdown && st.queue.is_empty() {
                        return;
                    }
                    if !st.paused && !st.queue.is_empty() {
                        break;
                    }
                    st = relock(self.work.wait(st));
                }
                let n = self.config.batch.min(st.queue.len());
                st.queue.drain(..n).collect()
            };
            saccs_obs::gauge!("serve.queue.depth").sub(batch.len() as f64);
            self.warm_batch(&batch);
            for job in batch {
                let Job {
                    input,
                    clock,
                    reply,
                    trace: job_trace,
                } = job;
                // Queue wait is time on the admission clock before this
                // worker adopted the job — attributed separately from
                // service time in the trace. (DeadlineClock, not a fresh
                // Instant: queue time already spends the budget.)
                let queue_ns = job_trace.as_ref().map(|ctx| {
                    let nanos = u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    ctx.record(TraceEvent::QueueWait { nanos });
                    nanos
                });
                match input {
                    JobInput::Rank(request) => {
                        let response = {
                            // Adopt the request's trace for the duration of
                            // the rank call so every stage span and fault
                            // event lands in the owning request's buffer.
                            let _scope = job_trace
                                .as_ref()
                                .map(|ctx| trace::install(Arc::clone(ctx)));
                            self.service.rank_request_at(&request, &api, clock)
                        };
                        if let (Some(rec), Some(ctx)) = (&self.recorder, &job_trace) {
                            rec.complete(ctx, &response, queue_ns.unwrap_or(0));
                        }
                        self.served.fetch_add(1, Ordering::Relaxed);
                        saccs_obs::counter!("serve.served").inc();
                        reply.complete(Reply::Rank(response));
                    }
                    JobInput::Ingest {
                        entity_id,
                        review_tags,
                    } => {
                        let result = self.service.ingest(entity_id, &review_tags);
                        self.ingested.fetch_add(1, Ordering::Relaxed);
                        saccs_obs::counter!("serve.ingest.served").inc();
                        reply.complete(Reply::Ingest(result));
                    }
                }
                saccs_obs::gauge!("serve.inflight").sub(1.0);
            }
        }
    }
}

/// The serving front end: `workers` threads sharing one
/// [`SaccsService`] through a bounded, sheddable admission queue.
pub struct SaccsServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SaccsServer {
    /// Start `config.workers` worker threads over `service`. The server
    /// owns the entity table the objective `SearchApi` answers from
    /// (each worker builds its own borrow of it).
    pub fn start(
        service: Arc<SaccsService>,
        entities: Vec<Entity>,
        config: ServeConfig,
    ) -> SaccsServer {
        let config = config.sanitized();
        let workers = config.workers;
        let recorder = config.recorder.map(|rc| Arc::new(FlightRecorder::new(rc)));
        let shared = Arc::new(Shared {
            service,
            entities,
            config,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                paused: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            submitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            ingested: AtomicU64::new(0),
            batched_warms: AtomicU64::new(0),
            recorder,
            final_report: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                saccs_rt::spawn_worker(&format!("serve-{i}"), move || shared.worker_loop())
            })
            .collect();
        SaccsServer {
            shared,
            workers: handles,
        }
    }

    /// Submit one request and block until it is served (or shed).
    ///
    /// Sheds — queue at capacity, or server shut down — return
    /// `SaccsError::Unavailable { stage: Admission }` without touching
    /// Algorithm 1. Malformed requests (bad filter DSL, non-finite
    /// boost, zero `top_k`) are rejected at the `sanitized()` seam as
    /// `SaccsError::InvalidRequest` before admission — a bad request is
    /// a typed error to the caller, never a queued job. Admitted
    /// requests always return a [`RankResponse`]; stage failures
    /// surface as degradation events inside it, exactly as
    /// [`SaccsService::rank_request`] reports them.
    pub fn submit(&self, request: RankRequest) -> Result<RankResponse, SaccsError> {
        self.shared.submit(request.sanitized()?)
    }

    /// Submit one review for ingestion into the service's live index and
    /// block until a worker applied it. Goes through the same bounded
    /// admission queue as rank traffic — overload sheds both alike with
    /// `SaccsError::Unavailable { stage: Admission }`. On a service
    /// without a live backend the job is admitted and then fails with
    /// `Unavailable { stage: Ingest }`.
    pub fn submit_ingest(
        &self,
        entity_id: usize,
        review_tags: Vec<SubjectiveTag>,
    ) -> Result<IngestReceipt, SaccsError> {
        self.shared.submit_ingest(entity_id, review_tags)
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<SaccsService> {
        &self.shared.service
    }

    /// Admitted-but-unclaimed requests right now.
    pub fn queue_len(&self) -> usize {
        relock(self.shared.state.lock()).queue.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            served: self.shared.served.load(Ordering::Relaxed),
            ingested: self.shared.ingested.load(Ordering::Relaxed),
            batched_warms: self.shared.batched_warms.load(Ordering::Relaxed),
        }
    }

    /// Stop claiming queued requests (admission and shedding continue).
    /// Tests use this to fill the queue to an exact depth before
    /// releasing the workers with [`SaccsServer::resume`].
    pub fn pause(&self) {
        relock(self.shared.state.lock()).paused = true;
    }

    /// Resume claiming queued requests.
    pub fn resume(&self) {
        relock(self.shared.state.lock()).paused = false;
        self.shared.work.notify_all();
    }

    /// The installed flight recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.shared.recorder.as_ref()
    }

    /// Cut an on-demand report from the flight recorder (recorder
    /// enabled only): everything still in the ring right now, plus the
    /// slow-exemplar reservoir.
    pub fn obs_report(&self) -> Option<ObsReport> {
        self.shared.recorder.as_ref().map(|rec| rec.report())
    }

    /// The report cut once at shutdown, after the queue drained and the
    /// workers exited. `None` before shutdown or without a recorder.
    pub fn final_report(&self) -> Option<ObsReport> {
        relock(self.shared.final_report.lock()).clone()
    }

    /// Drain the queue and stop the workers. Queued requests are still
    /// served; new submissions shed. Called automatically on drop.
    pub fn shutdown(&mut self) {
        {
            let mut st = relock(self.shared.state.lock());
            st.shutdown = true;
            st.paused = false;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(rec) = &self.shared.recorder {
            let mut slot = relock(self.shared.final_report.lock());
            if slot.is_none() {
                *slot = Some(rec.report());
            }
        }
    }
}

impl Drop for SaccsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_core::{RankRequest, SaccsConfig};
    use saccs_index::index::{EntityEvidence, IndexConfig};
    use saccs_index::SubjectiveIndex;
    use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    /// Index-only service (no extractor): tags-input requests exercise
    /// the whole queue/shed/serve machinery without model training.
    fn service() -> Arc<SaccsService> {
        let mut idx = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig::default(),
        );
        for (entity_id, tags) in [
            (0, vec![tag("delicious", "food"), tag("friendly", "staff")]),
            (1, vec![tag("delicious", "food")]),
            (2, vec![tag("friendly", "staff")]),
        ] {
            idx.register_entity(EntityEvidence {
                entity_id,
                review_count: 5,
                review_tags: tags,
            });
        }
        idx.index_tags(&[tag("delicious", "food"), tag("nice", "staff")]);
        Arc::new(SaccsService::index_only(idx, SaccsConfig::default()))
    }

    fn entities(n: usize) -> Vec<Entity> {
        use rand::{rngs::StdRng, SeedableRng};
        let lex = Lexicon::new(Domain::Restaurants);
        let mut rng = StdRng::seed_from_u64(5);
        (0..n).map(|i| Entity::sample(i, &lex, &mut rng)).collect()
    }

    fn request() -> RankRequest {
        RankRequest::tags(vec![tag("delicious", "food"), tag("nice", "staff")])
    }

    #[test]
    fn served_reply_matches_direct_rank_request() {
        let svc = service();
        let ents = entities(3);
        let expected = {
            let api = SearchApi::new(&ents);
            svc.rank_request(&request(), &api).results
        };
        let server = SaccsServer::start(Arc::clone(&svc), ents, ServeConfig::default());
        let response = server.submit(request()).expect("admitted");
        assert_eq!(response.results, expected);
        assert!(response.is_full_fidelity());
        assert_eq!(server.stats().served, 1);
    }

    #[test]
    fn paused_server_sheds_past_queue_depth() {
        let server = SaccsServer::start(
            service(),
            entities(3),
            ServeConfig {
                workers: 1,
                queue_depth: 2,
                batch: 4,
                ..ServeConfig::default()
            },
        );
        server.pause();
        // Fill the queue to exactly `queue_depth` from helper threads
        // (submit blocks until served, so the fillers stay parked).
        let server = Arc::new(server);
        let mut fillers = Vec::new();
        for i in 0..2 {
            let server = Arc::clone(&server);
            fillers.push(saccs_rt::spawn_worker(
                &format!("test-fill-{i}"),
                move || {
                    let response = server.submit(request());
                    assert!(response.is_ok(), "queued request was shed");
                },
            ));
        }
        while server.queue_len() < 2 {
            std::thread::yield_now();
        }
        // The queue is full: the next submission sheds immediately.
        let shed = server.submit(request());
        assert_eq!(
            shed.expect_err("must shed").stage(),
            Stage::Admission,
            "shed error must be attributed to admission"
        );
        assert_eq!(server.stats().shed, 1);
        server.resume();
        for f in fillers {
            f.join().expect("filler thread");
        }
        assert_eq!(server.stats().served, 2);
        assert_eq!(server.stats().submitted, 2);
    }

    #[test]
    fn shutdown_drains_queued_requests_then_sheds_new_ones() {
        let server = SaccsServer::start(service(), entities(3), ServeConfig::default());
        server.pause();
        let server = Arc::new(server);
        let (tx, rx) = std::sync::mpsc::channel();
        let filler = {
            let server = Arc::clone(&server);
            saccs_rt::spawn_worker("test-fill", move || {
                let response = server.submit(request()).expect("drained on shutdown");
                tx.send(response).expect("send response");
            })
        };
        while server.queue_len() < 1 {
            std::thread::yield_now();
        }
        // Drop the only other handle: Drop::drop runs shutdown, which
        // must serve the queued request before the workers exit.
        // (Arc::try_unwrap fails while the filler holds a clone, so
        // signal shutdown through the state instead.)
        {
            let mut st = relock(server.shared.state.lock());
            st.shutdown = true;
            st.paused = false;
        }
        server.shared.work.notify_all();
        filler.join().expect("filler thread");
        let response = rx.recv().expect("response delivered");
        assert!(!response.results.is_empty());
        let post = server.submit(request());
        assert_eq!(post.expect_err("shut down").stage(), Stage::Admission);
    }

    #[test]
    fn concurrent_tag_submissions_all_match_serial() {
        let svc = service();
        let ents = entities(3);
        let expected = {
            let api = SearchApi::new(&ents);
            svc.rank_request(&request(), &api).results
        };
        let server = Arc::new(SaccsServer::start(
            Arc::clone(&svc),
            ents,
            ServeConfig {
                workers: 4,
                queue_depth: 64,
                batch: 4,
                ..ServeConfig::default()
            },
        ));
        let (tx, rx) = std::sync::mpsc::channel();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let server = Arc::clone(&server);
                let tx = tx.clone();
                saccs_rt::spawn_worker(&format!("test-sub-{i}"), move || {
                    let results = server.submit(request()).expect("admitted").results;
                    tx.send(results).expect("send results");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("submitter");
        }
        drop(tx);
        for results in rx {
            assert_eq!(results, expected);
        }
        assert_eq!(server.stats().served, 16);
        assert_eq!(server.stats().shed, 0);
    }

    #[test]
    fn ann_enabled_serving_is_bitwise_identical_to_scan_across_worker_counts() {
        // An unknown probe tag forces the θ_filter fallback on every
        // request; the ANN-enabled service must serve bit-for-bit what
        // the exhaustive scan serves, at every worker count.
        let build = |ann: bool| {
            let mut idx = SubjectiveIndex::new(
                ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
                IndexConfig {
                    ann_enabled: ann,
                    ..IndexConfig::default()
                },
            );
            for (entity_id, tags) in [
                (0, vec![tag("delicious", "food"), tag("friendly", "staff")]),
                (1, vec![tag("delicious", "food"), tag("cozy", "ambiance")]),
                (2, vec![tag("friendly", "staff"), tag("bland", "food")]),
                (3, vec![tag("tasty", "pasta"), tag("great", "menu")]),
            ] {
                idx.register_entity(EntityEvidence {
                    entity_id,
                    review_count: 4,
                    review_tags: tags,
                });
            }
            idx.index_tags(&[
                tag("delicious", "food"),
                tag("friendly", "staff"),
                tag("cozy", "ambiance"),
                tag("tasty", "pasta"),
                tag("great", "menu"),
            ]);
            Arc::new(SaccsService::index_only(idx, SaccsConfig::default()))
        };
        // "amazing meal" is not indexed → fallback probe on both sides.
        let probe_request = || RankRequest::tags(vec![tag("amazing", "meal")]);
        let ents = entities(4);
        let expected = {
            let api = SearchApi::new(&ents);
            build(false).rank_request(&probe_request(), &api).results
        };
        assert!(!expected.is_empty(), "fallback probe must match something");
        for workers in [1usize, 2, 8] {
            let server = Arc::new(SaccsServer::start(
                build(true),
                ents.clone(),
                ServeConfig {
                    workers,
                    queue_depth: 64,
                    batch: 4,
                    ..ServeConfig::default()
                },
            ));
            let (tx, rx) = std::sync::mpsc::channel();
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let server = Arc::clone(&server);
                    let tx = tx.clone();
                    saccs_rt::spawn_worker(&format!("test-ann-{workers}-{i}"), move || {
                        let results = server.submit(probe_request()).expect("admitted").results;
                        tx.send(results).expect("send results");
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("submitter");
            }
            drop(tx);
            for results in rx {
                assert_eq!(
                    results.len(),
                    expected.len(),
                    "ann/scan length diverged at {workers} workers"
                );
                for ((ea, sa), (eb, sb)) in results.iter().zip(&expected) {
                    assert_eq!(ea, eb, "entity order diverged at {workers} workers");
                    assert_eq!(
                        sa.to_bits(),
                        sb.to_bits(),
                        "score bits diverged at {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn recorder_captures_trace_with_queue_wait_attribution() {
        let mut server = SaccsServer::start(
            service(),
            entities(3),
            ServeConfig::default().with_recorder(RecorderConfig::default()),
        );
        let response = server.submit(request().with_trace_id(7)).expect("admitted");
        assert!(
            response.timings.is_some(),
            "recorder on must attach per-stage timings"
        );
        let report = server.obs_report().expect("recorder installed");
        assert_eq!(report.requests, 1);
        let trace = &report.traces[0];
        assert_eq!(trace.id, 7, "caller-assigned trace id is preserved");
        let labels: Vec<String> = trace.events.iter().map(|e| e.normal()).collect();
        assert_eq!(labels[0], "admitted", "admission is the first event");
        assert!(labels.contains(&"queue_wait".to_string()));
        assert!(
            labels.contains(&"stage_exit:algo1.probe".to_string()),
            "stage spans forward into the owning trace: {labels:?}"
        );
        assert!(report.stages.contains_key("serve.queue_wait"));
        server.shutdown();
        let fin = server.final_report().expect("shutdown cuts a report");
        assert_eq!(fin.requests, 1);
    }
}

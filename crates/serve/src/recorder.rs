//! The flight recorder: a fixed-capacity ring of completed request
//! traces plus a slow-exemplar reservoir, folded into a deterministic
//! [`ObsReport`] on drain/shutdown or on demand.
//!
//! The ring claim is lock-free (one `fetch_add` on the head counter
//! picks the slot); each slot then takes its own uncontended mutex only
//! to swap the record in, so completing workers never serialize against
//! each other on a single structure. The exemplar reservoir is
//! tail-sampling by latency: the `exemplars` slowest traces survive
//! even after the ring has wrapped past them.

use saccs_core::RankResponse;
use saccs_obs::report::ObsReport;
use saccs_obs::trace::TraceContext;
use saccs_obs::TraceRecord;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

fn relock<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Flight-recorder tuning, attached to `ServeConfig::recorder`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Completed-trace ring capacity (oldest entries are overwritten).
    pub ring: usize,
    /// Slowest-trace reservoir size (survives ring wrap-around).
    pub exemplars: usize,
    /// Per-request trace event buffer cap (overflow is counted, not
    /// buffered).
    pub events_per_trace: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            ring: 128,
            exemplars: 8,
            events_per_trace: saccs_obs::trace::DEFAULT_EVENT_CAP,
        }
    }
}

impl RecorderConfig {
    pub(crate) fn sanitized(self) -> RecorderConfig {
        RecorderConfig {
            ring: self.ring.max(1),
            exemplars: self.exemplars.max(1),
            events_per_trace: self.events_per_trace.max(8),
        }
    }
}

/// Per-server recorder of completed request traces.
pub struct FlightRecorder {
    config: RecorderConfig,
    ring: Vec<Mutex<Option<TraceRecord>>>,
    head: AtomicUsize,
    shed: AtomicU64,
    completed: AtomicU64,
    /// The `config.exemplars` slowest traces seen so far, sorted by
    /// (total latency desc, trace id asc).
    exemplars: Mutex<Vec<TraceRecord>>,
    queue_hist: Arc<saccs_obs::Histogram>,
    total_hist: Arc<saccs_obs::Histogram>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("config", &self.config)
            .field("completed", &self.completed())
            .field("shed", &self.shed.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// An empty recorder with `config` (already sanitized).
    pub fn new(config: RecorderConfig) -> FlightRecorder {
        let config = config.sanitized();
        FlightRecorder {
            config,
            ring: (0..config.ring).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            exemplars: Mutex::new(Vec::new()),
            queue_hist: saccs_obs::registry().histogram("serve.queue_wait"),
            total_hist: saccs_obs::registry().histogram("serve.trace.total"),
        }
    }

    /// The recorder's (sanitized) configuration.
    pub fn config(&self) -> RecorderConfig {
        self.config
    }

    /// Requests completed through the recorder so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Count a request shed at admission (no trace exists for it).
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one finished request into the ring, the exemplar reservoir
    /// and the `serve.queue_wait` / `serve.trace.total` histograms.
    pub fn complete(&self, ctx: &TraceContext, response: &RankResponse, queue_ns: u64) {
        let total_ns = u64::try_from(response.elapsed.as_nanos()).unwrap_or(u64::MAX);
        let record = TraceRecord {
            id: ctx.id(),
            total_ns,
            queue_ns,
            degraded: response.degradation.is_degraded(),
            dropped: ctx.dropped(),
            events: ctx.events(),
        };
        self.queue_hist.record(queue_ns);
        self.total_hist.record(total_ns);
        self.completed.fetch_add(1, Ordering::Relaxed);
        {
            let mut reservoir = relock(self.exemplars.lock());
            // Steady-state fast path: a request no slower than the
            // current worst exemplar can't enter a full reservoir, so
            // skip the clone and the re-sort entirely.
            let qualifies = reservoir.len() < self.config.exemplars
                || reservoir.last().is_some_and(|worst| {
                    total_ns > worst.total_ns
                        || (total_ns == worst.total_ns && record.id < worst.id)
                });
            if qualifies {
                reservoir.push(record.clone());
                reservoir.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.id.cmp(&b.id)));
                reservoir.truncate(self.config.exemplars);
            }
        }
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.config.ring;
        *relock(self.ring[slot].lock()) = Some(record);
    }

    /// Build the deterministic report from everything still in the ring
    /// plus the exemplar reservoir. Callable at any time; the serve
    /// front end also cuts one automatically at shutdown.
    pub fn report(&self) -> ObsReport {
        let records: Vec<TraceRecord> = self
            .ring
            .iter()
            .filter_map(|slot| relock(slot.lock()).clone())
            .collect();
        let mut report = ObsReport::from_traces(
            records,
            self.shed.load(Ordering::Relaxed),
            self.config.exemplars,
        );
        // The reservoir outlives ring wrap-around, so it is the
        // authoritative slow-exemplar set.
        report.exemplars = relock(self.exemplars.lock()).clone();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_core::resilient::Degradation;
    use saccs_obs::trace::TraceEvent;
    use std::time::Duration;

    fn response(elapsed_ns: u64) -> RankResponse {
        RankResponse {
            results: vec![(1, 0.5)],
            degradation: Degradation::default(),
            elapsed: Duration::from_nanos(elapsed_ns),
            timings: None,
        }
    }

    #[test]
    fn ring_wraps_but_exemplar_reservoir_keeps_the_slowest() {
        let rec = FlightRecorder::new(RecorderConfig {
            ring: 2,
            exemplars: 2,
            events_per_trace: 16,
        });
        // Four requests through a 2-slot ring; the slowest (id 0) is
        // evicted from the ring but must survive as an exemplar.
        for (id, total) in [(0u64, 9_000u64), (1, 1_000), (2, 2_000), (3, 3_000)] {
            let ctx = TraceContext::with_cap(id, 16);
            ctx.record(TraceEvent::Admitted);
            rec.complete(&ctx, &response(total), 100);
        }
        assert_eq!(rec.completed(), 4);
        let report = rec.report();
        assert_eq!(report.requests, 2, "ring holds the last two");
        let ring_ids: Vec<u64> = report.traces.iter().map(|t| t.id).collect();
        assert_eq!(ring_ids, vec![2, 3]);
        let exemplar_ids: Vec<u64> = report.exemplars.iter().map(|t| t.id).collect();
        assert_eq!(exemplar_ids, vec![0, 3], "slowest-first, beyond the ring");
    }

    #[test]
    fn shed_counts_surface_in_the_report() {
        let rec = FlightRecorder::new(RecorderConfig::default());
        rec.note_shed();
        rec.note_shed();
        assert_eq!(rec.report().shed, 2);
        assert_eq!(rec.report().requests, 0);
    }
}

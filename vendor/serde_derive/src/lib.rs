//! Offline stand-in for `serde_derive`.
//!
//! SACCS only uses `#[derive(Serialize, Deserialize)]` as forward-looking
//! annotations — every snapshot format in the workspace is hand-rolled
//! (see `saccs-index`'s private `serde_json` module and `saccs-nn`'s
//! `serialize` codec). The derives therefore expand to marker-trait
//! impls and nothing else.

use proc_macro::TokenStream;

/// Extract the bare type name following `struct`/`enum` so we can emit a
/// marker impl. Generic types are not used with these derives in SACCS.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        let s = tt.to_string();
        if saw_kw {
            return Some(s);
        }
        if s == "struct" || s == "enum" {
            saw_kw = true;
        }
    }
    None
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl ::serde::Deserialize for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

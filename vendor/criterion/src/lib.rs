//! Offline stand-in for `criterion`.
//!
//! The SACCS bench harness (`crates/bench`) defines benchmarks through
//! `criterion_group!` / `criterion_main!` with `Criterion::default()`
//! configs. This stand-in keeps those definitions compiling and runnable
//! (`cargo bench`) with a simple median-of-samples wall-clock timer and
//! plain-text output — no statistics engine, no plots, no CLI filters.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost (ignored by the stand-in
/// beyond batch sizing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(3);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_target: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Per-benchmark timing context.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_target: usize,
}

impl Bencher {
    /// Time `routine`, repeated over the configured sample count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warmup pass, then timed samples.
        black_box(routine());
        for _ in 0..self.sample_target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`, excluding
    /// the setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{name:<50} median {median:>12?}  (min {min:?}, max {max:?}, n={})",
            self.samples.len()
        );
    }
}

/// Group definition: both the struct-ish form with `name`/`config`/
/// `targets` and the positional `criterion_group!(benches, f1, f2)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point: runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("sum_0_to_99", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("batched_reverse", |b| {
            b.iter_batched(
                || (0..64u32).collect::<Vec<_>>(),
                |mut v| {
                    v.reverse();
                    v
                },
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = tiny_bench
    }

    #[test]
    fn group_macro_produces_a_runnable_harness() {
        benches();
    }
}

//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()`/`read()`/`write()` return guards directly). A poisoned std
//! lock — some thread panicked while holding it — is deliberately
//! ignored and the inner data handed out anyway, matching parking_lot's
//! semantics of not tracking poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (std-backed, no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock (std-backed, no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5usize);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn poisoned_lock_still_hands_out_data() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}

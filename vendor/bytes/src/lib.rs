//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`]/[`BytesMut`] are thin wrappers over `Vec<u8>` (no shared
//! refcounted storage — SACCS never splits buffers), plus the [`Buf`] /
//! [`BufMut`] method subset the `saccs-nn` codec and index snapshots use.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-cursor trait over byte sources (implemented for `&[u8]`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn get_u32_le(&mut self) -> u32;
    fn get_f32_le(&mut self) -> f32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.len() >= 4, "get_u32_le: buffer underrun");
        let (head, rest) = self.split_at(4);
        let v = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        *self = rest;
        v
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write-cursor trait over growable sinks (implemented for [`BytesMut`]).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u32_le(&mut self, v: u32);
    fn put_f32_le(&mut self, v: f32);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"HDR!");
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f32_le(-1.5);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 12);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(&cursor[..4], b"HDR!");
        cursor.advance(4);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_f32_le(), -1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(&b[1..], &[2, 3]);
    }
}

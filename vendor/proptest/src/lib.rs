//! Offline stand-in for `proptest`.
//!
//! Implements exactly the surface SACCS's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * strategies for numeric ranges, tuples, `collection::vec`,
//!   `bool::ANY`, and regex-subset string patterns (`"[a-z]{0,10}"`,
//!   groups with alternation, `?` / `{m,n}` quantifiers),
//! * `test_runner::Config::with_cases`.
//!
//! There is **no shrinking**: a failing case panics with its inputs via
//! the normal assertion message, which is enough for a deterministic
//! generator (cases are derived from a fixed seed + case index, so a
//! failure reproduces exactly on re-run).

pub mod test_runner {
    /// Per-test configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            // Upstream defaults to 256; 64 keeps the seeded suite fast
            // while still exercising each property across a spread of
            // inputs. Tests needing more pass an explicit config.
            Config { cases: 64 }
        }
    }

    /// Deterministic generator backing every strategy: SplitMix64 over a
    /// fixed seed mixed with the case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u32) -> TestRng {
            TestRng {
                state: 0x5ACC_5EED_0000_0000 ^ (u64::from(case).wrapping_mul(0x9E37_79B9)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            (((self.next_u64() as u128).wrapping_mul(n as u128)) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::string::gen_from_pattern;
    use crate::test_runner::TestRng;

    /// A value generator. Unlike upstream there is no shrinking tree; a
    /// strategy simply produces a value per case.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty inclusive range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    (start as i128 + rng.below(span.wrapping_add(1).max(1)) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty inclusive range strategy");
                    start + (end - start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// String patterns are regex-subset strategies, like upstream.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            gen_from_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a fair boolean (`prop::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s of `elem` with a length drawn from `range`.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, 0..6)`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Generator for the regex subset SACCS patterns use: literals,
    //! escapes, `[...]` classes with ranges, `(a|b)` groups, and the
    //! `?`, `*`, `+`, `{m}`, `{m,n}` quantifiers.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Node {
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Vec<Vec<Node>>),
    }

    #[derive(Debug, Clone)]
    struct Quantified {
        node: Node,
        min: usize,
        max: usize,
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
        pattern: &'a str,
    }

    impl<'a> Parser<'a> {
        fn fail(&self, what: &str) -> ! {
            panic!("unsupported pattern {:?}: {what}", self.pattern)
        }

        fn parse_sequence(&mut self, in_group: bool) -> Vec<Vec<Quantified>> {
            let mut alternatives = Vec::new();
            let mut current: Vec<Quantified> = Vec::new();
            loop {
                match self.chars.peek().copied() {
                    None => {
                        if in_group {
                            self.fail("unterminated group");
                        }
                        alternatives.push(current);
                        return alternatives;
                    }
                    Some(')') if in_group => {
                        self.chars.next();
                        alternatives.push(current);
                        return alternatives;
                    }
                    Some('|') => {
                        self.chars.next();
                        alternatives.push(std::mem::take(&mut current));
                    }
                    Some(_) => {
                        let node = self.parse_atom();
                        let (min, max) = self.parse_quantifier();
                        current.push(Quantified { node, min, max });
                    }
                }
            }
        }

        fn parse_atom(&mut self) -> Node {
            match self.chars.next() {
                Some('[') => self.parse_class(),
                Some('(') => {
                    let alts = self.parse_sequence(true);
                    Node::Group(
                        alts.into_iter()
                            .map(|seq| seq.into_iter().map(Node::from_quantified).collect())
                            .collect(),
                    )
                }
                Some('\\') => match self.chars.next() {
                    Some(c) => Node::Literal(c),
                    None => self.fail("dangling escape"),
                },
                Some(c) if c == '.' || c == '*' || c == '+' || c == '?' => {
                    // Bare metacharacters outside a class are not needed by
                    // any SACCS pattern; treat as unsupported to catch typos.
                    self.fail("bare metacharacter")
                }
                Some(c) => Node::Literal(c),
                None => self.fail("empty atom"),
            }
        }

        fn parse_class(&mut self) -> Node {
            let mut ranges: Vec<(char, char)> = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                match self.chars.next() {
                    None => self.fail("unterminated class"),
                    Some(']') => return Node::Class(ranges),
                    Some('-') => {
                        // Range if between two chars, else a literal dash.
                        match (prev, self.chars.peek().copied()) {
                            (Some(lo), Some(hi)) if hi != ']' => {
                                self.chars.next();
                                if lo > hi {
                                    self.fail("inverted class range");
                                }
                                // Replace the literal entry for `lo`.
                                ranges.pop();
                                ranges.push((lo, hi));
                                prev = None;
                            }
                            _ => {
                                ranges.push(('-', '-'));
                                prev = Some('-');
                            }
                        }
                    }
                    Some('\\') => match self.chars.next() {
                        Some(c) => {
                            ranges.push((c, c));
                            prev = Some(c);
                        }
                        None => self.fail("dangling escape in class"),
                    },
                    Some(c) => {
                        ranges.push((c, c));
                        prev = Some(c);
                    }
                }
            }
        }

        fn parse_quantifier(&mut self) -> (usize, usize) {
            match self.chars.peek().copied() {
                Some('?') => {
                    self.chars.next();
                    (0, 1)
                }
                Some('*') => {
                    self.chars.next();
                    (0, 8)
                }
                Some('+') => {
                    self.chars.next();
                    (1, 8)
                }
                Some('{') => {
                    self.chars.next();
                    let mut min_s = String::new();
                    let mut max_s = String::new();
                    let mut saw_comma = false;
                    loop {
                        match self.chars.next() {
                            Some('}') => break,
                            Some(',') => saw_comma = true,
                            Some(d) if d.is_ascii_digit() => {
                                if saw_comma {
                                    max_s.push(d);
                                } else {
                                    min_s.push(d);
                                }
                            }
                            _ => self.fail("malformed {m,n} quantifier"),
                        }
                    }
                    let min: usize = min_s.parse().unwrap_or(0);
                    let max: usize = if saw_comma {
                        max_s
                            .parse()
                            .unwrap_or_else(|_| self.fail("open-ended {m,}"))
                    } else {
                        min
                    };
                    if max < min {
                        self.fail("quantifier max below min");
                    }
                    (min, max)
                }
                _ => (1, 1),
            }
        }
    }

    impl Node {
        fn from_quantified(q: Quantified) -> Node {
            // Groups nested inside alternatives keep their quantifiers by
            // expanding into a group of repeated sequences. SACCS patterns
            // only quantify classes/literals inside groups, where min==max
            // never exceeds the {m,n} the caller wrote.
            if q.min == 1 && q.max == 1 {
                q.node
            } else {
                Node::Group((q.min..=q.max).map(|n| vec![q.node.clone(); n]).collect())
            }
        }

        fn emit(&self, out: &mut String, rng: &mut TestRng) {
            match self {
                Node::Literal(c) => out.push(*c),
                Node::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total.max(1));
                    for (lo, hi) in ranges {
                        let span = (*hi as u64) - (*lo as u64) + 1;
                        if pick < span {
                            out.push(
                                char::from_u32(*lo as u32 + pick as u32)
                                    .expect("class range stays in valid scalar values"),
                            );
                            return;
                        }
                        pick -= span;
                    }
                }
                Node::Group(alts) => {
                    let alt = &alts[rng.below(alts.len() as u64) as usize];
                    for node in alt {
                        node.emit(out, rng);
                    }
                }
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut parser = Parser {
            chars: pattern.chars().peekable(),
            pattern,
        };
        let alts = parser.parse_sequence(false);
        let seq = &alts[rng.below(alts.len() as u64) as usize];
        let mut out = String::new();
        for q in seq {
            let n = q.min + rng.below((q.max - q.min + 1) as u64) as usize;
            for _ in 0..n {
                q.node.emit(&mut out, rng);
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// `prop_assert!`: without shrinking, plain assertions carry the failing
/// inputs in their panic message (the macro context includes the case's
/// bound variables via the format arguments the caller passes).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `prop_assume!`: skip the current generated case when the assumption
/// fails. Expands to `continue` inside the `proptest!` case loop, so the
/// rejected case is simply not tested (no retry budget, unlike upstream).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest!` block: expands each `fn name(arg in strategy, ..)` into
/// a plain test function running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_generator_respects_classes_and_counts() {
        let mut rng = TestRng::for_case(0);
        for case in 0..500 {
            let mut rng2 = TestRng::for_case(case);
            let s = crate::string::gen_from_pattern("[a-z]{0,10}", &mut rng2);
            assert!(s.len() <= 10);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let s = crate::string::gen_from_pattern("[a-zA-Z0-9 .,!?'-]{0,60}", &mut rng);
        assert!(s.len() <= 60);
        for case in 0..200 {
            let mut rng3 = TestRng::for_case(case);
            let s = crate::string::gen_from_pattern(
                "[a-z]{1,5}( [a-z]{1,5}| is| \\.| ,){0,12}",
                &mut rng3,
            );
            assert!(!s.is_empty());
            let first = s.split([' ', '.', ','].as_ref()).next().expect("split");
            assert!(first.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn group_quantifier_and_escape_shapes() {
        for case in 0..200 {
            let mut rng = TestRng::for_case(case);
            let s = crate::string::gen_from_pattern(
                "[a-z]{1,6}( [a-z]{1,6}){0,14}( \\.| but| ,)?",
                &mut rng,
            );
            assert!(!s.is_empty());
        }
    }

    proptest! {
        #![proptest_config(crate::test_runner::Config::with_cases(32))]

        #[test]
        fn macro_binds_ranges_and_tuples(
            n in 1usize..5,
            f in -2.0f32..2.0,
            pair in (0u64..10, prop::bool::ANY),
            xs in prop::collection::vec(0usize..3, 0..6),
        ) {
            prop_assert!((1..5).contains(&n));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(pair.0 < 10);
            prop_assert!(xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 3));
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1, "arithmetic sanity: {}", n);
        }
    }
}

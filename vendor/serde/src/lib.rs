//! Offline stand-in for `serde`.
//!
//! SACCS derives `Serialize`/`Deserialize` as annotations but performs all
//! actual serialization through hand-rolled codecs, so the traits here are
//! pure markers and the derives (from the sibling `serde_derive` stand-in)
//! emit empty impls.

/// Marker for types annotated as serializable.
pub trait Serialize {}

/// Marker for types annotated as deserializable.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

//! Offline stand-in for `crossbeam`.
//!
//! SACCS only uses `crossbeam::thread::scope` for borrowing scoped
//! workers; std's `std::thread::scope` (stable since 1.63) provides the
//! same guarantee, so this crate is a thin adapter that preserves
//! crossbeam's call shape: the scope closure and every `spawn` closure
//! receive a `&Scope` argument, and `scope()` returns a `Result`.
//!
//! One semantic difference: when a worker panics, std's scope re-raises
//! the panic at the end of the scope instead of returning `Err`, so the
//! `Err` arm of the returned `Result` is never taken here. Call sites
//! that `.unwrap()`/`.expect()` the result behave identically.

pub mod thread {
    use std::thread as std_thread;

    /// Handle for spawning borrowing workers inside [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker. Mirroring crossbeam, the closure receives the
        /// scope handle so workers can themselves spawn.
        pub fn spawn<F, T>(&self, f: F) -> std_thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Scoped-thread entry point; joins all workers before returning.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_workers_and_allows_borrows() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        super::thread::scope(|scope| {
            for chunk in data.chunks(2) {
                let counter = &counter;
                scope.spawn(move |_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                });
            }
        })
        .expect("no worker panicked");
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_spawn_through_the_scope_handle() {
        let hits = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                hits.fetch_add(1, Ordering::SeqCst);
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .expect("no worker panicked");
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of exactly the API
//! surface SACCS uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! same stream as upstream `StdRng` (ChaCha12), but statistically solid
//! and fully deterministic under a fixed seed, which is all the test
//! suite and the data generators rely on.

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a `u64` (the only seeding mode SACCS uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f32`/`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 high bits → uniform in [0, 1) with full f32 precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Rejection-free Lemire-style reduction; the widening
                // multiply removes modulo bias at no cost.
                let off = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from. Tying `T` to the
/// range's element type (instead of one impl per concrete range) keeps
/// type inference working through arithmetic contexts, matching the
/// upstream `rand` design.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Uniform index in `[0, n)` for a possibly-unsized generator (the
    /// `Rng` convenience methods require `Self: Sized`).
    fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        (((rng.next_u64() as u128).wrapping_mul(n as u128)) >> 64) as usize
    }

    /// Slice sampling/shuffling extension trait.
    pub trait SliceRandom {
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_below(rng, self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, uniform_below(rng, i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(5i64..=5);
            assert_eq!(i, 5);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some bucket never sampled: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        let pool = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*pool.choose(&mut rng).expect("non-empty slice") - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! A multi-turn conversational search session (§3's architecture end to
//! end): intent recognition → slot filling → objective search API →
//! subjective filtering → dynamic index adaptation via the user tag
//! history (Figure 1).
//!
//! Run with: `cargo run --release --example conversational_search`

use saccs::core::{Intent, RankRequest, RuleNlu, SaccsBuilder, SearchApi};
use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::text::{Domain, Lexicon};

fn main() {
    println!("== Conversational subjective search ==\n");
    let corpus = YelpCorpus::generate(
        Lexicon::new(Domain::Restaurants),
        &YelpConfig {
            n_entities: 25,
            n_reviews: 350,
            seed: 21,
            ..Default::default()
        },
    );
    println!("Training SACCS (quick profile)...");
    let mut saccs = SaccsBuilder::quick().build(&corpus);
    let nlu = RuleNlu::new();
    let api = SearchApi::new(&corpus.entities);

    let turns = [
        "hello there",
        "I want an Italian restaurant in Montreal with quick service",
        // "scrumptious" food is not an index tag: similarity fallback +
        // user tag history.
        "any place with scrumptious food and friendly waiters?",
        "I am looking for a restaurant with a romantic ambiance",
    ];

    for utterance in turns {
        println!("\nUser: \"{utterance}\"");
        let (intent, slots) = nlu.parse(utterance);
        match intent {
            Intent::SmallTalk => {
                println!("Bot:  Hi! Ask me for a restaurant.");
                continue;
            }
            Intent::Unknown => {
                println!("Bot:  Sorry, I only know restaurants.");
                continue;
            }
            Intent::SearchRestaurant => {}
        }
        println!("  intent: SearchRestaurant, slots: {slots:?}");
        let tags = saccs
            .service
            .extract_tags(utterance)
            .expect("quick profile always trains an extractor");
        println!(
            "  subjective tags: [{}]",
            tags.iter()
                .map(|t| t.phrase())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let request = RankRequest::utterance(utterance).with_slots(slots);
        let response = saccs.service.rank_request(&request, &api);
        println!("Bot:  Here is what I found:");
        for (rank, (entity, score)) in response.results.iter().take(3).enumerate() {
            println!("        {}. {} ({score:.2})", rank + 1, api.name(*entity));
        }
    }

    // Figure 1's adaptation loop: unknown tags asked during the session
    // become first-class index tags at the next indexing round.
    let pending = saccs.service.index().history().len();
    println!("\nUnknown tags collected in the user tag history: {pending}");
    let added = saccs.service.index_mut().reindex_from_history();
    println!(
        "Re-indexing round added {added} new tags; index now has {} tags.",
        saccs.service.index().len()
    );
}

//! Figure 2 walkthrough: token tagging and pairing on the paper's example
//! sentence, plus the adversarial-robustness mechanics of §4.3.
//!
//! Run with: `cargo run --release --example extraction_pipeline`

use saccs::data::{Dataset, DatasetId};
use saccs::embed::{build_vocab, general_corpus, train_mlm, MiniBert, MiniBertConfig, MlmConfig};
use saccs::pairing::{PairingPipeline, PipelineConfig};
use saccs::tagger::{Adversarial, Architecture, Tagger, TrainConfig};
use saccs::text::{tokenize_lower, Domain, SpanKind};
use std::rc::Rc;

fn main() {
    println!("== Figure 2: tagging + pairing ==\n");
    println!("Training MiniBert + tagger + pairing (a minute or so)...");
    let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
    let bert = MiniBert::new(
        vocab,
        MiniBertConfig {
            dim: 32,
            heads: 4,
            layers: 3,
            max_len: 48,
            seed: 5,
        },
    );
    train_mlm(
        &bert,
        &general_corpus(1200, 3),
        &MlmConfig {
            epochs: 2,
            ..Default::default()
        },
    );
    let bert = Rc::new(bert);

    let data = Dataset::generate_scaled(DatasetId::S1, 0.2);
    let tagger = Tagger::train(
        bert.clone(),
        &data.train,
        &TrainConfig {
            architecture: Architecture::BiLstmCrf,
            adversarial: Some(Adversarial {
                epsilon: 0.2,
                alpha: 0.5,
            }),
            epochs: 8,
            ..Default::default()
        },
    );
    println!(
        "  tagger test F1: {:.1}%",
        tagger.evaluate(&data.test).f1_percent()
    );

    let dev: Vec<_> = data.test.iter().take(50).cloned().collect();
    let pairing = PairingPipeline::fit(bert, &data.train, &dev, PipelineConfig::default());

    // Figure 2's sentence.
    let sentence = "The food is really good but the service is a bit slow";
    let tokens: Vec<String> = tokenize_lower(sentence)
        .into_iter()
        .map(|t| t.text)
        .collect();
    println!("\nSentence: \"{sentence}\"");
    let tags = tagger.tag(&tokens);
    println!("\n  {:<10} IOB tag", "token");
    for (tok, tag) in tokens.iter().zip(&tags) {
        println!("  {tok:<10} {tag}");
    }

    let spans = tagger.extract_spans(&tokens);
    let aspects: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Aspect)
        .copied()
        .collect();
    let opinions: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Opinion)
        .copied()
        .collect();
    let pairs = pairing.pair_spans(&tokens, &aspects, &opinions);
    println!("\nSubjective tags (paired):");
    for (a, o) in &pairs {
        println!("  {{{} {}}}", o.text(&tokens), a.text(&tokens));
    }

    // §4.3 in action: loss under FGSM perturbation.
    println!("\n== Adversarial robustness (Eq. 6-9) ==");
    for eps in [0.1f32, 0.5, 2.0] {
        let clean = tagger.mean_loss(&data.test[..60], None);
        let perturbed = tagger.mean_loss(&data.test[..60], Some(eps));
        println!("  eps={eps:<4} clean loss {clean:.3} -> perturbed {perturbed:.3}");
    }
}

//! §7 extensions in action: user-profile personalization and fake-review
//! robustness, on top of the core pipeline.
//!
//! Run with: `cargo run --release --example personalized_search`

use saccs::core::{RankRequest, SaccsBuilder, SearchApi, UserProfile};
use saccs::data::fraud::{inject_fraud, FraudCampaign};
use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::index::{FraudFilter, ReviewProfile};
use saccs::text::lexicon::Polarity;
use saccs::text::{Domain, Lexicon, SubjectiveTag};

fn main() {
    println!("== Section 7 extensions ==\n");
    let corpus = YelpCorpus::generate(
        Lexicon::new(Domain::Restaurants),
        &YelpConfig {
            n_entities: 25,
            n_reviews: 400,
            seed: 42,
            ..Default::default()
        },
    );
    println!("Training SACCS (quick profile)...");
    let saccs = SaccsBuilder::quick().build(&corpus);
    let api = SearchApi::new(&corpus.entities);

    // --- 1. User profiles ------------------------------------------------
    println!("\n-- 1. Profile-aware ranking --");
    let mut profile = UserProfile::new();
    // This user has a history of caring about quietness.
    for _ in 0..6 {
        profile.observe(&[SubjectiveTag::new("quiet", "place")]);
    }
    println!(
        "Standing interests: {:?}",
        profile
            .top_interests(3)
            .iter()
            .map(|(t, m)| format!("{t} ({m})"))
            .collect::<Vec<_>>()
    );
    let tags = vec![
        SubjectiveTag::new("delicious", "food"),
        SubjectiveTag::new("quiet", "place"),
    ];
    let neutral = saccs
        .service
        .rank_request(&RankRequest::tags(tags.clone()), &api)
        .results;
    let personal = saccs
        .service
        .rank_request(
            &RankRequest::tags(tags.clone()).with_profile(profile.clone(), 0.8),
            &api,
        )
        .results;
    println!("query: delicious food + quiet place");
    println!(
        "  neutral top 5      : {:?}",
        neutral.iter().take(5).map(|(e, _)| *e).collect::<Vec<_>>()
    );
    println!(
        "  personalized top 5 : {:?}",
        personal.iter().take(5).map(|(e, _)| *e).collect::<Vec<_>>()
    );
    let q = |e: usize| corpus.entities[e].quality_of("place", "quiet");
    let mean_q = |r: &[(usize, f32)]| r.iter().take(5).map(|&(e, _)| q(e)).sum::<f32>() / 5.0;
    println!(
        "  mean quietness of top-5: neutral {:.2} -> personalized {:.2}",
        mean_q(&neutral),
        mean_q(&personal)
    );

    // --- 2. Fake-review robustness ---------------------------------------
    println!("\n-- 2. Fake-review robustness --");
    let mut corrupted = corpus.clone();
    let target = 3usize;
    inject_fraud(
        &mut corrupted,
        &[FraudCampaign {
            entity_id: target,
            n_reviews: 40,
            concept: "food",
            group: "delicious",
            polarity: Polarity::Positive,
        }],
        7,
    );
    println!(
        "Entity {target} ({}) bought 40 fake 'delicious food' reviews; true quality {:.2}.",
        corpus.entities[target].name,
        corpus.entities[target].quality_of("food", "delicious")
    );
    // Gold per-review profiles for the corrupted corpus.
    let profiles_of = |c: &YelpCorpus, e: usize| -> Vec<ReviewProfile> {
        c.reviews_of(e)
            .iter()
            .map(|&ri| {
                let mut ts = Vec::new();
                for s in &c.reviews[ri].sentences {
                    for (a, o) in &s.pairs {
                        ts.push(SubjectiveTag::new(&o.text(&s.tokens), &a.text(&s.tokens)));
                    }
                }
                ReviewProfile::new(ts)
            })
            .collect()
    };
    let filter = FraudFilter::default();
    let profiles = profiles_of(&corrupted, target);
    let keep = filter.keep_flags(&profiles);
    let suppressed = keep.iter().filter(|&&k| !k).count();
    let fakes = corrupted
        .reviews_of(target)
        .iter()
        .filter(|&&ri| corrupted.reviews[ri].is_fake)
        .count();
    println!(
        "FraudFilter suppressed {suppressed} of the entity's {} reviews ({fakes} were fake).",
        profiles.len()
    );
    println!("(Full experiment: `cargo run --release -p saccs-bench --bin fraud_robustness`)");
}

//! Figure 1 walkthrough, reproduced literally: three entities (E1, E3, E5)
//! with one review each, an index holding {good food, great atmosphere},
//! and the extractor → similarity checker → indexer flow, followed by the
//! romantic-ambiance adaptation round.
//!
//! Run with: `cargo run --example indexing_walkthrough`
//! (uses gold extraction, so it is instant — the point is the index logic).

use saccs::index::index::{EntityEvidence, IndexConfig};
use saccs::index::SubjectiveIndex;
use saccs::text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};

fn tag(op: &str, asp: &str) -> SubjectiveTag {
    SubjectiveTag::new(op, asp)
}

fn main() {
    println!("== Figure 1: subjective tag indexing ==\n");
    let lexicon = Lexicon::new(Domain::Restaurants);
    let mut index =
        SubjectiveIndex::new(ConceptualSimilarity::new(lexicon), IndexConfig::default());

    // The figure's three reviews and their extracted tags.
    println!("E1 review: \"This restaurant serves good food\"   -> {{good food}}");
    println!("E3 review: \"Superb atmosphere in this place\"    -> {{superb atmosphere}}");
    println!("E5 review: \"Amazing pizza!\"                     -> {{amazing pizza}}");
    index.register_entity(EntityEvidence {
        entity_id: 1,
        review_count: 1,
        review_tags: vec![tag("good", "food")],
    });
    index.register_entity(EntityEvidence {
        entity_id: 3,
        review_count: 1,
        review_tags: vec![tag("superb", "atmosphere")],
    });
    index.register_entity(EntityEvidence {
        entity_id: 5,
        review_count: 1,
        review_tags: vec![tag("amazing", "pizza")],
    });

    println!("\nIndex tags: {{good food, great atmosphere}}");
    index.index_tags(&[tag("good", "food"), tag("great", "atmosphere")]);
    println!("\n{}", index.render_table(5, |id| format!("E{id}")));
    println!("E1 and E5 both map to 'good food' (pizza is-a food, amazing ~ good);");
    println!("E3 maps only to 'great atmosphere', exactly as in the figure.\n");

    // The adaptation mechanism.
    let query = tag("romantic", "ambiance");
    println!("User asks for \"romantic ambiance\" — unknown to the index.");
    let results = index.probe(&query);
    println!("Real-time answer from similar tags: {results:?}");
    println!(
        "User tag history now holds {} pending tag(s).",
        index.history().len()
    );

    let added = index.reindex_from_history();
    println!("\nNext indexing round: {added} tag(s) added.");
    println!("{}", index.render_table(5, |id| format!("E{id}")));
}

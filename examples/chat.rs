//! Interactive subjective-search chatbot.
//!
//! A REPL over the full SACCS stack: type utterances like
//! *"I want an Italian restaurant in Montreal with a romantic ambiance"*
//! and get subjectively re-ranked results; unknown tags accumulate in the
//! user tag history and `:reindex` runs an adaptation round (Figure 1).
//! A user profile builds up across the session and personalizes ranking.
//!
//! Run with: `cargo run --release --example chat`
//! (with no terminal attached, a scripted demo conversation plays instead).
//!
//! Commands: `:index` (show the tag index), `:profile` (your interests),
//! `:reindex` (adaptation round), `:quit`.

use saccs::core::{
    Conversation, Intent, RankRequest, RuleNlu, SaccsBuilder, SearchApi, UserProfile,
};
use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::text::{ConceptualSimilarity, Domain, Lexicon};
use std::io::{BufRead, IsTerminal};

fn main() {
    println!("Booting SACCS (quick profile, ~1 min of training)...");
    let corpus = YelpCorpus::generate(
        Lexicon::new(Domain::Restaurants),
        &YelpConfig {
            n_entities: 30,
            n_reviews: 450,
            seed: 1234,
            ..Default::default()
        },
    );
    let mut saccs = SaccsBuilder::quick().build(&corpus);
    let nlu = RuleNlu::new();
    let api = SearchApi::new(&corpus.entities);
    let mut profile = UserProfile::new();
    let mut conversation = Conversation::new();
    let similarity = ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants));

    println!("Ready. Ask for a restaurant; refinements accumulate across turns");
    println!("(\"forget the …\" retracts a filter; \":new\" starts over; \":quit\" exits).\n");

    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    // Piped stdin is real input; the scripted demo only plays when there
    // is no terminal AND nothing was piped in.
    let mut piped: Vec<String> = Vec::new();
    if !interactive {
        for line in stdin.lock().lines() {
            match line {
                Ok(l) => piped.push(l),
                Err(_) => break,
            }
        }
    }
    let demo = [
        "I want an Italian restaurant in Montreal with delicious food",
        "somewhere with a romantic ambiance please",
        "actually forget the romantic ambiance",
        ":profile",
        ":reindex",
        ":quit",
    ];
    let mut scripted: Vec<String> = if interactive {
        Vec::new()
    } else if piped.is_empty() || piped.iter().all(|l| l.trim().is_empty()) {
        demo.iter().map(|s| s.to_string()).collect()
    } else {
        piped
    };
    let mut script_iter = scripted.drain(..);

    loop {
        let line = if interactive {
            let mut buf = String::new();
            if stdin.lock().read_line(&mut buf).unwrap_or(0) == 0 {
                break;
            }
            buf.trim().to_string()
        } else {
            match script_iter.next() {
                Some(l) => {
                    println!("you> {}", l.trim());
                    l.trim().to_string()
                }
                None => break,
            }
        };
        if line.is_empty() {
            continue;
        }
        match line.as_str() {
            ":quit" | ":q" => break,
            ":index" => {
                print!(
                    "{}",
                    saccs
                        .service
                        .index()
                        .render_table(3, |id| api.name(id).to_string())
                );
                continue;
            }
            ":profile" => {
                let top = profile.top_interests(5);
                if top.is_empty() {
                    println!("bot> no interests recorded yet.");
                } else {
                    println!("bot> your standing interests:");
                    for (t, mass) in top {
                        println!("       {t} (weight {mass:.0})");
                    }
                }
                continue;
            }
            ":new" => {
                conversation.reset();
                println!("bot> fresh search — what are you looking for?");
                continue;
            }
            ":reindex" => {
                let pending = saccs.service.index().history().len();
                let added = saccs.service.index_mut().reindex_from_history();
                println!(
                    "bot> adaptation round: {added} of {pending} pending tags indexed; \
                     {} tags total.",
                    saccs.service.index().len()
                );
                continue;
            }
            _ => {}
        }

        let (intent, slots) = nlu.parse(&line);
        match intent {
            Intent::SmallTalk => {
                println!("bot> hi! ask me for a restaurant.");
                continue;
            }
            // Mid-conversation, unrecognized utterances default to search
            // refinements ("actually forget the romantic ambiance").
            Intent::Unknown if conversation.turns() == 0 => {
                println!("bot> I only know restaurants, sorry.");
                continue;
            }
            Intent::Unknown | Intent::SearchRestaurant => {}
        }
        let turn_tags = saccs.service.extract_tags(&line).unwrap_or_default();
        let effect = conversation.absorb(&line, slots, turn_tags, &similarity);
        if !effect.added().is_empty() {
            println!(
                "bot> added filters: {}",
                effect
                    .added()
                    .iter()
                    .map(|t| t.phrase())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            profile.observe(effect.added());
        }
        if !effect.removed().is_empty() {
            println!(
                "bot> dropped filters: {}",
                effect
                    .removed()
                    .iter()
                    .map(|t| t.phrase())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        let candidates = api.search(conversation.slots());
        if candidates.is_empty() {
            println!(
                "bot> no {} places in {} here — I only cover Italian Montreal.",
                conversation.slots().cuisine.as_deref().unwrap_or("such"),
                conversation
                    .slots()
                    .location
                    .as_deref()
                    .unwrap_or("that area"),
            );
            continue;
        }
        let active = conversation.tags().to_vec();
        if !active.is_empty() {
            println!(
                "bot> active filters: {}",
                active
                    .iter()
                    .map(|t| t.phrase())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        let request = RankRequest::tags(active)
            .with_slots(conversation.slots().clone())
            .with_profile(profile.clone(), 0.4);
        let response = saccs.service.rank_request(&request, &api);
        println!("bot> top matches:");
        for (rank, (entity, score)) in response.results.iter().take(3).enumerate() {
            println!("       {}. {} ({score:.2})", rank + 1, api.name(*entity));
        }
    }
    println!("bot> bye!");
}

//! Quickstart: build a SACCS service over a small synthetic review corpus
//! and answer a subjective utterance.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Prints the Table-1 view of the subjective-tag index and the ranked
//! answer to the paper's §3.2 example utterance.

use saccs::core::{RankRequest, SaccsBuilder, SearchApi};
use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::text::{Domain, Lexicon};

fn main() {
    println!("== SACCS quickstart ==\n");
    println!("Generating a small Yelp-style corpus (30 restaurants, 400 reviews)...");
    let corpus = YelpCorpus::generate(
        Lexicon::new(Domain::Restaurants),
        &YelpConfig {
            n_entities: 30,
            n_reviews: 400,
            seed: 7,
            ..Default::default()
        },
    );

    println!("Training the extraction pipeline and building the index (quick profile)...");
    let t0 = std::time::Instant::now();
    let saccs = SaccsBuilder::quick().build(&corpus);
    println!("  done in {:.1?}\n", t0.elapsed());

    // Table-1-style view of a few index tags.
    println!("-- Subjective tag index (Table 1 form, top 3 entities per tag) --");
    let table = saccs
        .service
        .index()
        .render_table(3, |id| corpus.entities[id].name.clone());
    for line in table.lines().take(16) {
        println!("{line}");
    }

    // The §3.2 utterance.
    let utterance =
        "I want an Italian restaurant in Montreal that serves delicious food and has a nice staff";
    println!("\nUser: \"{utterance}\"");
    let tags = saccs
        .service
        .extract_tags(utterance)
        .expect("quick profile always trains an extractor");
    println!(
        "Extracted subjective tags: {:?}",
        tags.iter().map(|t| t.phrase()).collect::<Vec<_>>()
    );

    let api = SearchApi::new(&corpus.entities);
    let response = saccs
        .service
        .rank_request(&RankRequest::utterance(utterance), &api);
    println!(
        "\nTop results (full fidelity: {}):",
        response.is_full_fidelity()
    );
    for (rank, (entity, score)) in response.results.iter().take(5).enumerate() {
        println!(
            "  {}. {} (score {score:.2})",
            rank + 1,
            corpus.entities[*entity].name
        );
    }
}

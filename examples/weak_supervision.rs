//! Figure 6 walkthrough: the data-programming pipeline for pairing.
//!
//! Labeling functions → generative label models (majority vote and the
//! EM probabilistic model) → discriminative classifier, with each stage's
//! quality measured against the balanced pairing benchmark (§6.4).
//!
//! Run with: `cargo run --release --example weak_supervision`

use saccs::data::{Dataset, DatasetId};
use saccs::embed::{build_vocab, general_corpus, train_mlm, MiniBert, MiniBertConfig, MlmConfig};
use saccs::pairing::generative::{majority_vote, ProbabilisticModel};
use saccs::pairing::heuristics::SentenceContext;
use saccs::pairing::testset::{build_test_set, evaluate_voter};
use saccs::pairing::{PairingPipeline, PipelineConfig};
use saccs::text::Domain;
use std::rc::Rc;

fn main() {
    println!("== Figure 6: data programming for pairing ==\n");
    println!("Training MiniBert and fitting the pipeline...");
    let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
    let bert = MiniBert::new(
        vocab,
        MiniBertConfig {
            dim: 32,
            heads: 4,
            layers: 3,
            max_len: 48,
            seed: 11,
        },
    );
    train_mlm(
        &bert,
        &general_corpus(1500, 13),
        &MlmConfig {
            epochs: 2,
            ..Default::default()
        },
    );
    let bert = Rc::new(bert);

    // §6.4: "We train the model with Booking.com dataset for hotels."
    let hotels = Dataset::generate_scaled(DatasetId::S4, 0.6);
    let dev = Dataset::generate_scaled(DatasetId::S1, 0.04);
    let pipeline = PairingPipeline::fit(bert, &hotels.train, &dev.train, PipelineConfig::default());

    let test = build_test_set(397, Domain::Hotels, 0x64);
    println!(
        "\n{:<16} {:>6} {:>6} {:>6} {:>6}",
        "stage", "acc", "P", "R", "F1"
    );

    // Stage 1: each labeling function alone.
    let mut votes_per_example: Vec<Vec<bool>> = vec![Vec::new(); test.len()];
    for lf in pipeline.labeling_functions() {
        let conf = evaluate_voter(
            |e| {
                let ctx = SentenceContext {
                    tokens: &e.tokens,
                    aspects: &e.aspects,
                    opinions: &e.opinions,
                };
                lf.label(&ctx, e.candidate)
            },
            &test,
        );
        for (i, e) in test.iter().enumerate() {
            let ctx = SentenceContext {
                tokens: &e.tokens,
                aspects: &e.aspects,
                opinions: &e.opinions,
            };
            votes_per_example[i].push(lf.label(&ctx, e.candidate));
        }
        println!(
            "{:<16} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            lf.name(),
            100.0 * conf.accuracy(),
            100.0 * conf.precision(),
            100.0 * conf.recall(),
            100.0 * conf.f1()
        );
    }

    // Stage 2: generative aggregation.
    let mv = {
        let mut c = saccs::eval::BinaryConfusion::new();
        for (v, e) in votes_per_example.iter().zip(&test) {
            c.observe(majority_vote(v), e.label);
        }
        c
    };
    println!(
        "{:<16} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
        "majority vote",
        100.0 * mv.accuracy(),
        100.0 * mv.precision(),
        100.0 * mv.recall(),
        100.0 * mv.f1()
    );
    let pm_model = ProbabilisticModel::fit(&votes_per_example, 25);
    println!(
        "  learned LF accuracies: {:?}",
        pm_model
            .accuracies
            .iter()
            .map(|a| (a * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    let pm = {
        let mut c = saccs::eval::BinaryConfusion::new();
        for (v, e) in votes_per_example.iter().zip(&test) {
            c.observe(pm_model.predict(v), e.label);
        }
        c
    };
    println!(
        "{:<16} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
        "probabilistic",
        100.0 * pm.accuracy(),
        100.0 * pm.precision(),
        100.0 * pm.recall(),
        100.0 * pm.f1()
    );

    // Stage 3: the discriminative model trained on weak labels.
    let disc = evaluate_voter(
        |e| pipeline.classify(&e.tokens, &e.candidate.0, &e.candidate.1),
        &test,
    );
    println!(
        "{:<16} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
        "discriminative",
        100.0 * disc.accuracy(),
        100.0 * disc.precision(),
        100.0 * disc.recall(),
        100.0 * disc.f1()
    );
    println!("\n(Full-scale Table 5 numbers: `cargo run --release -p saccs-bench --bin table5`)");
}

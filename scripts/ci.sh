#!/usr/bin/env bash
# Staged CI pipeline: fail-fast, one banner per stage.
#
#   scripts/ci.sh            # run everything
#   CI_OFFLINE=1 scripts/ci.sh   # pass --offline to every cargo call
#
# Stages:
#   1. fmt       cargo fmt --check        (skipped if rustfmt is absent)
#   2. lint      cargo run -p xtask -- check
#   3. audit     xtask audit --json twice, reports byte-diffed, gated on
#                the ratchet baseline, report validated by check-audit
#   4. build     cargo build --workspace --release
#   5. test      cargo test -q --workspace
#   6. sanitize  cargo test -q --features saccs-nn/sanitize
#   7. bench-obs SACCS_OBS=json table3 + xtask check-bench on the snapshot
#   8. perf      SACCS_OBS=json matmul microbench + xtask check-bench
#   9. chaos     seeded fault suite + double chaos-bin run, exports diffed
#  10. serve     concurrent-serving suite + double serve-bin run, exports
#                AND normalized flight-recorder reports diffed,
#                BENCH_serve.json + the recorder report validated
#  11. trace     request-tracing suite (five-stage coverage, fault events
#                in the owning trace, recorder-on/off bitwise equality)
#  12. probe     ANN equality suite + double probe-bin run on a reduced
#                synthetic corpus, deterministic exports byte-diffed,
#                BENCH_probe.json validated
#  13. ingest    segmented-index suites (proptests, ingest-while-serving
#                equivalence, crash recovery) + double ingest-bin run,
#                deterministic exports byte-diffed, BENCH_ingest.json
#                validated
#  14. query     query-language suites (planner proptests, filtered
#                serving equivalence) + double query-bin run, match-set
#                exports byte-diffed, BENCH_query.json validated

set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
if [[ "${CI_OFFLINE:-0}" == "1" ]]; then
    OFFLINE=(--offline)
fi

stage() {
    printf '\n=== [%s] %s ===\n' "$1" "$2"
}

fail() {
    printf '\n*** CI FAILED at stage [%s] ***\n' "$1" >&2
    exit 1
}

if command -v rustfmt >/dev/null 2>&1; then
    stage fmt "cargo fmt --all -- --check"
    cargo fmt --all -- --check || fail fmt
else
    stage fmt "skipped: rustfmt not installed"
fi

stage lint "cargo run -p xtask -- check"
cargo run "${OFFLINE[@]}" -q -p xtask -- check || fail lint

# Determinism & concurrency hazard audit: all 14 passes gated on the
# ratcheted baseline (per-pass counts may only go down), run twice with
# the JSON report byte-diffed — the analyzer itself must be as
# deterministic as the code it audits — and the report schema validated.
stage audit "xtask audit --json x2, reports diffed + validated"
rm -f AUDIT_a.json AUDIT_b.json
cargo run "${OFFLINE[@]}" -q -p xtask -- audit --json AUDIT_a.json || fail audit
cargo run "${OFFLINE[@]}" -q -p xtask -- audit --json AUDIT_b.json >/dev/null || fail audit
diff AUDIT_a.json AUDIT_b.json || fail audit
cargo run "${OFFLINE[@]}" -q -p xtask -- check-audit AUDIT_a.json || fail audit
rm -f AUDIT_a.json AUDIT_b.json

stage build "cargo build --workspace --release"
cargo build "${OFFLINE[@]}" --workspace --release || fail build

stage test "cargo test -q --workspace"
cargo test "${OFFLINE[@]}" -q --workspace || fail test

stage sanitize "cargo test -q --features saccs-nn/sanitize"
cargo test "${OFFLINE[@]}" -q --features saccs-nn/sanitize || fail sanitize

# Observability round-trip: run the cheapest bench bin with the JSON
# exporter and validate the snapshot it writes (syntax + required keys).
stage bench-obs "SACCS_OBS=json table3 -> xtask check-bench"
rm -f BENCH_table3.json
SACCS_OBS=json cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --bin table3 \
    >/dev/null || fail bench-obs
cargo run "${OFFLINE[@]}" -q -p xtask -- check-bench BENCH_table3.json || fail bench-obs

# Kernel perf gate: the blocked matmul vs the seed's naive kernel,
# interleaved best-of-N (GFLOP/s, thread count and speedup land in the
# headline; nn.matmul span histograms in the snapshot).
stage perf "SACCS_OBS=json matmul -> xtask check-bench"
rm -f BENCH_matmul.json
SACCS_OBS=json SACCS_THREADS="${SACCS_THREADS:-8}" \
    cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --bin matmul \
    || fail perf
cargo run "${OFFLINE[@]}" -q -p xtask -- check-bench BENCH_matmul.json || fail perf

# Chaos gate: the seeded fault-injection suite, then the chaos bin run
# twice with the same (seed, scenario) — the JSON-lines exports (rankings
# as score bits, degradation events, fault.* counter deltas; no timings)
# must be byte-identical or the schedules are not deterministic.
stage chaos "fault suite + double chaos run, exports diffed"
cargo test "${OFFLINE[@]}" -q --features fault --test chaos || fail chaos
rm -f CHAOS_a.jsonl CHAOS_b.jsonl
SACCS_CHAOS_OUT=CHAOS_a.jsonl \
    cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --features fault --bin chaos \
    || fail chaos
SACCS_CHAOS_OUT=CHAOS_b.jsonl \
    cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --features fault --bin chaos \
    >/dev/null || fail chaos
diff CHAOS_a.jsonl CHAOS_b.jsonl || fail chaos
rm -f CHAOS_a.jsonl CHAOS_b.jsonl

# Serving gate: the concurrent-serving suite (bitwise equality at every
# width/batch, exact shed accounting, chaos through the server), then
# the serve bin run twice — its JSON-lines export (rankings as score
# bits plus the server counters; no timings) AND its normalized
# flight-recorder report (per-stage counts and event sequences,
# timestamps stripped) must both be byte-identical — and the QPS/A-B
# snapshot plus the recorder report validated.
stage serve "serve suite + double serve run, exports + reports diffed"
cargo test "${OFFLINE[@]}" -q --features fault --test serve || fail serve
rm -f SERVE_a.jsonl SERVE_b.jsonl SERVE_obsreport_a.json SERVE_obsreport_b.json BENCH_serve.json
SACCS_OBS=json SACCS_SERVE_OUT=SERVE_a.jsonl SACCS_SERVE_REPORT=SERVE_obsreport_a.json \
    cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --features fault --bin serve \
    || fail serve
SACCS_SERVE_OUT=SERVE_b.jsonl SACCS_SERVE_REPORT=SERVE_obsreport_b.json \
    cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --features fault --bin serve \
    >/dev/null || fail serve
diff SERVE_a.jsonl SERVE_b.jsonl || fail serve
diff SERVE_obsreport_a.json SERVE_obsreport_b.json || fail serve
cargo run "${OFFLINE[@]}" -q -p xtask -- check-report SERVE_obsreport_a.json || fail serve
rm -f SERVE_a.jsonl SERVE_b.jsonl SERVE_obsreport_a.json SERVE_obsreport_b.json
cargo run "${OFFLINE[@]}" -q -p xtask -- check-bench BENCH_serve.json || fail serve

# Tracing gate: the request-tracing integration suite — every trace
# carries all five Algorithm-1 stages with queue wait attributed
# separately, fault events land in the owning request's trace, and
# rankings are bitwise identical with the recorder on and off.
stage trace "cargo test --features fault --test trace"
cargo test "${OFFLINE[@]}" -q --features fault --test trace || fail trace

# Probe gate: the ANN-vs-scan equality suite, then the probe bin run
# twice on a reduced synthetic corpus — its JSON-lines export (per-probe
# rankings as score bits, match counts, graph recall rows; no timings)
# must be byte-identical or the candidate search is not deterministic —
# and the BENCH_probe snapshot validated. The full 100k acceptance run
# stays a manual `SACCS_PROBE_TAGS=100000` invocation (see README).
stage probe "ann suite + double probe run, exports diffed"
cargo test "${OFFLINE[@]}" -q -p saccs-index --test ann || fail probe
rm -f PROBE_a.jsonl PROBE_b.jsonl BENCH_probe.json
SACCS_OBS=json SACCS_PROBE_TAGS=20000 SACCS_PROBE_OUT=PROBE_a.jsonl \
    cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --bin probe \
    || fail probe
SACCS_PROBE_TAGS=20000 SACCS_PROBE_OUT=PROBE_b.jsonl \
    cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --bin probe \
    >/dev/null || fail probe
diff PROBE_a.jsonl PROBE_b.jsonl || fail probe
rm -f PROBE_a.jsonl PROBE_b.jsonl
cargo run "${OFFLINE[@]}" -q -p xtask -- check-bench BENCH_probe.json || fail probe

# Ingest gate: the segmented-index property suite, the ingest-while-
# serving equivalence suite, and the crash-recovery chaos tests; then
# the ingest bin run twice with one seed — its JSON-lines export
# (checkpoint rankings as score bits plus segment counts; no timings)
# must be byte-identical or live ingestion is not deterministic — and
# the reviews/sec + probe-latency snapshot validated.
stage ingest "ingest suites + double ingest run, exports diffed"
cargo test "${OFFLINE[@]}" -q -p saccs-index --test segment || fail ingest
cargo test "${OFFLINE[@]}" -q --test ingest || fail ingest
cargo test "${OFFLINE[@]}" -q --features fault --test chaos ingest_recovery || fail ingest
rm -f INGEST_a.jsonl INGEST_b.jsonl BENCH_ingest.json
SACCS_OBS=json SACCS_INGEST_OUT=INGEST_a.jsonl \
    cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --bin ingest \
    || fail ingest
SACCS_INGEST_OUT=INGEST_b.jsonl \
    cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --bin ingest \
    >/dev/null || fail ingest
diff INGEST_a.jsonl INGEST_b.jsonl || fail ingest
rm -f INGEST_a.jsonl INGEST_b.jsonl
cargo run "${OFFLINE[@]}" -q -p xtask -- check-bench BENCH_ingest.json || fail ingest

# Query gate: the planner property suite (plan == naive evaluator, join-
# order invariance) and the filtered-serving suite (bitwise stability
# across widths/ANN/ingest states, degradation + admission paths); then
# the query bin run twice — its JSON-lines export (match counts and
# entity sets per corpus size; no timings) must be byte-identical or the
# plans are not deterministic — and the planner-speedup snapshot
# validated.
stage query "query suites + double query run, exports diffed"
cargo test "${OFFLINE[@]}" -q -p saccs-query || fail query
cargo test "${OFFLINE[@]}" -q --test query || fail query
rm -f QUERY_a.jsonl QUERY_b.jsonl BENCH_query.json
SACCS_OBS=json SACCS_QUERY_OUT=QUERY_a.jsonl \
    cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --bin query \
    || fail query
SACCS_QUERY_OUT=QUERY_b.jsonl \
    cargo run "${OFFLINE[@]}" -q --release -p saccs-bench --bin query \
    >/dev/null || fail query
diff QUERY_a.jsonl QUERY_b.jsonl || fail query
rm -f QUERY_a.jsonl QUERY_b.jsonl
cargo run "${OFFLINE[@]}" -q -p xtask -- check-bench BENCH_query.json || fail query

printf '\n=== CI green: all stages passed ===\n'
